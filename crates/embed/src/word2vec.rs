//! word2vec (skip-gram with negative sampling) — a Table VII baseline.
//!
//! Whole-word vectors only: a token outside the training vocabulary
//! contributes nothing to the string embedding, which is exactly why the
//! paper finds word2vec collapses under typos (F-score 0.72 → 0.29).

use crate::corpus::Corpus;
use crate::encoder::StringEncoder;
use crate::sgns::{NegativeSampler, SgnsModel};
use emblookup_text::tokenize::words;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Training configuration for [`Word2Vec::train`].
#[derive(Debug, Clone, Copy)]
pub struct Word2VecConfig {
    /// Embedding dimension (paper-scale default 64).
    pub dim: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Negative samples per pair.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Word2VecConfig { dim: 64, window: 4, negatives: 5, epochs: 5, lr: 0.05, seed: 0 }
    }
}

/// Trained word2vec model.
pub struct Word2Vec {
    model: SgnsModel,
    vocab: HashMap<String, u32>,
}

impl Word2Vec {
    /// Trains skip-gram over the corpus.
    ///
    /// # Panics
    /// Panics on an empty corpus.
    pub fn train(corpus: &Corpus, config: Word2VecConfig) -> Self {
        assert!(corpus.vocab_size() > 0, "word2vec over empty corpus");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut model = SgnsModel::new(corpus.vocab_size(), corpus.vocab_size(), config.dim, &mut rng);
        let sampler = NegativeSampler::new(corpus.counts());
        let mut negs = vec![0u32; config.negatives];
        for _ in 0..config.epochs {
            for (center, context) in corpus.pairs(config.window) {
                for n in &mut negs {
                    *n = sampler.sample(&mut rng);
                }
                model.train_pair(&[center], context, &negs, config.lr);
            }
        }
        let vocab = (0..corpus.vocab_size() as u32)
            .map(|id| (corpus.token(id).to_string(), id))
            .collect();
        Word2Vec { model, vocab }
    }

    /// Vector of a single in-vocabulary word.
    pub fn word_vector(&self, word: &str) -> Option<Vec<f32>> {
        self.vocab
            .get(word)
            .map(|&id| self.model.embed_features(&[id]))
    }
}

impl StringEncoder for Word2Vec {
    fn dim(&self) -> usize {
        self.model.dim()
    }

    /// Mean of the in-vocabulary token vectors; out-of-vocabulary tokens
    /// (misspellings!) are silently dropped, so a fully-OOV string embeds
    /// to zero.
    fn embed(&self, s: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim()];
        let mut hit = 0usize;
        for token in words(s) {
            if let Some(&id) = self.vocab.get(&token) {
                let v = self.model.embed_features(&[id]);
                for (a, x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                hit += 1;
            }
        }
        if hit > 0 {
            let inv = 1.0 / hit as f32;
            for a in &mut acc {
                *a *= inv;
            }
        }
        acc
    }

    fn name(&self) -> &'static str {
        "word2vec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_corpus() -> Corpus {
        let mut c = Corpus::default();
        // "germany" and "deutschland" share the context "europe";
        // "tokyo" and "japan" share "asia" — shared contexts are what
        // aligns skip-gram *input* vectors.
        for _ in 0..50 {
            c.add_sentence(vec!["germany".into(), "europe".into()]);
            c.add_sentence(vec!["deutschland".into(), "europe".into()]);
            c.add_sentence(vec!["germany".into(), "deutschland".into()]);
            c.add_sentence(vec!["tokyo".into(), "asia".into()]);
            c.add_sentence(vec!["japan".into(), "asia".into()]);
            c.add_sentence(vec!["tokyo".into(), "japan".into()]);
        }
        c
    }

    fn cos(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb + 1e-9)
    }

    #[test]
    fn cooccurring_words_are_closer() {
        let w2v = Word2Vec::train(
            &toy_corpus(),
            Word2VecConfig { dim: 16, epochs: 20, ..Default::default() },
        );
        let g = w2v.embed("germany");
        let d = w2v.embed("deutschland");
        let t = w2v.embed("tokyo");
        assert!(cos(&g, &d) > cos(&g, &t), "{} <= {}", cos(&g, &d), cos(&g, &t));
    }

    #[test]
    fn oov_embeds_to_zero() {
        let w2v = Word2Vec::train(&toy_corpus(), Word2VecConfig { dim: 8, epochs: 1, ..Default::default() });
        // the typo makes the token OOV — word2vec's known weakness
        let v = w2v.embed("germani");
        assert!(v.iter().all(|&x| x == 0.0));
        assert!(w2v.embed("").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn multiword_is_mean_of_tokens() {
        let w2v = Word2Vec::train(&toy_corpus(), Word2VecConfig { dim: 8, epochs: 1, ..Default::default() });
        let g = w2v.embed("germany");
        let j = w2v.embed("japan");
        let both = w2v.embed("germany japan");
        for i in 0..8 {
            assert!((both[i] - (g[i] + j[i]) / 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn word_vector_lookup() {
        let w2v = Word2Vec::train(&toy_corpus(), Word2VecConfig { dim: 8, epochs: 1, ..Default::default() });
        assert!(w2v.word_vector("tokyo").is_some());
        assert!(w2v.word_vector("nonexistent").is_none());
    }
}
