//! The common interface every embedding algorithm implements — Table VII
//! swaps these behind EmbLookup's lookup pipeline.

/// Maps an arbitrary string to a fixed-dimension embedding.
pub trait StringEncoder {
    /// Embedding dimension.
    fn dim(&self) -> usize;

    /// Embeds a string. Must never panic on unusual input (empty strings,
    /// unknown characters); degenerate inputs map to the zero vector.
    fn embed(&self, s: &str) -> Vec<f32>;

    /// Embeds a batch; the default forwards to [`StringEncoder::embed`].
    fn embed_batch(&self, strings: &[&str]) -> Vec<Vec<f32>> {
        strings.iter().map(|s| self.embed(s)).collect()
    }

    /// Human-readable algorithm name for experiment reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Zero;
    impl StringEncoder for Zero {
        fn dim(&self) -> usize {
            3
        }
        fn embed(&self, _s: &str) -> Vec<f32> {
            vec![0.0; 3]
        }
        fn name(&self) -> &'static str {
            "zero"
        }
    }

    #[test]
    fn default_batch_forwards() {
        let z = Zero;
        let out = z.embed_batch(&["a", "b"]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![0.0; 3]);
    }
}
