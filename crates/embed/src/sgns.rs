//! Skip-gram with negative sampling (SGNS) — the training engine shared by
//! the word2vec and fastText baselines.
//!
//! Implemented with analytic gradients (as in the original C tools) rather
//! than the autograd tape: SGNS updates touch a handful of rows per pair,
//! and the closed-form gradient is both faster and simpler.

use rand::rngs::StdRng;
use rand::Rng;

/// Unigram^0.75 negative-sampling distribution over output words.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    cdf: Vec<f64>,
}

impl NegativeSampler {
    /// Builds the sampler from raw token counts.
    ///
    /// # Panics
    /// Panics on an empty count vector.
    pub fn new(counts: &[u64]) -> Self {
        assert!(!counts.is_empty(), "negative sampler over empty vocabulary");
        let mut cdf = Vec::with_capacity(counts.len());
        let mut acc = 0.0f64;
        for &c in counts {
            acc += (c.max(1) as f64).powf(0.75);
            cdf.push(acc);
        }
        NegativeSampler { cdf }
    }

    /// Samples one word id.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let Some(&total) = self.cdf.last() else { return 0 };
        let r = rng.gen_range(0.0..total);
        match self
            .cdf
            .binary_search_by(|x| x.total_cmp(&r))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1) as u32,
        }
    }
}

/// SGNS parameter matrices: input-feature vectors and output-word vectors.
///
/// * word2vec: one input feature per vocabulary word;
/// * fastText: one input feature per hashed character n-gram bucket — a
///   word's vector is the mean of its n-gram features.
#[derive(Debug, Clone)]
pub struct SgnsModel {
    dim: usize,
    in_vecs: Vec<f32>,
    out_vecs: Vec<f32>,
}

impl SgnsModel {
    /// Allocates input/output matrices with the standard word2vec
    /// initialization (uniform inputs, zero outputs).
    pub fn new(n_in: usize, n_out: usize, dim: usize, rng: &mut StdRng) -> Self {
        assert!(dim > 0 && n_in > 0 && n_out > 0, "SGNS dims must be positive");
        let bound = 0.5 / dim as f32;
        let in_vecs = (0..n_in * dim).map(|_| rng.gen_range(-bound..bound)).collect();
        let out_vecs = vec![0.0f32; n_out * dim];
        SgnsModel { dim, in_vecs, out_vecs }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Mean of the input-feature vectors for `features`; the zero vector
    /// for an empty feature set.
    pub fn embed_features(&self, features: &[u32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        if features.is_empty() {
            return out;
        }
        for &f in features {
            let row = &self.in_vecs[f as usize * self.dim..(f as usize + 1) * self.dim];
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        let inv = 1.0 / features.len() as f32;
        for o in &mut out {
            *o *= inv;
        }
        out
    }

    /// One SGNS update: pushes the mean of `features` toward output word
    /// `target` and away from `negatives`. Returns the pair's loss.
    ///
    /// # Panics
    /// Panics (in debug) on out-of-range feature/word ids.
    pub fn train_pair(
        &mut self,
        features: &[u32],
        target: u32,
        negatives: &[u32],
        lr: f32,
    ) -> f32 {
        if features.is_empty() {
            return 0.0;
        }
        let dim = self.dim;
        let hidden = self.embed_features(features);
        let mut hidden_grad = vec![0.0f32; dim];
        let mut loss = 0.0f32;

        let update_output = |this: &mut Self, word: u32, label: f32, hidden: &[f32], hidden_grad: &mut [f32]| {
            let row_start = word as usize * dim;
            let out_row = &mut this.out_vecs[row_start..row_start + dim];
            let dot: f32 = out_row.iter().zip(hidden).map(|(&o, &h)| o * h).sum();
            let pred = sigmoid(dot);
            let err = pred - label; // d loss / d dot
            for j in 0..dim {
                hidden_grad[j] += err * out_row[j];
                out_row[j] -= lr * err * hidden[j];
            }
            -(if label > 0.5 { pred } else { 1.0 - pred }).max(1e-7).ln()
        };

        loss += update_output(self, target, 1.0, &hidden, &mut hidden_grad);
        for &neg in negatives {
            if neg == target {
                continue;
            }
            loss += update_output(self, neg, 0.0, &hidden, &mut hidden_grad);
        }

        // distribute the hidden gradient over the contributing features
        let scale = lr / features.len() as f32;
        for &f in features {
            let row = &mut self.in_vecs[f as usize * self.dim..(f as usize + 1) * self.dim];
            for (r, &g) in row.iter_mut().zip(&hidden_grad) {
                *r -= scale * g;
            }
        }
        loss
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampler_prefers_frequent_words() {
        let sampler = NegativeSampler::new(&[1000, 1, 1, 1]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = [0usize; 4];
        for _ in 0..1000 {
            hits[sampler.sample(&mut rng) as usize] += 1;
        }
        assert!(hits[0] > 600, "frequent word undersampled: {hits:?}");
    }

    #[test]
    fn sampler_covers_support() {
        let sampler = NegativeSampler::new(&[1, 1, 1]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[sampler.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn training_separates_cooccurring_pairs() {
        // two "topics" sharing context words: inputs 0,1 both predict
        // context 4 while inputs 2,3 both predict context 5, so the
        // distributional signal (shared contexts, not direct adjacency)
        // is what pulls 0 and 1 together.
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = SgnsModel::new(6, 6, 8, &mut rng);
        let sampler = NegativeSampler::new(&[1, 1, 1, 1, 1, 1]);
        for _ in 0..2000 {
            let negs: Vec<u32> = (0..3).map(|_| sampler.sample(&mut rng)).collect();
            model.train_pair(&[0], 4, &negs, 0.05);
            let negs: Vec<u32> = (0..3).map(|_| sampler.sample(&mut rng)).collect();
            model.train_pair(&[1], 4, &negs, 0.05);
            let negs: Vec<u32> = (0..3).map(|_| sampler.sample(&mut rng)).collect();
            model.train_pair(&[2], 5, &negs, 0.05);
            let negs: Vec<u32> = (0..3).map(|_| sampler.sample(&mut rng)).collect();
            model.train_pair(&[3], 5, &negs, 0.05);
        }
        let cos = |a: &[f32], b: &[f32]| -> f32 {
            let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb + 1e-9)
        };
        let e0 = model.embed_features(&[0]);
        let e1 = model.embed_features(&[1]);
        let e2 = model.embed_features(&[2]);
        assert!(
            cos(&e0, &e1) > cos(&e0, &e2),
            "co-occurring pair not closer: {} vs {}",
            cos(&e0, &e1),
            cos(&e0, &e2)
        );
    }

    #[test]
    fn empty_features_are_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = SgnsModel::new(2, 2, 4, &mut rng);
        let before = model.in_vecs.clone();
        let loss = model.train_pair(&[], 0, &[1], 0.1);
        assert_eq!(loss, 0.0);
        assert_eq!(model.in_vecs, before);
        assert!(model.embed_features(&[]).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn multi_feature_embedding_is_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = SgnsModel::new(2, 2, 4, &mut rng);
        let e0 = model.embed_features(&[0]);
        let e1 = model.embed_features(&[1]);
        let mean = model.embed_features(&[0, 1]);
        for j in 0..4 {
            assert!((mean[j] - (e0[j] + e1[j]) / 2.0).abs() < 1e-6);
        }
    }
}

impl SgnsModel {
    /// Serializes the model to a length-prefixed little-endian buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 4 * (self.in_vecs.len() + self.out_vecs.len()));
        out.extend_from_slice(&(self.dim as u64).to_le_bytes());
        out.extend_from_slice(&(self.in_vecs.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.out_vecs.len() as u64).to_le_bytes());
        for &x in self.in_vecs.iter().chain(self.out_vecs.iter()) {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    /// Restores a model serialized with [`SgnsModel::to_bytes`].
    ///
    /// # Errors
    /// Returns a description of the first structural problem found.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut cur = 0usize;
        let read_u64 = |cur: &mut usize| -> Result<u64, String> {
            let end = *cur + 8;
            let s = bytes.get(*cur..end).ok_or("truncated SGNS buffer")?;
            *cur = end;
            Ok(u64::from_le_bytes(s.try_into().map_err(|_| "truncated SGNS buffer")?))
        };
        let dim = read_u64(&mut cur)? as usize;
        let n_in = read_u64(&mut cur)? as usize;
        let n_out = read_u64(&mut cur)? as usize;
        if dim == 0 || !n_in.is_multiple_of(dim) || !n_out.is_multiple_of(dim) {
            return Err(format!("inconsistent SGNS header: dim {dim}, in {n_in}, out {n_out}"));
        }
        let need = cur + 4 * (n_in + n_out);
        if bytes.len() < need {
            return Err(format!("truncated SGNS buffer: {} < {need}", bytes.len()));
        }
        let read_f32s = |count: usize, cur: &mut usize| -> Vec<f32> {
            let mut v = Vec::with_capacity(count);
            for _ in 0..count {
                let end = *cur + 4;
                // lint: allow(L001) infallible: buffer length was verified against `need` above
                v.push(f32::from_le_bytes(bytes[*cur..end].try_into().unwrap()));
                *cur = end;
            }
            v
        };
        let in_vecs = read_f32s(n_in, &mut cur);
        let out_vecs = read_f32s(n_out, &mut cur);
        Ok(SgnsModel { dim, in_vecs, out_vecs })
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_embeddings() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = SgnsModel::new(6, 4, 8, &mut rng);
        let bytes = model.to_bytes();
        let restored = SgnsModel::from_bytes(&bytes).unwrap();
        assert_eq!(model.embed_features(&[0, 3]), restored.embed_features(&[0, 3]));
    }

    #[test]
    fn rejects_truncated() {
        let mut rng = StdRng::seed_from_u64(10);
        let model = SgnsModel::new(2, 2, 4, &mut rng);
        let bytes = model.to_bytes();
        assert!(SgnsModel::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(SgnsModel::from_bytes(&bytes[..4]).is_err());
    }
}

