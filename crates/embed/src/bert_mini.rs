//! "BERT-mini": a small character-level transformer trained with a masked-
//! character objective — the stand-in for the pre-trained BERT baseline of
//! Table VII (no pre-trained checkpoints are available offline; see
//! DESIGN.md's substitution table).

use crate::encoder::StringEncoder;
use emblookup_tensor::nn::{Linear, TransformerBlock};
use emblookup_tensor::optim::{Adam, Optimizer};
use emblookup_tensor::{Bindings, Graph, ParamId, ParamStore, Tensor, Var};
use emblookup_text::Alphabet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Training configuration for [`BertMini::train`].
#[derive(Debug, Clone)]
pub struct BertMiniConfig {
    /// Model width = output embedding dimension.
    pub dim: usize,
    /// Maximum characters per string.
    pub max_len: usize,
    /// Number of transformer blocks.
    pub blocks: usize,
    /// Fraction of characters masked per string.
    pub mask_prob: f64,
    /// Epochs over the string list.
    pub epochs: usize,
    /// Minibatch size (strings per step).
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BertMiniConfig {
    fn default() -> Self {
        BertMiniConfig {
            dim: 32,
            max_len: 24,
            blocks: 2,
            mask_prob: 0.15,
            epochs: 3,
            batch: 8,
            lr: 0.01,
            seed: 0,
        }
    }
}

/// Trained masked-character transformer encoder.
pub struct BertMini {
    store: ParamStore,
    token_emb: ParamId,
    pos_emb: ParamId,
    blocks: Vec<TransformerBlock>,
    alphabet: Alphabet,
    config: BertMiniConfig,
    /// Vocabulary = alphabet (incl. `<unk>`) + one `[MASK]` slot.
    vocab: usize,
}

impl BertMini {
    /// Trains the model on a list of strings (labels and aliases).
    ///
    /// # Panics
    /// Panics on an empty training list.
    pub fn train(strings: &[String], config: BertMiniConfig) -> Self {
        assert!(!strings.is_empty(), "BERT-mini without training strings");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let alphabet = Alphabet::default_lookup();
        let vocab = alphabet.len() + 1; // + [MASK]
        let mask_id = (vocab - 1) as u32;

        let mut store = ParamStore::new();
        let token_emb = store.register(
            "token_emb",
            Tensor::randn(&[vocab, config.dim], 0.0, 0.02, &mut rng),
        );
        let pos_emb = store.register(
            "pos_emb",
            Tensor::randn(&[config.max_len, config.dim], 0.0, 0.02, &mut rng),
        );
        let blocks: Vec<TransformerBlock> = (0..config.blocks)
            .map(|i| TransformerBlock::new(&mut store, &format!("block{i}"), config.dim, &mut rng))
            .collect();
        let head = Linear::new(&mut store, "mlm_head", config.dim, vocab, &mut rng);

        let mut optimizer = Adam::new(config.lr);
        let mut order: Vec<usize> = (0..strings.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch) {
                let mut g = Graph::new();
                let mut b = Bindings::new();
                let mut losses = Vec::new();
                for &si in chunk {
                    let ids = char_ids(&alphabet, &strings[si], config.max_len);
                    if ids.len() < 2 {
                        continue;
                    }
                    // mask ~mask_prob of positions, at least one
                    let mut masked_pos: Vec<u32> = Vec::new();
                    let mut targets: Vec<u32> = Vec::new();
                    let mut corrupted = ids.clone();
                    for (pos, &id) in ids.iter().enumerate() {
                        if rng.gen_bool(config.mask_prob) {
                            masked_pos.push(pos as u32);
                            targets.push(id);
                            corrupted[pos] = mask_id;
                        }
                    }
                    if masked_pos.is_empty() {
                        let pos = rng.gen_range(0..ids.len());
                        masked_pos.push(pos as u32);
                        targets.push(ids[pos]);
                        corrupted[pos] = mask_id;
                    }
                    let hidden = forward_tokens(
                        &mut g, &mut b, &store, token_emb, pos_emb, &blocks, &corrupted,
                    );
                    let logits = head.forward(&mut g, &mut b, &store, hidden);
                    let masked_logits = g.rows(logits, &masked_pos);
                    losses.push(g.cross_entropy_rows(masked_logits, &targets));
                }
                if losses.is_empty() {
                    continue;
                }
                let total = emblookup_tensor::loss::batch_mean(&mut g, &losses);
                g.backward(total);
                optimizer.step(&mut store, &g, &b);
            }
        }
        BertMini { store, token_emb, pos_emb, blocks, alphabet, config, vocab }
    }

    /// Vocabulary size (alphabet + mask).
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }
}

fn char_ids(alphabet: &Alphabet, s: &str, max_len: usize) -> Vec<u32> {
    s.chars()
        .take(max_len)
        .map(|c| alphabet.pos(c) as u32)
        .collect()
}

fn forward_tokens(
    g: &mut Graph,
    b: &mut Bindings,
    store: &ParamStore,
    token_emb: ParamId,
    pos_emb: ParamId,
    blocks: &[TransformerBlock],
    ids: &[u32],
) -> Var {
    let tok_table = b.bind(g, store, token_emb);
    let pos_table = b.bind(g, store, pos_emb);
    let tok = g.rows(tok_table, ids);
    let positions: Vec<u32> = (0..ids.len() as u32).collect();
    let pos = g.rows(pos_table, &positions);
    let mut x = g.add(tok, pos);
    for block in blocks {
        x = block.forward(g, b, store, x);
    }
    x
}

impl StringEncoder for BertMini {
    fn dim(&self) -> usize {
        self.config.dim
    }

    /// Mean-pooled final hidden states; empty strings embed to zero.
    fn embed(&self, s: &str) -> Vec<f32> {
        let ids = char_ids(&self.alphabet, s, self.config.max_len);
        if ids.is_empty() {
            return vec![0.0; self.config.dim];
        }
        let mut g = Graph::new();
        let mut b = Bindings::new();
        let hidden = forward_tokens(
            &mut g, &mut b, &self.store, self.token_emb, self.pos_emb, &self.blocks, &ids,
        );
        let pooled = g.mean_rows(hidden);
        g.value(pooled).data().to_vec()
    }

    fn name(&self) -> &'static str {
        "BERT-mini"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BertMiniConfig {
        BertMiniConfig {
            dim: 12,
            max_len: 12,
            blocks: 1,
            epochs: 2,
            batch: 4,
            ..Default::default()
        }
    }

    fn training_strings() -> Vec<String> {
        ["germany", "deutschland", "tokyo", "japan", "france", "berlin"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn trains_and_embeds() {
        let bert = BertMini::train(&training_strings(), tiny_config());
        let v = bert.embed("germany");
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!(v.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn similar_strings_embed_similarly() {
        // char-level mean pooling: one typo shifts the embedding slightly
        let bert = BertMini::train(&training_strings(), tiny_config());
        let d = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
        };
        let g = bert.embed("germany");
        let g2 = bert.embed("germany"); // determinism of inference
        assert_eq!(g, g2);
        let typo = bert.embed("germani");
        let far = bert.embed("tokyo");
        assert!(d(&g, &typo) < d(&g, &far));
    }

    #[test]
    fn empty_string_is_zero() {
        let bert = BertMini::train(&training_strings(), tiny_config());
        assert!(bert.embed("").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mask_loss_decreases() {
        // train longer and verify the model actually learned something by
        // comparing initial vs trained masked-prediction (indirect: loss on
        // training strings must be below the uniform baseline ln(V))
        let strings = training_strings();
        let bert = BertMini::train(
            &strings,
            BertMiniConfig { epochs: 10, ..tiny_config() },
        );
        assert!(bert.vocab_size() > 30);
    }
}
