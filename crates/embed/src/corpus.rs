//! Training corpus derived from a knowledge graph.
//!
//! The paper bootstraps semantic similarity by training fastText on
//! "entity names and their synonyms" (§III-B). We verbalize the KG into
//! token sentences: label/alias co-occurrence sentences tie an entity's
//! surface forms together, and fact sentences tie related entities together.

use emblookup_kg::{KnowledgeGraph, Object};
use emblookup_text::tokenize::words;
use std::collections::HashMap;

/// A tokenized training corpus with an integer vocabulary.
#[derive(Debug, Default)]
pub struct Corpus {
    /// Sentences as sequences of vocabulary ids.
    pub sentences: Vec<Vec<u32>>,
    vocab: Vec<String>,
    index: HashMap<String, u32>,
    counts: Vec<u64>,
}

impl Corpus {
    /// Builds the corpus from a knowledge graph.
    ///
    /// Three sentence families:
    ///
    /// 1. **Surface/context**: every surface form (label *and* each alias)
    ///    paired with the entity's context — its type name and up to three
    ///    neighbour labels. Shared contexts are what align skip-gram
    ///    *input* vectors, so this family is what makes an alias land near
    ///    its label in embedding space.
    /// 2. **Label/alias pairs**: direct co-occurrence of the two forms.
    /// 3. **Fact verbalizations**: `subject property object`, with the
    ///    subject's surface form sampled from label ∪ aliases so aliases
    ///    inherit the label's relational contexts.
    pub fn from_kg(kg: &KnowledgeGraph) -> Self {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut corpus = Corpus::default();
        for e in kg.entities() {
            let label_tokens = words(&e.label);
            // context tokens: type names + a few neighbour labels
            let mut context: Vec<String> = e
                .types
                .iter()
                .flat_map(|&t| words(kg.type_name(t)))
                .collect();
            for n in kg.neighbors(e.id).into_iter().take(3) {
                context.extend(words(kg.label(n)));
            }
            // 1. surface/context sentences
            let surface_context = |surface_tokens: Vec<String>, corpus: &mut Corpus| {
                let mut sent = surface_tokens;
                sent.extend(context.iter().cloned());
                corpus.add_sentence(sent);
            };
            surface_context(label_tokens.clone(), &mut corpus);
            for alias in &e.aliases {
                surface_context(words(alias), &mut corpus);
            }
            // 2. label/alias pair sentences
            for alias in &e.aliases {
                let mut sent = label_tokens.clone();
                sent.extend(words(alias));
                corpus.add_sentence(sent);
            }
        }
        // 3. fact sentences with alias-substituted subjects
        for fact in kg.facts() {
            if let Object::Entity(obj) = fact.object {
                let subject = kg.entity(fact.subject);
                let surface = if !subject.aliases.is_empty() && rng.gen_bool(0.5) {
                    &subject.aliases[rng.gen_range(0..subject.aliases.len())]
                } else {
                    &subject.label
                };
                let mut sent = words(surface);
                sent.extend(words(kg.property_name(fact.property)));
                sent.extend(words(kg.label(obj)));
                corpus.add_sentence(sent);
            }
        }
        corpus
    }

    /// Adds one tokenized sentence, interning tokens into the vocabulary.
    pub fn add_sentence(&mut self, tokens: Vec<String>) {
        if tokens.is_empty() {
            return;
        }
        let ids = tokens.into_iter().map(|t| self.intern(t)).collect();
        self.sentences.push(ids);
    }

    fn intern(&mut self, token: String) -> u32 {
        if let Some(&id) = self.index.get(&token) {
            self.counts[id as usize] += 1;
            return id;
        }
        let id = self.vocab.len() as u32;
        self.index.insert(token.clone(), id);
        self.vocab.push(token);
        self.counts.push(1);
        id
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Token string for a vocabulary id.
    pub fn token(&self, id: u32) -> &str {
        &self.vocab[id as usize]
    }

    /// Vocabulary id of a token, if present.
    pub fn id_of(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Corpus frequency of a vocabulary id.
    pub fn count(&self, id: u32) -> u64 {
        self.counts[id as usize]
    }

    /// All token counts (for negative-sampling tables).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of tokens across all sentences.
    pub fn num_tokens(&self) -> usize {
        self.sentences.iter().map(Vec::len).sum()
    }

    /// Iterates `(center, context)` skip-gram pairs with the given window.
    pub fn pairs(&self, window: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.sentences.iter().flat_map(move |sent| {
            sent.iter().enumerate().flat_map(move |(i, &center)| {
                let lo = i.saturating_sub(window);
                let hi = (i + window + 1).min(sent.len());
                (lo..hi)
                    .filter(move |&j| j != i)
                    .map(move |j| (center, sent[j]))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKgConfig};

    #[test]
    fn kg_corpus_ties_labels_to_aliases() {
        let s = generate(SynthKgConfig::tiny(1));
        let corpus = Corpus::from_kg(&s.kg);
        assert!(corpus.vocab_size() > 50);
        assert!(corpus.sentences.len() >= s.kg.num_entities());
        // first label token of entity 0 must be in vocabulary
        let e0 = s.kg.entities().next().unwrap();
        let tok = words(&e0.label).remove(0);
        assert!(corpus.id_of(&tok).is_some());
    }

    #[test]
    fn pairs_respect_window() {
        let mut c = Corpus::default();
        c.add_sentence(vec!["a".into(), "b".into(), "c".into(), "d".into()]);
        let pairs: Vec<(u32, u32)> = c.pairs(1).collect();
        // each interior token pairs with both neighbours; ends with one
        assert_eq!(pairs.len(), 2 + 2 + 2); // a-b, b-a, b-c, c-b, c-d, d-c
    }

    #[test]
    fn counts_accumulate() {
        let mut c = Corpus::default();
        c.add_sentence(vec!["x".into(), "x".into(), "y".into()]);
        let x = c.id_of("x").unwrap();
        assert_eq!(c.count(x), 2);
        assert_eq!(c.num_tokens(), 3);
    }

    #[test]
    fn empty_sentences_are_dropped() {
        let mut c = Corpus::default();
        c.add_sentence(vec![]);
        assert!(c.sentences.is_empty());
    }
}
