//! # emblookup-embed
//!
//! Trainable string and word encoders for the EmbLookup reproduction:
//! the fastText-style subword model that powers EmbLookup's semantic leg,
//! plus the word2vec, character-LSTM and BERT-mini baselines of the
//! paper's Table VII. All models are trained from scratch on a corpus
//! verbalized from the knowledge graph — no pre-trained checkpoints.

#![warn(missing_docs)]

pub mod bert_mini;
pub mod corpus;
pub mod encoder;
pub mod fasttext;
pub mod gru_encoder;
pub mod lstm_encoder;
pub mod sgns;
pub mod transe;
pub mod word2vec;

pub use bert_mini::{BertMini, BertMiniConfig};
pub use corpus::Corpus;
pub use encoder::StringEncoder;
pub use fasttext::{FastText, FastTextConfig};
pub use gru_encoder::{GruEncoder, GruEncoderConfig};
pub use lstm_encoder::{LstmEncoder, LstmEncoderConfig};
pub use transe::{TransE, TransEConfig};
pub use word2vec::{Word2Vec, Word2VecConfig};
