//! Character-LSTM string encoder — the "LSTM" row of Table VII.
//!
//! Trained with the same triplet objective as EmbLookup (anchor = label,
//! positive = alias or typo, negative = another entity's label) but with a
//! recurrent encoder instead of the CNN+fastText fusion.

use crate::encoder::StringEncoder;
use emblookup_tensor::nn::Lstm;
use emblookup_tensor::optim::{Adam, Optimizer};
use emblookup_tensor::{loss, Bindings, Graph, ParamStore, Tensor, Var};
use emblookup_text::{Alphabet, OneHotEncoder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training configuration for [`LstmEncoder::train`].
#[derive(Debug, Clone)]
pub struct LstmEncoderConfig {
    /// Hidden width = output embedding dimension.
    pub hidden: usize,
    /// Maximum characters consumed per string.
    pub max_len: usize,
    /// Triplet-loss margin.
    pub margin: f32,
    /// Epochs over the triplet list.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LstmEncoderConfig {
    fn default() -> Self {
        LstmEncoderConfig {
            hidden: 64,
            max_len: 24,
            margin: 0.5,
            epochs: 3,
            batch: 16,
            lr: 0.01,
            seed: 0,
        }
    }
}

/// Trained character-LSTM encoder.
pub struct LstmEncoder {
    store: ParamStore,
    lstm: Lstm,
    onehot: OneHotEncoder,
    config: LstmEncoderConfig,
}

impl LstmEncoder {
    /// Trains the encoder on `(anchor, positive)` pairs; negatives are
    /// sampled from `negatives` (typically all entity labels).
    ///
    /// # Panics
    /// Panics when `pairs` or `negatives` is empty.
    pub fn train(
        pairs: &[(String, String)],
        negatives: &[String],
        config: LstmEncoderConfig,
    ) -> Self {
        assert!(!pairs.is_empty(), "LSTM encoder without training pairs");
        assert!(!negatives.is_empty(), "LSTM encoder without negatives");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let onehot = OneHotEncoder::new(Alphabet::default_lookup(), config.max_len);
        let in_dim = onehot.rows();
        let lstm = Lstm::new(&mut store, "lstm", in_dim, config.hidden, &mut rng);
        let mut optimizer = Adam::new(config.lr);

        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch) {
                let mut g = Graph::new();
                let mut b = Bindings::new();
                let mut losses = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let (anchor, positive) = &pairs[i];
                    let Some(negative) = negatives.choose(&mut rng) else { continue };
                    let ea = encode_seq(&mut g, &mut b, &store, &lstm, &onehot, anchor);
                    let ep = encode_seq(&mut g, &mut b, &store, &lstm, &onehot, positive);
                    let en = encode_seq(&mut g, &mut b, &store, &lstm, &onehot, negative);
                    losses.push(loss::triplet(&mut g, ea, ep, en, config.margin));
                }
                let total = loss::batch_mean(&mut g, &losses);
                g.backward(total);
                optimizer.step(&mut store, &g, &b);
            }
        }
        LstmEncoder { store, lstm, onehot, config }
    }
}

/// Runs the LSTM over a string's one-hot character sequence on `g`,
/// returning the final hidden state.
fn encode_seq(
    g: &mut Graph,
    b: &mut Bindings,
    store: &ParamStore,
    lstm: &Lstm,
    onehot: &OneHotEncoder,
    s: &str,
) -> Var {
    let alphabet = onehot.alphabet();
    let rows = onehot.rows();
    let mut steps: Vec<Var> = Vec::new();
    for c in s.chars().take(onehot.max_len) {
        let mut v = vec![0.0f32; rows];
        v[alphabet.pos(c)] = 1.0;
        steps.push(g.leaf(Tensor::vector(&v)));
    }
    if steps.is_empty() {
        // empty string: single zero step keeps shapes valid
        steps.push(g.leaf(Tensor::zeros(&[rows])));
    }
    lstm.encode(g, b, store, &steps)
}

impl StringEncoder for LstmEncoder {
    fn dim(&self) -> usize {
        self.config.hidden
    }

    fn embed(&self, s: &str) -> Vec<f32> {
        let mut g = Graph::new();
        let mut b = Bindings::new();
        let h = encode_seq(&mut g, &mut b, &self.store, &self.lstm, &self.onehot, s);
        g.value(h).data().to_vec()
    }

    fn name(&self) -> &'static str {
        "LSTM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // inlined from emblookup_ann to keep `embed` below `ann` in the
    // layer DAG (lint rule L005)
    fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    fn tiny_config() -> LstmEncoderConfig {
        LstmEncoderConfig {
            hidden: 12,
            max_len: 10,
            epochs: 8,
            batch: 4,
            ..Default::default()
        }
    }

    #[test]
    fn learns_to_pull_alias_pairs_together() {
        let pairs = vec![
            ("germany".to_string(), "deutschland".to_string()),
            ("germany".to_string(), "germani".to_string()),
            ("tokyo".to_string(), "tokio".to_string()),
            ("france".to_string(), "frankreich".to_string()),
        ];
        let negatives: Vec<String> = ["zanzibar", "quorn", "melbourne", "xylophone"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let enc = LstmEncoder::train(&pairs, &negatives, tiny_config());
        let g = enc.embed("germany");
        let gt = enc.embed("germani");
        let z = enc.embed("zanzibar");
        assert!(
            sq_l2(&g, &gt) < sq_l2(&g, &z),
            "typo not closer than negative: {} vs {}",
            sq_l2(&g, &gt),
            sq_l2(&g, &z)
        );
    }

    #[test]
    fn embed_handles_empty_and_weird_strings() {
        let pairs = vec![("a".to_string(), "ab".to_string())];
        let negatives = vec!["zzz".to_string()];
        let enc = LstmEncoder::train(&pairs, &negatives, LstmEncoderConfig {
            hidden: 6,
            epochs: 1,
            ..tiny_config()
        });
        assert_eq!(enc.embed("").len(), 6);
        assert_eq!(enc.embed("日本語🙂").len(), 6);
        assert!(enc.embed("x".repeat(500).as_str()).iter().all(|x| x.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let pairs = vec![("ab".to_string(), "abc".to_string())];
        let negatives = vec!["xyz".to_string()];
        let e1 = LstmEncoder::train(&pairs, &negatives, tiny_config());
        let e2 = LstmEncoder::train(&pairs, &negatives, tiny_config());
        assert_eq!(e1.embed("ab"), e2.embed("ab"));
    }
}
