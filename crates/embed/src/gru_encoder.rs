//! Character-GRU string encoder — the architecture the publicly released
//! EmbLookup code used for its syntactic leg; provided here as an
//! alternative encoder for architecture comparisons.

use crate::encoder::StringEncoder;
use emblookup_tensor::nn::Gru;
use emblookup_tensor::optim::{Adam, Optimizer};
use emblookup_tensor::{loss, Bindings, Graph, ParamStore, Tensor, Var};
use emblookup_text::{Alphabet, OneHotEncoder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training configuration for [`GruEncoder::train`].
#[derive(Debug, Clone)]
pub struct GruEncoderConfig {
    /// Hidden width = output embedding dimension.
    pub hidden: usize,
    /// Maximum characters consumed per string.
    pub max_len: usize,
    /// Triplet-loss margin.
    pub margin: f32,
    /// Epochs over the pair list.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GruEncoderConfig {
    fn default() -> Self {
        GruEncoderConfig {
            hidden: 64,
            max_len: 24,
            margin: 0.5,
            epochs: 3,
            batch: 16,
            lr: 0.01,
            seed: 0,
        }
    }
}

/// Trained character-GRU encoder.
pub struct GruEncoder {
    store: ParamStore,
    gru: Gru,
    onehot: OneHotEncoder,
    config: GruEncoderConfig,
}

impl GruEncoder {
    /// Trains on `(anchor, positive)` pairs with negatives sampled from
    /// `negatives`, using the same triplet objective as EmbLookup.
    ///
    /// # Panics
    /// Panics when `pairs` or `negatives` is empty.
    pub fn train(
        pairs: &[(String, String)],
        negatives: &[String],
        config: GruEncoderConfig,
    ) -> Self {
        assert!(!pairs.is_empty(), "GRU encoder without training pairs");
        assert!(!negatives.is_empty(), "GRU encoder without negatives");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let onehot = OneHotEncoder::new(Alphabet::default_lookup(), config.max_len);
        let gru = Gru::new(&mut store, "gru", onehot.rows(), config.hidden, &mut rng);
        let mut optimizer = Adam::new(config.lr);

        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(config.batch) {
                let mut g = Graph::new();
                let mut b = Bindings::new();
                let mut losses = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let (anchor, positive) = &pairs[i];
                    let Some(negative) = negatives.choose(&mut rng) else { continue };
                    let ea = encode_seq(&mut g, &mut b, &store, &gru, &onehot, anchor);
                    let ep = encode_seq(&mut g, &mut b, &store, &gru, &onehot, positive);
                    let en = encode_seq(&mut g, &mut b, &store, &gru, &onehot, negative);
                    losses.push(loss::triplet(&mut g, ea, ep, en, config.margin));
                }
                let total = loss::batch_mean(&mut g, &losses);
                g.backward(total);
                optimizer.step(&mut store, &g, &b);
            }
        }
        GruEncoder { store, gru, onehot, config }
    }
}

fn encode_seq(
    g: &mut Graph,
    b: &mut Bindings,
    store: &ParamStore,
    gru: &Gru,
    onehot: &OneHotEncoder,
    s: &str,
) -> Var {
    let alphabet = onehot.alphabet();
    let rows = onehot.rows();
    let mut steps: Vec<Var> = Vec::new();
    for c in s.chars().take(onehot.max_len) {
        let mut v = vec![0.0f32; rows];
        v[alphabet.pos(c)] = 1.0;
        steps.push(g.leaf(Tensor::vector(&v)));
    }
    if steps.is_empty() {
        steps.push(g.leaf(Tensor::zeros(&[rows])));
    }
    gru.encode(g, b, store, &steps)
}

impl StringEncoder for GruEncoder {
    fn dim(&self) -> usize {
        self.config.hidden
    }

    fn embed(&self, s: &str) -> Vec<f32> {
        let mut g = Graph::new();
        let mut b = Bindings::new();
        let h = encode_seq(&mut g, &mut b, &self.store, &self.gru, &self.onehot, s);
        g.value(h).data().to_vec()
    }

    fn name(&self) -> &'static str {
        "GRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn learns_to_pull_pairs_together() {
        let pairs = vec![
            ("germany".to_string(), "germani".to_string()),
            ("tokyo".to_string(), "tokio".to_string()),
            ("france".to_string(), "francia".to_string()),
        ];
        let negatives: Vec<String> =
            ["zanzibar", "quorn", "xylophone"].iter().map(|s| s.to_string()).collect();
        let enc = GruEncoder::train(
            &pairs,
            &negatives,
            GruEncoderConfig { hidden: 10, max_len: 10, epochs: 8, batch: 4, ..Default::default() },
        );
        let g = enc.embed("germany");
        assert!(sq(&g, &enc.embed("germani")) < sq(&g, &enc.embed("zanzibar")));
    }

    #[test]
    fn handles_empty_and_long_strings() {
        let pairs = vec![("ab".to_string(), "abc".to_string())];
        let negatives = vec!["zz".to_string()];
        let enc = GruEncoder::train(
            &pairs,
            &negatives,
            GruEncoderConfig { hidden: 6, epochs: 1, ..Default::default() },
        );
        assert_eq!(enc.embed("").len(), 6);
        assert!(enc.embed(&"y".repeat(400)).iter().all(|x| x.is_finite()));
    }
}
