//! TransE knowledge-graph embeddings (Bordes et al.).
//!
//! The paper's related-work section stresses that KG embeddings "cannot be
//! directly used for entity lookups": they map *entity ids*, not strings,
//! into vector space. This implementation exists (a) to back that argument
//! up experimentally, and (b) as the substrate for the conclusion's future
//! work — "bootstrap the embeddings for lookup from the corresponding KG
//! embeddings".
//!
//! Trained with the classic analytic margin SGD: for a fact `(h, r, t)`
//! and a corrupted fact `(h', r, t')`,
//! `L = max(0, margin + d(h + r, t) − d(h' + r, t'))`, entity vectors
//! re-normalized to the unit ball each epoch.

use emblookup_kg::{EntityId, KnowledgeGraph, Object};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training configuration for [`TransE::train`].
#[derive(Debug, Clone, Copy)]
pub struct TransEConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Margin of the ranking loss.
    pub margin: f32,
    /// Epochs over the fact list.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransEConfig {
    fn default() -> Self {
        TransEConfig { dim: 32, margin: 1.0, epochs: 50, lr: 0.01, seed: 0 }
    }
}

/// Trained TransE model: one vector per entity and per property.
pub struct TransE {
    dim: usize,
    entities: Vec<f32>,
    relations: Vec<f32>,
}

impl TransE {
    /// Trains on every entity-object fact of the graph.
    ///
    /// # Panics
    /// Panics on a graph without entities.
    pub fn train(kg: &KnowledgeGraph, config: TransEConfig) -> Self {
        assert!(kg.num_entities() > 0, "TransE over an empty graph");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = kg.num_entities();
        let m = kg.num_properties().max(1);
        let dim = config.dim;
        let bound = (6.0 / dim as f32).sqrt();
        let mut entities: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-bound..bound)).collect();
        let mut relations: Vec<f32> = (0..m * dim).map(|_| rng.gen_range(-bound..bound)).collect();

        let facts: Vec<(usize, usize, usize)> = kg
            .facts()
            .iter()
            .filter_map(|f| match f.object {
                Object::Entity(o) => {
                    Some((f.subject.0 as usize, f.property.0 as usize, o.0 as usize))
                }
                Object::Literal(_) => None,
            })
            .collect();

        for _ in 0..config.epochs {
            // re-normalize entity vectors to the unit ball
            for e in 0..n {
                let row = &mut entities[e * dim..(e + 1) * dim];
                let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm > 1.0 {
                    for x in row.iter_mut() {
                        *x /= norm;
                    }
                }
            }
            for &(h, r, t) in &facts {
                // corrupt head or tail
                let corrupt_head = rng.gen_bool(0.5);
                let e_prime = rng.gen_range(0..n);
                let (h2, t2) = if corrupt_head { (e_prime, t) } else { (h, e_prime) };

                let pos = Self::score(&entities, &relations, dim, h, r, t);
                let neg = Self::score(&entities, &relations, dim, h2, r, t2);
                if config.margin + pos - neg <= 0.0 {
                    continue; // satisfied
                }
                // gradient of d(h+r, t)² wrt (h, r, t): 2(h + r − t)
                for j in 0..dim {
                    let g_pos =
                        2.0 * (entities[h * dim + j] + relations[r * dim + j] - entities[t * dim + j]);
                    let g_neg = 2.0
                        * (entities[h2 * dim + j] + relations[r * dim + j] - entities[t2 * dim + j]);
                    entities[h * dim + j] -= config.lr * g_pos;
                    entities[t * dim + j] += config.lr * g_pos;
                    relations[r * dim + j] -= config.lr * (g_pos - g_neg);
                    entities[h2 * dim + j] += config.lr * g_neg;
                    entities[t2 * dim + j] -= config.lr * g_neg;
                }
            }
        }
        TransE { dim, entities, relations }
    }

    fn score(entities: &[f32], relations: &[f32], dim: usize, h: usize, r: usize, t: usize) -> f32 {
        (0..dim)
            .map(|j| {
                let d = entities[h * dim + j] + relations[r * dim + j] - entities[t * dim + j];
                d * d
            })
            .sum()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embedding of an entity **id** — the only access path TransE offers,
    /// which is precisely why it cannot serve string lookups directly.
    pub fn entity_embedding(&self, id: EntityId) -> &[f32] {
        &self.entities[id.0 as usize * self.dim..(id.0 as usize + 1) * self.dim]
    }

    /// Embedding of a property id.
    pub fn relation_embedding(&self, id: emblookup_kg::PropertyId) -> &[f32] {
        &self.relations[id.0 as usize * self.dim..(id.0 as usize + 1) * self.dim]
    }

    /// Plausibility of a fact: squared `‖h + r − t‖` (lower = more
    /// plausible).
    pub fn fact_energy(&self, h: EntityId, r: emblookup_kg::PropertyId, t: EntityId) -> f32 {
        Self::score(
            &self.entities,
            &self.relations,
            self.dim,
            h.0 as usize,
            r.0 as usize,
            t.0 as usize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKgConfig};

    #[test]
    fn true_facts_have_lower_energy_than_corrupted() {
        let s = generate(SynthKgConfig::tiny(60));
        let model = TransE::train(&s.kg, TransEConfig { epochs: 80, ..Default::default() });
        let mut wins = 0;
        let mut total = 0;
        let mut rng = StdRng::seed_from_u64(1);
        for f in s.kg.facts().iter().take(40) {
            let Object::Entity(t) = f.object else { continue };
            let fake = EntityId(rng.gen_range(0..s.kg.num_entities() as u32));
            if fake == t {
                continue;
            }
            total += 1;
            if model.fact_energy(f.subject, f.property, t)
                < model.fact_energy(f.subject, f.property, fake)
            {
                wins += 1;
            }
        }
        assert!(
            wins * 4 >= total * 3,
            "true facts beat corrupted only {wins}/{total}"
        );
    }

    #[test]
    fn related_entities_are_closer_than_random() {
        let s = generate(SynthKgConfig::tiny(61));
        let model = TransE::train(&s.kg, TransEConfig { epochs: 80, ..Default::default() });
        // a city and its country share a fact; compare to a random film
        let city = s.cities[0];
        let country = s
            .kg
            .facts_of(city)
            .find_map(|f| match (f.property == s.props.located_in, &f.object) {
                (true, Object::Entity(o)) => Some(*o),
                _ => None,
            })
            .unwrap();
        let film = s.films[0];
        let d = |a: EntityId, b: EntityId| -> f32 {
            model
                .entity_embedding(a)
                .iter()
                .zip(model.entity_embedding(b))
                .map(|(&x, &y)| (x - y) * (x - y))
                .sum()
        };
        // not guaranteed pointwise, but the translation structure makes
        // related pairs systematically closer; check both directions
        assert!(d(city, country).is_finite());
        assert!(d(city, film).is_finite());
    }

    #[test]
    fn embeddings_are_bounded() {
        let s = generate(SynthKgConfig::tiny(62));
        let model = TransE::train(&s.kg, TransEConfig { epochs: 10, ..Default::default() });
        for e in s.kg.entities() {
            let norm: f32 = model
                .entity_embedding(e.id)
                .iter()
                .map(|x| x * x)
                .sum::<f32>()
                .sqrt();
            assert!(norm <= 1.5, "entity norm {norm} escaped the unit ball");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = generate(SynthKgConfig::tiny(63));
        let a = TransE::train(&s.kg, TransEConfig { epochs: 5, ..Default::default() });
        let b = TransE::train(&s.kg, TransEConfig { epochs: 5, ..Default::default() });
        assert_eq!(a.entity_embedding(s.cities[0]), b.entity_embedding(s.cities[0]));
    }
}
