//! fastText-style subword skip-gram — EmbLookup's semantic leg (§III-B)
//! and a Table VII baseline.
//!
//! A word's input representation is the mean of hashed character n-gram
//! vectors, so unseen (e.g. misspelled) words still get a meaningful
//! embedding from their surviving n-grams. Trained with the same SGNS
//! engine as word2vec.

use crate::corpus::Corpus;
use crate::encoder::StringEncoder;
use crate::sgns::{NegativeSampler, SgnsModel};
use emblookup_text::tokenize::{fasttext_ngrams, words};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Training configuration for [`FastText::train`].
#[derive(Debug, Clone, Copy)]
pub struct FastTextConfig {
    /// Embedding dimension (the paper uses a 64-d fastText model).
    pub dim: usize,
    /// Minimum n-gram length.
    pub min_n: usize,
    /// Maximum n-gram length.
    pub max_n: usize,
    /// Number of hash buckets for n-gram features.
    pub buckets: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Negative samples per pair.
    pub negatives: usize,
    /// Epochs over the corpus.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FastTextConfig {
    fn default() -> Self {
        FastTextConfig {
            dim: 64,
            min_n: 3,
            max_n: 5,
            buckets: 1 << 15,
            window: 4,
            negatives: 5,
            epochs: 5,
            lr: 0.05,
            seed: 0,
        }
    }
}

/// Trained fastText model.
pub struct FastText {
    model: SgnsModel,
    config: FastTextConfig,
    /// Inverse-document-frequency weight per vocabulary token; embedding a
    /// multi-token string uses an idf-weighted mean so generic tokens
    /// ("of", "kingdom", "republic") do not dilute the distinctive ones.
    idf: std::collections::HashMap<String, f32>,
    max_idf: f32,
}

impl FastText {
    /// Trains subword skip-gram over the corpus.
    ///
    /// # Panics
    /// Panics on an empty corpus.
    pub fn train(corpus: &Corpus, config: FastTextConfig) -> Self {
        assert!(corpus.vocab_size() > 0, "fastText over empty corpus");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut model = SgnsModel::new(config.buckets, corpus.vocab_size(), config.dim, &mut rng);
        let sampler = NegativeSampler::new(corpus.counts());

        // precompute per-word n-gram feature ids, fanned out over the
        // compute pool; each word hashes independently into its own
        // output slot, so the table is identical at any thread count.
        // The SGNS pair loop below stays serial — its RNG stream is the
        // determinism contract (`deterministic_given_seed`).
        let features: Vec<Vec<u32>> = emblookup_pool::Pool::global().parallel_map(
            corpus.vocab_size(),
            64,
            |id| Self::ngram_ids(corpus.token(id as u32), &config),
        );

        let mut negs = vec![0u32; config.negatives];
        for _ in 0..config.epochs {
            for (center, context) in corpus.pairs(config.window) {
                for n in &mut negs {
                    *n = sampler.sample(&mut rng);
                }
                model.train_pair(&features[center as usize], context, &negs, config.lr);
            }
        }
        // idf over the corpus vocabulary
        let n_sentences = corpus.sentences.len().max(1) as f32;
        let mut idf = std::collections::HashMap::new();
        let mut max_idf: f32 = 1.0;
        for id in 0..corpus.vocab_size() as u32 {
            let w = (n_sentences / (1.0 + corpus.count(id) as f32)).ln().max(0.1);
            max_idf = max_idf.max(w);
            idf.insert(corpus.token(id).to_string(), w);
        }
        FastText { model, config, idf, max_idf }
    }

    fn ngram_ids(token: &str, config: &FastTextConfig) -> Vec<u32> {
        fasttext_ngrams(token, config.min_n, config.max_n)
            .into_iter()
            .map(|g| {
                let mut h = DefaultHasher::new();
                g.hash(&mut h);
                (h.finish() % config.buckets as u64) as u32
            })
            .collect()
    }

    /// Embeds a single token through its n-gram features.
    pub fn token_vector(&self, token: &str) -> Vec<f32> {
        let ids = Self::ngram_ids(token, &self.config);
        self.model.embed_features(&ids)
    }
}

impl StringEncoder for FastText {
    fn dim(&self) -> usize {
        self.model.dim()
    }

    /// Idf-weighted mean of per-token subword embeddings. Never zero for
    /// non-empty alphabetic input — n-grams always exist. Unknown tokens
    /// get the maximum idf (they are maximally distinctive).
    fn embed(&self, s: &str) -> Vec<f32> {
        let tokens = words(s);
        let mut acc = vec![0.0f32; self.dim()];
        if tokens.is_empty() {
            return acc;
        }
        let mut total_w = 0.0f32;
        for token in &tokens {
            let w = self.idf.get(token).copied().unwrap_or(self.max_idf);
            let v = self.token_vector(token);
            for (a, x) in acc.iter_mut().zip(v) {
                *a += w * x;
            }
            total_w += w;
        }
        if total_w > 0.0 {
            for a in &mut acc {
                *a /= total_w;
            }
        }
        acc
    }

    fn name(&self) -> &'static str {
        "fastText"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word2vec::{Word2Vec, Word2VecConfig};

    fn toy_corpus() -> Corpus {
        let mut c = Corpus::default();
        for _ in 0..40 {
            c.add_sentence(vec!["germany".into(), "deutschland".into()]);
            c.add_sentence(vec!["tokyo".into(), "japan".into()]);
        }
        c
    }

    fn cos(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        dot / (na * nb + 1e-9)
    }

    fn small_config() -> FastTextConfig {
        FastTextConfig { dim: 16, buckets: 1 << 12, epochs: 15, ..Default::default() }
    }

    #[test]
    fn typos_stay_close_unlike_word2vec() {
        let corpus = toy_corpus();
        let ft = FastText::train(&corpus, small_config());
        let w2v = Word2Vec::train(&corpus, Word2VecConfig { dim: 16, epochs: 15, ..Default::default() });

        let ft_sim = cos(&ft.embed("germany"), &ft.embed("germani"));
        assert!(ft_sim > 0.5, "fastText typo similarity too low: {ft_sim}");
        // word2vec has nothing for the typo at all
        assert!(w2v.embed("germani").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cooccurring_words_are_closer() {
        let ft = FastText::train(&toy_corpus(), small_config());
        let g = ft.embed("germany");
        let d = ft.embed("deutschland");
        let t = ft.embed("tokyo");
        assert!(cos(&g, &d) > cos(&g, &t));
    }

    #[test]
    fn empty_string_embeds_to_zero() {
        let ft = FastText::train(&toy_corpus(), small_config());
        assert!(ft.embed("").iter().all(|&x| x == 0.0));
        assert!(ft.embed("   ").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn oov_word_is_nonzero() {
        let ft = FastText::train(&toy_corpus(), small_config());
        let v = ft.embed("xqzzy");
        assert!(v.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = toy_corpus();
        let a = FastText::train(&corpus, small_config());
        let b = FastText::train(&corpus, small_config());
        assert_eq!(a.embed("germany"), b.embed("germany"));
    }
}

impl FastText {
    /// Serializes the trained model (SGNS weights, n-gram configuration,
    /// idf table) to a buffer loadable with [`FastText::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // config scalars
        for v in [
            self.config.dim as u64,
            self.config.min_n as u64,
            self.config.max_n as u64,
            self.config.buckets as u64,
            self.config.window as u64,
            self.config.negatives as u64,
            self.config.epochs as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.config.lr.to_le_bytes());
        out.extend_from_slice(&self.config.seed.to_le_bytes());
        out.extend_from_slice(&self.max_idf.to_le_bytes());
        // idf table
        out.extend_from_slice(&(self.idf.len() as u64).to_le_bytes());
        let mut entries: Vec<(&String, &f32)> = self.idf.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (token, &w) in entries {
            out.extend_from_slice(&(token.len() as u64).to_le_bytes());
            out.extend_from_slice(token.as_bytes());
            out.extend_from_slice(&w.to_le_bytes());
        }
        // SGNS weights
        let sgns = self.model.to_bytes();
        out.extend_from_slice(&(sgns.len() as u64).to_le_bytes());
        out.extend_from_slice(&sgns);
        out
    }

    /// Restores a model serialized with [`FastText::to_bytes`].
    ///
    /// # Errors
    /// Returns a description of the first structural problem found.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut cur = 0usize;
        let read_u64 = |cur: &mut usize| -> Result<u64, String> {
            let end = *cur + 8;
            let s = bytes.get(*cur..end).ok_or("truncated fastText buffer")?;
            *cur = end;
            Ok(u64::from_le_bytes(s.try_into().map_err(|_| "truncated fastText buffer")?))
        };
        let read_f32 = |cur: &mut usize| -> Result<f32, String> {
            let end = *cur + 4;
            let s = bytes.get(*cur..end).ok_or("truncated fastText buffer")?;
            *cur = end;
            Ok(f32::from_le_bytes(s.try_into().map_err(|_| "truncated fastText buffer")?))
        };
        let dim = read_u64(&mut cur)? as usize;
        let min_n = read_u64(&mut cur)? as usize;
        let max_n = read_u64(&mut cur)? as usize;
        let buckets = read_u64(&mut cur)? as usize;
        let window = read_u64(&mut cur)? as usize;
        let negatives = read_u64(&mut cur)? as usize;
        let epochs = read_u64(&mut cur)? as usize;
        let lr = read_f32(&mut cur)?;
        let seed = read_u64(&mut cur)?;
        let max_idf = read_f32(&mut cur)?;
        let config = FastTextConfig {
            dim, min_n, max_n, buckets, window, negatives, epochs, lr, seed,
        };
        let idf_len = read_u64(&mut cur)? as usize;
        let mut idf = std::collections::HashMap::with_capacity(idf_len);
        for _ in 0..idf_len {
            let tlen = read_u64(&mut cur)? as usize;
            let end = cur + tlen;
            let token = std::str::from_utf8(bytes.get(cur..end).ok_or("truncated token")?)
                .map_err(|e| format!("invalid utf8 token: {e}"))?
                .to_string();
            cur = end;
            let w = read_f32(&mut cur)?;
            idf.insert(token, w);
        }
        let sgns_len = read_u64(&mut cur)? as usize;
        let end = cur + sgns_len;
        let model = SgnsModel::from_bytes(bytes.get(cur..end).ok_or("truncated SGNS block")?)?;
        if model.dim() != dim {
            return Err(format!("SGNS dim {} != config dim {dim}", model.dim()));
        }
        Ok(FastText { model, config, idf, max_idf })
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use crate::corpus::Corpus;
    use crate::encoder::StringEncoder;

    #[test]
    fn round_trip_preserves_embeddings() {
        let mut c = Corpus::default();
        for _ in 0..10 {
            c.add_sentence(vec!["alpha".into(), "beta".into(), "gamma".into()]);
        }
        let ft = FastText::train(
            &c,
            FastTextConfig { dim: 8, buckets: 1 << 10, epochs: 3, ..Default::default() },
        );
        let restored = FastText::from_bytes(&ft.to_bytes()).unwrap();
        assert_eq!(ft.embed("alpha beta"), restored.embed("alpha beta"));
        assert_eq!(ft.embed("alphaa"), restored.embed("alphaa")); // OOV path
    }

    #[test]
    fn rejects_corrupt_buffer() {
        assert!(FastText::from_bytes(&[1, 2, 3]).is_err());
    }
}
