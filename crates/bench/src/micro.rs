//! Hand-rolled micro-benchmark runner replacing Criterion, which is
//! unavailable in offline builds. Each benchmark auto-calibrates an
//! iteration batch so one sample costs a few milliseconds, records
//! per-iteration nanoseconds into an obs [`Histogram`], and prints a
//! p50/p90/p99 table through the same formatter the repro bins use.

use emblookup_obs::{fmt_nanos, Histogram, HistogramSnapshot};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so bench files keep the familiar `black_box(...)` idiom.
pub use std::hint::black_box as bb;

/// Target wall-clock cost of one timed sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(4);
/// Timed samples per benchmark.
const SAMPLES: usize = 25;
/// Warmup budget before calibration.
const WARMUP: Duration = Duration::from_millis(20);

/// A named group of benchmarks printed as one table (the Criterion
/// `benchmark_group` analogue).
pub struct Group {
    name: String,
    rows: Vec<(String, HistogramSnapshot)>,
}

impl Group {
    /// Starts a benchmark group.
    pub fn new(name: &str) -> Self {
        Group { name: name.to_string(), rows: Vec::new() }
    }

    /// Times `f`, recording mean per-iteration latency once per sample.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        // warmup: keeps caches/branch predictors and lazy inits out of the
        // timed region, and yields a first cost estimate for calibration
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_start.elapsed() < WARMUP || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed() / warm_iters.max(1);
        let batch = (SAMPLE_BUDGET.as_nanos() / est.as_nanos().max(1))
            .clamp(1, 1_000_000) as u32;

        let hist = Histogram::new();
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t.elapsed().as_nanos() as u64 / batch as u64;
            hist.record(per_iter);
        }
        self.rows.push((id.to_string(), hist.snapshot()));
    }

    /// Prints the group's results table.
    pub fn finish(self) {
        println!("\n== {} ==", self.name);
        println!(
            "{:<42} {:>10} {:>10} {:>10}",
            "benchmark", "p50", "p90", "p99"
        );
        for (id, s) in &self.rows {
            println!(
                "{:<42} {:>10} {:>10} {:>10}",
                id,
                fmt_nanos(s.p50()),
                fmt_nanos(s.p90()),
                fmt_nanos(s.p99()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_sane_latencies() {
        let mut g = Group::new("test");
        g.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        let (_, s) = &g.rows[0];
        assert_eq!(s.count, SAMPLES as u64);
        assert!(s.p50() > 0);
        assert!(s.p99() >= s.p50());
        g.finish();
    }
}
