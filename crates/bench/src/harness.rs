//! Shared experiment context: KGs, datasets, trained EmbLookup models and
//! baseline services, built once per flavor and reused across experiments.

use emblookup_core::{Compression, EmbLookup, EmbLookupConfig};
use emblookup_kg::{generate, KgFlavor, LookupService, SynthKg, SynthKgConfig};
use emblookup_semtab::{generate_dataset, Dataset, DatasetConfig};
use std::time::Duration;

/// Reads a usize override from the environment (smoke-scale tuning knob).
fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Master seed for the whole experiment suite; every derived seed offsets
/// from it so the full report is reproducible end to end.
pub const MASTER_SEED: u64 = 2022;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Integration-test scale (seconds).
    Smoke,
    /// Full report scale (minutes).
    Full,
}

impl Scale {
    /// KG config for a flavor at this scale.
    pub fn kg_config(&self, flavor: KgFlavor) -> SynthKgConfig {
        match self {
            Scale::Smoke => SynthKgConfig {
                flavor,
                ..SynthKgConfig::small(MASTER_SEED)
            },
            Scale::Full => SynthKgConfig::benchmark(MASTER_SEED, flavor),
        }
    }

    /// EmbLookup training config at this scale.
    pub fn emblookup_config(&self) -> EmbLookupConfig {
        match self {
            Scale::Smoke => EmbLookupConfig {
                epochs: env_usize("EL_EPOCHS", 6),
                triplets_per_entity: env_usize("EL_TRIPLETS", 10),
                ..EmbLookupConfig::fast(MASTER_SEED)
            },
            Scale::Full => EmbLookupConfig {
                // the 10× larger corpus rewards a longer semantic-leg run
                fasttext_epochs: 40,
                ..EmbLookupConfig::fast(MASTER_SEED)
            },
        }
    }

    /// Configuration of the large lookup catalog used by the head-to-head
    /// service comparison (Table V). The paper evaluates lookup over full
    /// Wikidata; speedup magnitudes only emerge once the catalog is much
    /// larger than the training KG, so Table V indexes this bigger graph
    /// with the already-trained model.
    pub fn catalog_kg_config(&self) -> SynthKgConfig {
        match self {
            Scale::Smoke => SynthKgConfig {
                flavor: KgFlavor::Wikidata,
                ..SynthKgConfig::small(MASTER_SEED + 100)
            },
            Scale::Full => SynthKgConfig {
                seed: MASTER_SEED + 100,
                flavor: KgFlavor::Wikidata,
                countries: 300,
                cities: 11_000,
                persons: 11_000,
                organizations: 5_000,
                films: 3_000,
                ambiguity_rate: 0.04,
                mean_aliases: 3,
            },
        }
    }

    /// Number of queries for the head-to-head comparison.
    pub fn catalog_queries(&self) -> usize {
        match self {
            Scale::Smoke => 150,
            Scale::Full => 800,
        }
    }

    /// Dataset config factory scaled down for smoke runs.
    pub fn dataset_config(&self, base: DatasetConfig) -> DatasetConfig {
        match self {
            Scale::Smoke => DatasetConfig {
                tables: (base.tables / 8).max(3),
                ..base
            },
            Scale::Full => base,
        }
    }
}

/// One fully-prepared evaluation environment for a KG flavor.
pub struct Env {
    /// The synthetic KG.
    pub synth: SynthKg,
    /// Clean benchmark dataset for this flavor.
    pub dataset: Dataset,
    /// Trained EmbLookup with PQ compression (the paper's EL).
    pub el: EmbLookup,
    /// Trained EmbLookup without compression (EL-NC), same weights.
    pub el_nc: EmbLookup,
}

impl Env {
    /// Builds the environment: generates the KG and dataset, trains
    /// EmbLookup once, and indexes the same weights twice (PQ and flat).
    pub fn build(flavor: KgFlavor, scale: Scale) -> Self {
        let synth = generate(scale.kg_config(flavor));
        let ds_config = scale.dataset_config(match flavor {
            KgFlavor::Wikidata => DatasetConfig::st_wikidata(MASTER_SEED + 1),
            KgFlavor::DbPedia => DatasetConfig::st_dbpedia(MASTER_SEED + 2),
        });
        let dataset = generate_dataset(&synth, &ds_config);

        let config = scale.emblookup_config();
        // train once (flat index), then re-index the same shared weights
        // under PQ — EL and EL-NC must use the identical embedding model
        let el_nc = EmbLookup::train_on(
            &synth.kg,
            EmbLookupConfig { compression: Compression::None, ..config },
        )
        .with_metrics_scope("el_nc");
        let el = EmbLookup::from_model(el_nc.model_arc(), &synth.kg, Compression::default_pq())
            .with_metrics_scope("el");
        Env { synth, dataset, el, el_nc }
    }
}

/// Speedup of `fast` over `slow`, as the paper reports ("20x").
pub fn speedup(slow: Duration, fast: Duration) -> f64 {
    let f = fast.as_secs_f64();
    if f <= 0.0 {
        return f64::INFINITY;
    }
    slow.as_secs_f64() / f
}

/// Fraction of queries whose ground-truth entity appears in the service's
/// top-`k` — the success criterion of the paper's head-to-head comparison.
pub fn hit_rate_at_k(
    service: &dyn LookupService,
    queries: &[(&str, emblookup_kg::EntityId)],
    k: usize,
) -> f64 {
    if queries.is_empty() {
        return 1.0;
    }
    let texts: Vec<&str> = queries.iter().map(|&(q, _)| q).collect();
    let results = service.lookup_batch(&texts, k);
    let hits = results
        .iter()
        .zip(queries)
        .filter(|(hits, &(_, truth))| hits.iter().any(|c| c.entity == truth))
        .count();
    hits as f64 / queries.len() as f64
}

/// Formats a duration compactly for table output. Delegates to the obs
/// crate's nanosecond formatter so sub-millisecond lookup latencies print
/// as `45.0µs` instead of the old `0.0ms`.
pub fn fmt_duration(d: Duration) -> String {
    emblookup_obs::fmt_duration(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        assert_eq!(speedup(Duration::from_secs(10), Duration::from_secs(2)), 5.0);
        assert!(speedup(Duration::from_secs(1), Duration::ZERO).is_infinite());
    }

    #[test]
    fn fmt_duration_scales() {
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.50s");
        assert_eq!(fmt_duration(Duration::from_micros(2500)), "2.5ms");
        // the microsecond range used to collapse to "0.0ms"
        assert_eq!(fmt_duration(Duration::from_micros(45)), "45.0µs");
        assert_eq!(fmt_duration(Duration::from_nanos(800)), "800ns");
    }
}
