//! # emblookup-bench
//!
//! Experiment harness regenerating every table and figure of the paper.
//! See `src/bin/repro.rs` for the table/figure reproductions and
//! `benches/` for the Criterion micro-benchmarks.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
