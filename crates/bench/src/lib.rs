//! # emblookup-bench
//!
//! Experiment harness regenerating every table and figure of the paper.
//! See `src/bin/repro.rs` for the table/figure reproductions and
//! `benches/` for the micro-benchmarks (run on the in-tree [`micro`]
//! runner so the workspace needs no external bench framework).

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod micro;
