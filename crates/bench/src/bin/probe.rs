//! Quick end-to-end quality probe (not part of the paper reproduction):
//! trains EmbLookup at smoke scale and prints hit@k / CEA numbers so the
//! developer can sanity-check model quality before running `repro`.

use emblookup_baselines::{ElasticLikeService, ExactMatchService, LevenshteinService};
use emblookup_bench::harness::{hit_rate_at_k, Env, Scale};
use emblookup_kg::{KgFlavor, LookupService};
use emblookup_semtab::{run_cea, with_alias_substitution, with_noise, BbwSystem};
use std::time::Instant;

fn main() {
    emblookup_obs::init_from_env();
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Smoke
    };
    let t0 = Instant::now();
    let env = Env::build(KgFlavor::Wikidata, scale);
    println!(
        "built env: {} entities, {} tables, {} cells in {:.1?}",
        env.synth.kg.num_entities(),
        env.dataset.tables.len(),
        env.dataset.num_entity_cells(),
        t0.elapsed()
    );
    for e in &env.el_nc.report().epochs {
        println!(
            "  epoch {:>2} {} loss {:.4} active {}",
            e.epoch,
            if e.online_phase { "online " } else { "offline" },
            e.mean_loss,
            e.active_triplets
        );
    }

    // hit@10 on exact labels, typo'd labels, aliases
    let labels: Vec<(&str, emblookup_kg::EntityId)> = env
        .synth
        .kg
        .entities()
        .take(300)
        .map(|e| (e.label.as_str(), e.id))
        .collect();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let injector = emblookup_text::NoiseInjector::typos();
    let typod: Vec<(String, emblookup_kg::EntityId)> = labels
        .iter()
        .map(|&(l, id)| (injector.corrupt(l, &mut rng), id))
        .collect();
    let typod_refs: Vec<(&str, emblookup_kg::EntityId)> =
        typod.iter().map(|(s, id)| (s.as_str(), *id)).collect();
    let aliased: Vec<(String, emblookup_kg::EntityId)> = env
        .synth
        .kg
        .entities()
        .take(300)
        .filter(|e| !e.aliases.is_empty())
        .map(|e| (e.aliases[0].clone(), e.id))
        .collect();
    let alias_refs: Vec<(&str, emblookup_kg::EntityId)> =
        aliased.iter().map(|(s, id)| (s.as_str(), *id)).collect();

    for (name, svc) in [
        ("EL   ", &env.el as &dyn LookupService),
        ("EL-NC", &env.el_nc as &dyn LookupService),
    ] {
        println!(
            "{name} hit@10 exact {:.3} typo {:.3} alias {:.3}",
            hit_rate_at_k(svc, &labels, 10),
            hit_rate_at_k(svc, &typod_refs, 10),
            hit_rate_at_k(svc, &alias_refs, 10),
        );
    }
    let exact = ExactMatchService::new(&env.synth.kg, false);
    let lev = LevenshteinService::new(&env.synth.kg, false, 3);
    let elastic = ElasticLikeService::new(&env.synth.kg, false);
    for (name, svc) in [
        ("exact", &exact as &dyn LookupService),
        ("lev  ", &lev as &dyn LookupService),
        ("elast", &elastic as &dyn LookupService),
    ] {
        println!(
            "{name} hit@10 exact {:.3} typo {:.3} alias {:.3}",
            hit_rate_at_k(svc, &labels, 10),
            hit_rate_at_k(svc, &typod_refs, 10),
            hit_rate_at_k(svc, &alias_refs, 10),
        );
    }

    // CEA with bbw under the three dataset variants
    let noisy = with_noise(&env.dataset, 0.10, 7);
    let aliased_ds = with_alias_substitution(&env.dataset, &env.synth, 7);
    for (tag, ds) in [("clean", &env.dataset), ("noisy", &noisy), ("alias", &aliased_ds)] {
        let r_el = run_cea(&env.synth.kg, ds, &BbwSystem, &env.el, 20);
        let r_ex = run_cea(&env.synth.kg, ds, &BbwSystem, &elastic, 20);
        println!(
            "CEA/bbw {tag}: EL F1 {:.3} (lookup {:?}) | ElasticLike F1 {:.3} (lookup {:?})",
            r_el.f1(),
            r_el.lookup_time,
            r_ex.f1(),
            r_ex.lookup_time
        );
    }
    println!("\npipeline metrics:");
    println!("{}", emblookup_obs::global().snapshot().render_table());
    println!("total {:.1?}", t0.elapsed());
}
