//! Diagnostic: how well does each leg (fastText alone, full model) map
//! aliases and typos onto labels? Developer tool, not a paper experiment.

use emblookup_ann::{FlatIndex, VectorSet};
use emblookup_embed::{Corpus, FastText, FastTextConfig, StringEncoder};
use emblookup_kg::{generate, KgFlavor, SynthKgConfig};

fn main() {
    let epochs: usize = std::env::var("FT_EPOCHS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    let big = std::env::var("BIG").is_ok();
    let s = if big {
        generate(SynthKgConfig::benchmark(2022, KgFlavor::Wikidata))
    } else {
        generate(SynthKgConfig { flavor: KgFlavor::Wikidata, ..SynthKgConfig::small(2022) })
    };
    let corpus = Corpus::from_kg(&s.kg);
    println!("corpus: {} sentences, vocab {}", corpus.sentences.len(), corpus.vocab_size());
    let ft = FastText::train(&corpus, FastTextConfig { dim: 64, epochs, seed: 2022, ..Default::default() });

    let mut index = VectorSet::new(64);
    let labels: Vec<String> = s.kg.entities().map(|e| e.label.clone()).collect();
    for l in &labels {
        index.push(&ft.embed(l));
    }
    let flat = FlatIndex::new(index);

    let hit = |queries: &[(String, usize)]| -> f64 {
        let mut h = 0;
        for (q, truth) in queries {
            let hits = flat.search(&ft.embed(q), 10);
            if hits.iter().any(|n| n.index == *truth) {
                h += 1;
            }
        }
        h as f64 / queries.len() as f64
    };

    let alias_q: Vec<(String, usize)> = s.kg.entities().enumerate()
        .filter(|(_, e)| !e.aliases.is_empty())
        .map(|(i, e)| (e.aliases[0].clone(), i))
        .take(500)
        .collect();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let inj = emblookup_text::NoiseInjector::typos();
    let typo_q: Vec<(String, usize)> = labels.iter().enumerate()
        .map(|(i, l)| (inj.corrupt(l, &mut rng), i)).take(500).collect();
    let exact_q: Vec<(String, usize)> = labels.iter().enumerate()
        .map(|(i, l)| (l.clone(), i)).take(500).collect();
    println!("fastText-only hit@10: exact {:.3} typo {:.3} alias {:.3}",
        hit(&exact_q), hit(&typo_q), hit(&alias_q));
}
