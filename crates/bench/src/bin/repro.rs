//! Regenerates every table and figure of the EmbLookup paper.
//!
//! ```text
//! cargo run --release -p emblookup-bench --bin repro              # all, full scale
//! cargo run --release -p emblookup-bench --bin repro -- --smoke   # quick pass
//! cargo run --release -p emblookup-bench --bin repro -- table5 fig4
//! ```
//!
//! Experiment names: `table1` … `table8`, `fig3`, `fig4`, `fig5`, `sizes`.

use emblookup_bench::experiments as exp;
use emblookup_bench::harness::{Env, Scale};
use emblookup_kg::KgFlavor;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Full
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    println!(
        "# EmbLookup reproduction report ({})\n",
        if scale == Scale::Smoke { "smoke scale" } else { "full scale" }
    );

    let needs_wd = ["table2", "table4", "table5", "table6", "table7", "fig4", "fig5", "sizes"]
        .iter()
        .any(|e| want(e));
    let needs_db = ["table3", "table4", "table6"].iter().any(|e| want(e));

    let t0 = Instant::now();
    let env_wd = needs_wd.then(|| {
        eprintln!("[setup] building ST-Wikidata environment…");
        Env::build(KgFlavor::Wikidata, scale)
    });
    let env_db = needs_db.then(|| {
        eprintln!("[setup] building ST-DBPedia environment…");
        Env::build(KgFlavor::DbPedia, scale)
    });
    eprintln!("[setup] done in {:.1?}", t0.elapsed());

    let run = |name: &str, f: &mut dyn FnMut() -> String| {
        if !want(name) {
            return;
        }
        let start = Instant::now();
        let report = f();
        println!("{report}");
        eprintln!("[{name}] finished in {:.1?}", start.elapsed());
    };

    run("table1", &mut || exp::table1(scale));
    if let Some(env) = &env_wd {
        run("table2", &mut || exp::table2(env));
    }
    if let Some(env) = &env_db {
        run("table3", &mut || exp::table3(env));
    }
    if let (Some(wd), Some(db)) = (&env_wd, &env_db) {
        run("table4", &mut || exp::table4(wd, db, scale));
        run("table6", &mut || exp::table6(wd, db, scale));
    }
    if let Some(env) = &env_wd {
        run("table5", &mut || exp::table5(env, scale));
        run("table7", &mut || exp::table7(env));
    }
    run("table8", &mut || exp::table8(scale));
    run("ablation", &mut || exp::ablation(scale));
    run("fig3", &mut || exp::fig3(scale));
    if let Some(env) = &env_wd {
        run("fig4", &mut || exp::fig4(env));
        run("fig5", &mut || exp::fig5(env));
        run("sizes", &mut || exp::index_sizes(env));
    }
    eprintln!("[repro] total {:.1?}", t0.elapsed());
}
