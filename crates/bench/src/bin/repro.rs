//! Regenerates every table and figure of the EmbLookup paper.
//!
//! ```text
//! cargo run --release -p emblookup-bench --bin repro              # all, full scale
//! cargo run --release -p emblookup-bench --bin repro -- --smoke   # quick pass
//! cargo run --release -p emblookup-bench --bin repro -- table5 fig4
//! ```
//!
//! Experiment names: `table1` … `table8`, `fig3`, `fig4`, `fig5`, `sizes`.
//!
//! Every run ends with the observability snapshot: a per-stage metrics
//! table (training stage wall-times, index build, per-query lookup
//! percentiles) on stdout and the same data as JSON in
//! `BENCH_lookup.json`. Set `EMBLOOKUP_OBS=stderr` or
//! `EMBLOOKUP_OBS_JSON=<path>` for live stage events.

use emblookup_bench::experiments as exp;
use emblookup_bench::harness::{Env, Scale};
use emblookup_kg::KgFlavor;
use std::time::Instant;

/// Queries used to populate the `lookup.latency.{el,el_nc}` histograms so
/// the closing report always has per-query percentiles, whichever
/// experiments were selected.
const LATENCY_PROBE_QUERIES: usize = 100;

fn probe_lookup_latency(env: &Env) {
    let labels: Vec<&str> = env
        .synth
        .kg
        .entities()
        .take(LATENCY_PROBE_QUERIES)
        .map(|e| e.label.as_str())
        .collect();
    for service in [&env.el, &env.el_nc] {
        for q in labels.iter().cycle().take(LATENCY_PROBE_QUERIES) {
            let _ = service.lookup_with_distances(q, 10);
        }
    }
}

fn main() {
    emblookup_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Full
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    println!(
        "# EmbLookup reproduction report ({})\n",
        if scale == Scale::Smoke { "smoke scale" } else { "full scale" }
    );

    let needs_wd = ["table2", "table4", "table5", "table6", "table7", "fig4", "fig5", "sizes"]
        .iter()
        .any(|e| want(e));
    let needs_db = ["table3", "table4", "table6"].iter().any(|e| want(e));

    let t0 = Instant::now();
    let env_wd = needs_wd.then(|| {
        eprintln!("[setup] building ST-Wikidata environment…");
        Env::build(KgFlavor::Wikidata, scale)
    });
    let env_db = needs_db.then(|| {
        eprintln!("[setup] building ST-DBPedia environment…");
        Env::build(KgFlavor::DbPedia, scale)
    });
    eprintln!("[setup] done in {:.1?}", t0.elapsed());
    if let Some(env) = &env_wd {
        probe_lookup_latency(env);
    }

    let run = |name: &str, f: &mut dyn FnMut() -> String| {
        if !want(name) {
            return;
        }
        let start = Instant::now();
        let report = f();
        println!("{report}");
        eprintln!("[{name}] finished in {:.1?}", start.elapsed());
    };

    run("table1", &mut || exp::table1(scale));
    if let Some(env) = &env_wd {
        run("table2", &mut || exp::table2(env));
    }
    if let Some(env) = &env_db {
        run("table3", &mut || exp::table3(env));
    }
    if let (Some(wd), Some(db)) = (&env_wd, &env_db) {
        run("table4", &mut || exp::table4(wd, db, scale));
        run("table6", &mut || exp::table6(wd, db, scale));
    }
    if let Some(env) = &env_wd {
        run("table5", &mut || exp::table5(env, scale));
        run("table7", &mut || exp::table7(env));
    }
    run("table8", &mut || exp::table8(scale));
    run("ablation", &mut || exp::ablation(scale));
    run("fig3", &mut || exp::fig3(scale));
    if let Some(env) = &env_wd {
        run("fig4", &mut || exp::fig4(env));
        run("fig5", &mut || exp::fig5(env));
        run("sizes", &mut || exp::index_sizes(env));
    }
    let snap = emblookup_obs::global().snapshot();
    println!("## Pipeline metrics\n");
    println!("{}", snap.render_table());
    match std::fs::write("BENCH_lookup.json", snap.to_json()) {
        Ok(()) => eprintln!("[repro] metrics snapshot written to BENCH_lookup.json"),
        Err(e) => eprintln!("[repro] cannot write BENCH_lookup.json: {e}"),
    }
    eprintln!("[repro] total {:.1?}", t0.elapsed());
}
