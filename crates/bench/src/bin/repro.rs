//! Regenerates every table and figure of the EmbLookup paper.
//!
//! ```text
//! cargo run --release -p emblookup-bench --bin repro              # all, full scale
//! cargo run --release -p emblookup-bench --bin repro -- --smoke   # quick pass
//! cargo run --release -p emblookup-bench --bin repro -- table5 fig4
//! ```
//!
//! Experiment names: `table1` … `table8`, `fig3`, `fig4`, `fig5`, `sizes`.
//!
//! Every run ends with the observability snapshot: a per-stage lookup
//! self-time table built from span trees, a per-stage metrics table
//! (training stage wall-times, index build, per-query lookup
//! percentiles) on stdout and the same data as JSON in
//! `BENCH_lookup.json`. Set `EMBLOOKUP_OBS=stderr` or
//! `EMBLOOKUP_OBS_JSON=<path>` for live stage events.

use emblookup_bench::experiments as exp;
use emblookup_bench::harness::{Env, Scale};
use emblookup_kg::KgFlavor;
use emblookup_obs::{names, trace_id_from_index, Trace, TraceClock};
use std::time::Instant;

/// Queries used to populate the `lookup.latency.{el,el_nc}` histograms so
/// the closing report always has per-query percentiles, whichever
/// experiments were selected.
const LATENCY_PROBE_QUERIES: usize = 100;

fn probe_lookup_latency(env: &Env) {
    let labels: Vec<&str> = env
        .synth
        .kg
        .entities()
        .take(LATENCY_PROBE_QUERIES)
        .map(|e| e.label.as_str())
        .collect();
    for service in [&env.el, &env.el_nc] {
        for q in labels.iter().cycle().take(LATENCY_PROBE_QUERIES) {
            let _ = service.lookup_with_distances(q, 10);
        }
    }
}

/// Per-stage self-time table derived from span trees: every probe query
/// runs through the traced lookup path under its own trace, and each
/// span's *self* time (duration minus direct children) is aggregated by
/// span name. Unlike the stage histograms, which time stages in
/// isolation, this attributes every nanosecond of the request wall time
/// to exactly one stage — the rows sum to the root duration.
fn stage_self_time_report(env: &Env) -> String {
    let labels: Vec<&str> = env
        .synth
        .kg
        .entities()
        .take(LATENCY_PROBE_QUERIES)
        .map(|e| e.label.as_str())
        .collect();
    // (span name, total self ns, span count) in first-seen order, which
    // the span-id ordering of the snapshot makes the pipeline order.
    let mut agg: Vec<(&'static str, u64, u64)> = Vec::new();
    let mut total_ns: u64 = 0;
    for (i, q) in labels.iter().cycle().take(LATENCY_PROBE_QUERIES).enumerate() {
        let trace = Trace::start(trace_id_from_index(i as u64), TraceClock::real());
        let root = trace.root(names::SPAN_LOOKUP_REQUEST);
        let _ = env.el.lookup_with_distances_traced(q, 10, &root);
        root.finish();
        let data = trace.snapshot();
        total_ns += data.duration_ns();
        for (span, self_ns) in data.spans.iter().zip(data.self_times_ns()) {
            match agg.iter_mut().find(|(n, _, _)| *n == span.name) {
                Some(row) => {
                    row.1 += self_ns;
                    row.2 += 1;
                }
                None => agg.push((span.name, self_ns, 1)),
            }
        }
    }
    let fmt_ns = |ns: u64| {
        if ns >= 1_000_000_000 {
            format!("{:.2}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.2}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.2}us", ns as f64 / 1e3)
        } else {
            format!("{ns}ns")
        }
    };
    let mut rows: Vec<[String; 5]> = vec![[
        "span".into(),
        "spans".into(),
        "total self".into(),
        "mean self".into(),
        "share".into(),
    ]];
    for &(name, self_ns, count) in &agg {
        let share = if total_ns > 0 { 100.0 * self_ns as f64 / total_ns as f64 } else { 0.0 };
        rows.push([
            name.to_string(),
            count.to_string(),
            fmt_ns(self_ns),
            fmt_ns(self_ns / count.max(1)),
            format!("{share:.1}%"),
        ]);
    }
    let widths: Vec<usize> =
        (0..5).map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0)).collect();
    let mut out = String::from("## Lookup stage self-times (from span trees)\n\n");
    out.push_str(&format!(
        "{} traced queries against {}; self time = span duration minus direct children.\n\n",
        LATENCY_PROBE_QUERIES,
        env.el.index().backend_name(),
    ));
    for (i, r) in rows.iter().enumerate() {
        let line: Vec<String> =
            r.iter().enumerate().map(|(c, cell)| format!("{cell:<w$}", w = widths[c])).collect();
        out.push_str(line.join("  ").trim_end());
        out.push('\n');
        if i == 0 {
            let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            out.push_str(&dashes.join("  "));
            out.push('\n');
        }
    }
    out
}

fn main() {
    emblookup_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--smoke") {
        Scale::Smoke
    } else {
        Scale::Full
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| selected.is_empty() || selected.contains(&name);

    println!(
        "# EmbLookup reproduction report ({})\n",
        if scale == Scale::Smoke { "smoke scale" } else { "full scale" }
    );

    let needs_wd = ["table2", "table4", "table5", "table6", "table7", "fig4", "fig5", "sizes"]
        .iter()
        .any(|e| want(e));
    let needs_db = ["table3", "table4", "table6"].iter().any(|e| want(e));

    let t0 = Instant::now();
    let env_wd = needs_wd.then(|| {
        eprintln!("[setup] building ST-Wikidata environment…");
        Env::build(KgFlavor::Wikidata, scale)
    });
    let env_db = needs_db.then(|| {
        eprintln!("[setup] building ST-DBPedia environment…");
        Env::build(KgFlavor::DbPedia, scale)
    });
    eprintln!("[setup] done in {:.1?}", t0.elapsed());
    if let Some(env) = &env_wd {
        probe_lookup_latency(env);
    }

    let run = |name: &str, f: &mut dyn FnMut() -> String| {
        if !want(name) {
            return;
        }
        let start = Instant::now();
        let report = f();
        println!("{report}");
        eprintln!("[{name}] finished in {:.1?}", start.elapsed());
    };

    run("table1", &mut || exp::table1(scale));
    if let Some(env) = &env_wd {
        run("table2", &mut || exp::table2(env));
    }
    if let Some(env) = &env_db {
        run("table3", &mut || exp::table3(env));
    }
    if let (Some(wd), Some(db)) = (&env_wd, &env_db) {
        run("table4", &mut || exp::table4(wd, db, scale));
        run("table6", &mut || exp::table6(wd, db, scale));
    }
    if let Some(env) = &env_wd {
        run("table5", &mut || exp::table5(env, scale));
        run("table7", &mut || exp::table7(env));
    }
    run("table8", &mut || exp::table8(scale));
    run("ablation", &mut || exp::ablation(scale));
    run("fig3", &mut || exp::fig3(scale));
    if let Some(env) = &env_wd {
        run("fig4", &mut || exp::fig4(env));
        run("fig5", &mut || exp::fig5(env));
        run("sizes", &mut || exp::index_sizes(env));
    }
    if let Some(env) = &env_wd {
        println!("{}", stage_self_time_report(env));
    }
    let snap = emblookup_obs::global().snapshot();
    println!("## Pipeline metrics\n");
    println!("{}", snap.render_table());
    match std::fs::write("BENCH_lookup.json", snap.to_json()) {
        Ok(()) => eprintln!("[repro] metrics snapshot written to BENCH_lookup.json"),
        Err(e) => eprintln!("[repro] cannot write BENCH_lookup.json: {e}"),
    }
    eprintln!("[repro] total {:.1?}", t0.elapsed());
}
