//! ANN scale-tier benchmark: recall@10 and per-query latency percentiles
//! for every search backend over synthetic clustered embeddings, at the
//! entity counts the paper's KGs span and beyond.
//!
//! ```text
//! cargo run --release -p emblookup-bench --bin ann_bench              # 600 + 100k tiers
//! cargo run --release -p emblookup-bench --bin ann_bench -- --scale   # adds the 1M tier
//! cargo run --release -p emblookup-bench --bin ann_bench -- --smoke   # 600 tier only, CI smoke
//! ```
//!
//! Emits `BENCH_ann.json` in the repo root: per-tier, per-backend
//! `recall_at_10`, `p50_ns`/`p99_ns`, build time and true index bytes,
//! plus the active distance-kernel variant and the measured speedup of
//! the batched 4-lane ADC kernel over per-code scoring.

use emblookup_ann::{
    kernels, FlatIndex, HnswConfig, HnswIndex, HnswPqConfig, HnswPqIndex, IvfConfig, IvfIndex,
    Neighbor, PqConfig, PqIndex, VectorSet,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const DIM: usize = 64;
const K: usize = 10;
/// Timed passes over the query set; each query's latency is its minimum
/// across passes (the intrinsic cost of that query, with scheduler
/// jitter filtered out), and percentiles are over the per-query minima.
const PASSES: usize = 5;

/// Synthetic clustered embeddings: unit-ish cluster centres with small
/// isotropic noise, the same shape real entity embeddings take after
/// metric learning (tight label clusters, L2-comparable scales).
fn clustered(n: usize, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let nclusters = (n / 30).clamp(16, 4096);
    let centers: Vec<Vec<f32>> = (0..nclusters)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-1.0..1.0f32)).collect())
        .collect();
    let mut vs = VectorSet::new(DIM);
    let mut v = vec![0.0f32; DIM];
    for i in 0..n {
        let c = &centers[i % nclusters];
        for (out, &ci) in v.iter_mut().zip(c) {
            *out = ci + rng.gen_range(-0.35..0.35f32);
        }
        vs.push(&v);
    }
    vs
}

/// Held-out queries: perturbed copies of stored vectors, so every query
/// has a meaningful true neighbourhood.
fn queries_for(data: &VectorSet, nq: usize, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut qs = VectorSet::new(DIM);
    let mut q = vec![0.0f32; DIM];
    for i in 0..nq {
        let base = data.get((i * 37) % data.len());
        for (out, &bi) in q.iter_mut().zip(base) {
            *out = bi + rng.gen_range(-0.1..0.1f32);
        }
        qs.push(&q);
    }
    qs
}

struct BackendRun {
    name: &'static str,
    recall_at_10: f64,
    p50_ns: u64,
    p99_ns: u64,
    build_ms: u128,
    nbytes: usize,
}

/// Runs every query `PASSES` times through `search`, returning recall@10
/// against `truth` and the p50/p99 of the per-query minimum latencies.
/// Taking each query's best-of-passes measures the cost of the query
/// itself rather than of a scheduler preemption that landed on one run.
fn measure(
    queries: &VectorSet,
    truth: &[HashSet<usize>],
    mut search: impl FnMut(&[f32]) -> Vec<Neighbor>,
) -> (f64, u64, u64) {
    // warm-up pass: touch every code path (and the one-shot kernel
    // dispatch) before the clock starts
    for i in 0..queries.len().min(8) {
        black_box(search(queries.get(i)));
    }
    let mut lats = vec![u64::MAX; queries.len()];
    let mut hit = 0usize;
    let mut total = 0usize;
    for pass in 0..PASSES {
        for i in 0..queries.len() {
            let t = Instant::now();
            let res = black_box(search(queries.get(i)));
            lats[i] = lats[i].min(t.elapsed().as_nanos() as u64);
            if pass == 0 {
                hit += res.iter().filter(|n| truth[i].contains(&n.index)).count();
                total += truth[i].len();
            }
        }
    }
    lats.sort_unstable();
    let p50 = lats[lats.len() / 2];
    let p99 = lats[(lats.len() * 99 / 100).min(lats.len() - 1)];
    (hit as f64 / total.max(1) as f64, p50, p99)
}

/// One scale tier: builds every backend over the same vectors, measures
/// recall/latency against the exact flat ground truth.
fn run_tier(n: usize, nq: usize, threads: usize) -> Vec<BackendRun> {
    eprintln!("[ann_bench] tier {n}: generating vectors");
    let data = clustered(n, 42);
    let queries = queries_for(&data, nq, 43);

    let t = Instant::now();
    let flat = FlatIndex::new(data.clone());
    let flat_build = t.elapsed().as_millis();
    let truth: Vec<HashSet<usize>> = flat
        .search_batch(&queries, K, threads)
        .into_iter()
        .map(|hits| hits.into_iter().map(|h| h.index).collect())
        .collect();

    // per-tier configs: list/beam widths scale with n, quantizer
    // codebooks stay small at 600 entities so table build cannot
    // dominate the per-query cost. At 1M the true top-10 distances sit
    // in a much denser shell, so the tier needs a finer IVF partition,
    // wider beams on both graph backends, and twice the PQ resolution
    // (m=16): with m=8 the ADC error swamps the neighbor gaps and
    // fused recall collapses (measured 0.38).
    let (nlist, nprobe) = if n <= 1_000 {
        (24, 12)
    } else if n <= 200_000 {
        (256, 16)
    } else {
        (1024, 24)
    };
    let (hm, ef) = if n <= 1_000 {
        (12, 48)
    } else if n <= 200_000 {
        (16, 64)
    } else {
        (16, 128)
    };
    // the fused backend exact-re-ranks an ADC top-max(ef,4k) pool
    // collected over every scored node, so it holds full recall with a
    // much narrower beam than plain HNSW (sweep: ef 12 is the 600-tier
    // recall knee); at 1M the pool must widen with the ADC error
    let (hpm, hpef) = if n <= 1_000 {
        (12, 16)
    } else if n <= 200_000 {
        (16, 64)
    } else {
        (16, 192)
    };
    let pq_cfg = if n <= 1_000 {
        PqConfig { m: 8, ks: 16, kmeans_iters: 10, seed: 0 }
    } else if n <= 200_000 {
        PqConfig { m: 8, ks: 256, kmeans_iters: 6, seed: 0 }
    } else {
        PqConfig { m: 16, ks: 256, kmeans_iters: 6, seed: 0 }
    };

    let mut out = Vec::new();
    {
        let (recall, p50, p99) = measure(&queries, &truth, |q| flat.search(q, K));
        out.push(BackendRun {
            name: "flat",
            recall_at_10: recall,
            p50_ns: p50,
            p99_ns: p99,
            build_ms: flat_build,
            nbytes: flat.nbytes(),
        });
    }
    {
        eprintln!("[ann_bench] tier {n}: building ivf");
        let t = Instant::now();
        let ivf = IvfIndex::build(
            data.clone(),
            IvfConfig { nlist, nprobe, kmeans_iters: 5, seed: 0 },
        );
        let build = t.elapsed().as_millis();
        let (recall, p50, p99) = measure(&queries, &truth, |q| ivf.search(q, K));
        out.push(BackendRun {
            name: "ivf",
            recall_at_10: recall,
            p50_ns: p50,
            p99_ns: p99,
            build_ms: build,
            nbytes: ivf.nbytes(),
        });
    }
    {
        eprintln!("[ann_bench] tier {n}: building pq");
        let t = Instant::now();
        let pq = PqIndex::build(&data, pq_cfg);
        let build = t.elapsed().as_millis();
        let (recall, p50, p99) = measure(&queries, &truth, |q| pq.search(q, K));
        out.push(BackendRun {
            name: "pq",
            recall_at_10: recall,
            p50_ns: p50,
            p99_ns: p99,
            build_ms: build,
            nbytes: pq.nbytes(),
        });
    }
    {
        eprintln!("[ann_bench] tier {n}: building hnsw");
        let t = Instant::now();
        let hnsw = HnswIndex::build(
            data.clone(),
            HnswConfig { m: hm, ef_construction: ef.max(2 * hm), ef_search: ef, seed: 0 },
        );
        let build = t.elapsed().as_millis();
        let (recall, p50, p99) = measure(&queries, &truth, |q| hnsw.search(q, K));
        out.push(BackendRun {
            name: "hnsw",
            recall_at_10: recall,
            p50_ns: p50,
            p99_ns: p99,
            build_ms: build,
            nbytes: hnsw.nbytes(),
        });
    }
    {
        eprintln!("[ann_bench] tier {n}: building hnswpq");
        let t = Instant::now();
        let hp = HnswPqIndex::build(
            &data,
            HnswPqConfig {
                hnsw: HnswConfig {
                    m: hpm,
                    ef_construction: ef.max(2 * hpm),
                    ef_search: hpef,
                    seed: 0,
                },
                pq: pq_cfg,
            },
        );
        let build = t.elapsed().as_millis();
        let (recall, p50, p99) = measure(&queries, &truth, |q| hp.search(q, K));
        out.push(BackendRun {
            name: "hnswpq",
            recall_at_10: recall,
            p50_ns: p50,
            p99_ns: p99,
            build_ms: build,
            nbytes: hp.nbytes(),
        });
    }
    out
}

/// Measures the batched block-ADC kernel against per-code scoring on
/// the same table/codes — the exact shapes the PQ scan and the fused
/// traversal use. Both variants produce the full distance array, so the
/// comparison is store-for-store fair.
fn adc_batch_speedup() -> f64 {
    let m = 8usize;
    let ks = 256usize;
    let ncodes = 8192usize;
    let reps = 200usize;
    let mut rng = StdRng::seed_from_u64(7);
    let table: Vec<f32> = (0..m * ks).map(|_| rng.gen_range(0.0..1.0f32)).collect();
    let codes: Vec<u8> = (0..ncodes * m)
        .map(|_| rng.gen_range(0..ks) as u8)
        .collect();
    let mut out = vec![0.0f32; ncodes];

    // warm-up resolves the kernel dispatch
    kernels::adc_block(&table, ks, m, &codes, &mut out);
    black_box(&mut out);

    // best-of-trials per variant: the minimum is the intrinsic kernel
    // cost, everything above it is scheduler noise
    let mut per_code = u128::MAX;
    let mut batched = u128::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..reps {
            for (o, code) in out.iter_mut().zip(codes.chunks_exact(m)) {
                *o = kernels::adc(&table, ks, code);
            }
            black_box(&mut out);
        }
        per_code = per_code.min(t.elapsed().as_nanos());

        let t = Instant::now();
        for _ in 0..reps {
            kernels::adc_block(&table, ks, m, &codes, &mut out);
            black_box(&mut out);
        }
        batched = batched.min(t.elapsed().as_nanos());
    }
    per_code as f64 / batched.max(1) as f64
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = args.iter().any(|a| a == "--scale");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut tiers: Vec<(usize, usize)> = if smoke {
        vec![(600, 50)]
    } else {
        vec![(600, 200), (100_000, 200)]
    };
    if scale {
        tiers.push((1_000_000, 100));
    }

    let speedup = adc_batch_speedup();
    eprintln!(
        "[ann_bench] kernel={} batched-adc speedup={speedup:.2}x",
        kernels::active()
    );

    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"kernel\": \"{}\",\n  \"dim\": {DIM},\n  \"k\": {K},\n  \"adc_batch_speedup\": {speedup:.2},\n  \"tiers\": [",
        kernels::active()
    );
    for (ti, &(n, nq)) in tiers.iter().enumerate() {
        let runs = run_tier(n, nq, threads);
        println!("\n== tier: {n} entities, {nq} queries x {PASSES} passes, kernel {} ==", kernels::active());
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "backend", "recall@10", "p50", "p99", "build_ms", "nbytes"
        );
        for r in &runs {
            println!(
                "{:<8} {:>10.3} {:>10} {:>10} {:>10} {:>12}",
                r.name,
                r.recall_at_10,
                fmt_ns(r.p50_ns),
                fmt_ns(r.p99_ns),
                r.build_ms,
                r.nbytes
            );
        }
        let _ = write!(json, "{}\n    {{\"entities\": {n}, \"queries\": {nq}, \"backends\": [", if ti == 0 { "" } else { "," });
        for (bi, r) in runs.iter().enumerate() {
            let _ = write!(
                json,
                "{}\n      {{\"name\": \"{}\", \"recall_at_10\": {:.4}, \"p50_ns\": {}, \"p99_ns\": {}, \"build_ms\": {}, \"nbytes\": {}}}",
                if bi == 0 { "" } else { "," },
                r.name,
                r.recall_at_10,
                r.p50_ns,
                r.p99_ns,
                r.build_ms,
                r.nbytes
            );
        }
        let _ = write!(json, "\n    ]}}");
    }
    let _ = write!(json, "\n  ]\n}}\n");

    if smoke {
        // CI health check: don't clobber the checked-in two-tier
        // snapshot with a 600-only smoke run
        eprintln!("[ann_bench] smoke run: BENCH_ann.json left untouched");
    } else {
        match std::fs::write("BENCH_ann.json", &json) {
            Ok(()) => eprintln!("[ann_bench] snapshot written to BENCH_ann.json"),
            Err(e) => eprintln!("[ann_bench] cannot write BENCH_ann.json: {e}"),
        }
    }
}
