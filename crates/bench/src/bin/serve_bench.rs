//! Open-loop load generator for the sharded serving layer: goodput,
//! shed rate, and tail latency under three chaos scenarios.
//!
//! ```text
//! cargo run --release -p emblookup-bench --bin serve_bench            # full run
//! cargo run --release -p emblookup-bench --bin serve_bench -- --smoke # CI smoke
//! ```
//!
//! Unlike a closed loop (send, wait, send), arrivals are driven by a
//! fixed schedule: request `i` is due at `t0 + i/rate` regardless of
//! how the previous ones fared, spread over a small pool of keep-alive
//! connections. A server that slows down therefore sees the backlog a
//! real open-world client population would generate — which is exactly
//! what admission control, breakers, and the overload pin exist for.
//!
//! Scenarios (all against an in-process server, tiny shared model, so
//! the numbers isolate the serving path):
//!
//! * **healthy** — 3 shards, no faults: the scatter-gather baseline.
//! * **ejected** — a scripted chaos plan panics one shard until its
//!   breaker opens; the run then serves partial (`2/3`) results.
//! * **overload** — every full-pipeline request stalls past its budget
//!   in real time; sustained misses pin the service to the q-gram rung
//!   and goodput recovers from cheap pinned answers.
//!
//! Emits `BENCH_serve.json` in the repo root: per-scenario request
//! counts by outcome, server-side breaker/partial/pin counters, and
//! client-observed p50/p99 latency.

use emblookup_core::{EmbLookup, EmbLookupConfig};
use emblookup_kg::{generate, EntityId, KnowledgeGraph, SynthKgConfig};
use emblookup_obs::{names, MetricsRegistry};
use emblookup_serve::{client, FaultConfig, ServeConfig, Server, StageFaults};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 3;

struct Load {
    requests: usize,
    rate_rps: f64,
    connections: usize,
}

#[derive(Default)]
struct Tally {
    ok: u64,
    shed: u64,
    deadline: u64,
    errors: u64,
    partial_tagged: u64,
    pinned_tagged: u64,
    latency_ns: Vec<u64>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.ok += other.ok;
        self.shed += other.shed;
        self.deadline += other.deadline;
        self.errors += other.errors;
        self.partial_tagged += other.partial_tagged;
        self.pinned_tagged += other.pinned_tagged;
        self.latency_ns.extend(other.latency_ns);
    }
}

/// One worker of the open-loop generator: sends its slice of the global
/// arrival schedule over a single keep-alive connection, reconnecting
/// once per failure (a shed or reset peer must not stop the clock).
fn drive(addr: SocketAddr, kg: &KnowledgeGraph, load: &Load, lane: usize, t0: Instant) -> Tally {
    let interarrival_ns = 1e9 / load.rate_rps;
    let mut tally = Tally::default();
    let mut conn = client::Connection::open(addr).ok();
    let n = kg.num_entities() as u32;
    let mut i = lane;
    while i < load.requests {
        let due = t0 + Duration::from_nanos((i as f64 * interarrival_ns) as u64);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let body = format!("{{\"q\":\"{}\",\"k\":5}}", kg.label(EntityId(i as u32 % n)));
        let sent = Instant::now();
        let resp = match conn.as_mut().map(|c| c.post_json("/lookup", &body, &[])) {
            Some(Ok(resp)) => Some(resp),
            _ => {
                // One reconnect attempt; a dead lane still advances the
                // schedule so the arrival rate holds.
                conn = client::Connection::open(addr).ok();
                conn.as_mut().and_then(|c| c.post_json("/lookup", &body, &[]).ok())
            }
        };
        match resp {
            Some(resp) => {
                tally.latency_ns.push(sent.elapsed().as_nanos() as u64);
                match resp.status {
                    200 => tally.ok += 1,
                    429 => tally.shed += 1,
                    504 => tally.deadline += 1,
                    _ => tally.errors += 1,
                }
                if let Some(tag) = resp.header("x-emblookup-shards") {
                    if !tag.starts_with(&format!("{SHARDS}/")) {
                        tally.partial_tagged += 1;
                    }
                }
                if resp.header("x-emblookup-overload").is_some() {
                    tally.pinned_tagged += 1;
                }
            }
            None => tally.errors += 1,
        }
        i += load.connections;
    }
    tally
}

struct ScenarioResult {
    name: &'static str,
    requests: usize,
    duration_ms: u64,
    tally: Tally,
    goodput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    server_partial: u64,
    server_breaker_opened: u64,
    server_overload_pinned: u64,
    server_shed: u64,
}

fn run_scenario(
    name: &'static str,
    service: &EmbLookup,
    kg: &KnowledgeGraph,
    config: ServeConfig,
    load: &Load,
) -> ScenarioResult {
    let registry = Arc::new(MetricsRegistry::new());
    let compression = service.model().config().compression;
    let own = EmbLookup::from_model(service.model_arc(), kg, compression);
    let server = Server::start_with_registry(own, kg, config, Arc::clone(&registry))
        .expect("bench server must start");
    let addr = server.addr();

    let t0 = Instant::now();
    let mut tally = Tally::default();
    std::thread::scope(|scope| {
        let lanes: Vec<_> = (0..load.connections)
            .map(|lane| scope.spawn(move || drive(addr, kg, load, lane, t0)))
            .collect();
        for lane in lanes {
            tally.absorb(lane.join().expect("load lane must not panic"));
        }
    });
    let duration = t0.elapsed();

    tally.latency_ns.sort_unstable();
    let pct = |q: f64| -> u64 {
        if tally.latency_ns.is_empty() {
            return 0;
        }
        tally.latency_ns[((tally.latency_ns.len() - 1) as f64 * q) as usize] / 1_000
    };
    let snap = registry.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    ScenarioResult {
        name,
        requests: load.requests,
        duration_ms: duration.as_millis() as u64,
        goodput_rps: tally.ok as f64 / duration.as_secs_f64(),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        server_partial: counter(names::SERVE_PARTIAL),
        server_breaker_opened: counter(names::SERVE_BREAKER_OPENED),
        server_overload_pinned: counter(names::SERVE_OVERLOAD_PINNED),
        server_shed: counter(names::SERVE_SHED),
        tally,
    }
}

/// Scripted chaos: panic shard 1 on the first `strikes` requests, then
/// stay healthy; the cooldown outlasts the run, so the shard stays
/// ejected. The strike window is deliberately wide — under concurrent
/// lanes, healthy requests race the panicking ones into the breaker's
/// bookkeeping, and only a sustained fault keeps the failure streak
/// consecutive long enough to open it (exactly like production).
fn ejected_plan(strikes: usize, len: usize) -> FaultConfig {
    let mut plan = vec![StageFaults::default(); len];
    for slot in plan.iter_mut().take(strikes) {
        slot.shard_panic = Some(1);
    }
    FaultConfig::Scripted {
        plan,
        virtual_time: false,
    }
}

/// Real-time overload: every scripted request stalls 4x its budget in
/// the encode stage. Only full-pipeline attempts pay it — pinned
/// requests answer from the q-gram rung before encode.
fn overload_plan(stall_ms: u64) -> FaultConfig {
    FaultConfig::Scripted {
        plan: vec![StageFaults {
            encode_latency_ms: stall_ms,
            ..StageFaults::default()
        }],
        virtual_time: false,
    }
}

fn main() {
    // The chaos plans panic inside shard tasks on purpose (the pool
    // contains them); keep the injected ones out of the bench output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let smoke = std::env::args().any(|a| a == "--smoke");
    let load = if smoke {
        Load { requests: 120, rate_rps: 300.0, connections: 4 }
    } else {
        Load { requests: 800, rate_rps: 400.0, connections: 8 }
    };
    let overload_load = if smoke {
        Load { requests: 120, rate_rps: 120.0, connections: 4 }
    } else {
        Load { requests: 360, rate_rps: 150.0, connections: 8 }
    };

    eprintln!("training tiny shared model…");
    let synth = generate(SynthKgConfig::tiny(77));
    let service = EmbLookup::train_on(&synth.kg, EmbLookupConfig::tiny(77));
    let kg = &synth.kg;

    let base = ServeConfig {
        workers: 2,
        queue_cap: 32,
        shards: SHARDS,
        ..ServeConfig::default()
    };

    let healthy = run_scenario("healthy", &service, kg, base.clone(), &load);
    let ejected = run_scenario(
        "ejected",
        &service,
        kg,
        ServeConfig {
            breaker_threshold: 3,
            breaker_cooldown: 1_000_000,
            faults: Some(ejected_plan(load.requests / 3, load.requests)),
            ..base.clone()
        },
        &load,
    );
    let overload = run_scenario(
        "overload",
        &service,
        kg,
        ServeConfig {
            queue_cap: 8,
            default_deadline_ms: 50,
            overload_threshold: 3,
            overload_probe_interval: 8,
            faults: Some(overload_plan(200)),
            ..base
        },
        &overload_load,
    );

    let results = [healthy, ejected, overload];
    println!(
        "{:<10} {:>6} {:>7} {:>6} {:>6} {:>6} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "scenario", "sent", "ok", "shed", "504", "err", "partial", "goodput", "p50", "p99", "pinned"
    );
    for r in &results {
        println!(
            "{:<10} {:>6} {:>7} {:>6} {:>6} {:>6} {:>8} {:>7.0}/s {:>7}us {:>6}us {:>8}",
            r.name,
            r.requests,
            r.tally.ok,
            r.tally.shed,
            r.tally.deadline,
            r.tally.errors,
            r.server_partial,
            r.goodput_rps,
            r.p50_us,
            r.p99_us,
            r.server_overload_pinned,
        );
    }

    let mut json = String::from("{\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            concat!(
                "    {{\"name\": \"{}\", \"shards\": {}, \"requests\": {}, ",
                "\"duration_ms\": {}, \"ok\": {}, \"shed\": {}, \"deadline\": {}, ",
                "\"errors\": {}, \"partial_tagged\": {}, \"pinned_tagged\": {}, ",
                "\"server_partial\": {}, \"server_breaker_opened\": {}, ",
                "\"server_overload_pinned\": {}, \"server_shed\": {}, ",
                "\"goodput_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}"
            ),
            r.name,
            SHARDS,
            r.requests,
            r.duration_ms,
            r.tally.ok,
            r.tally.shed,
            r.tally.deadline,
            r.tally.errors,
            r.tally.partial_tagged,
            r.tally.pinned_tagged,
            r.server_partial,
            r.server_breaker_opened,
            r.server_overload_pinned,
            r.server_shed,
            r.goodput_rps,
            r.p50_us,
            r.p99_us,
        );
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");
}
