//! Reproductions of every table and figure of the paper's evaluation.
//!
//! Each function builds its workload, runs the measurement and returns a
//! markdown-formatted report fragment. `src/bin/repro.rs` stitches them
//! together. Substitutions relative to the paper's setup are documented in
//! DESIGN.md §2; the per-experiment mapping lives in DESIGN.md §4.

use crate::harness::{fmt_duration, hit_rate_at_k, speedup, Env, Scale, MASTER_SEED};
use emblookup_baselines::{
    ElasticLikeService, ElasticOp, ElasticOpService, ExactMatchService, FuzzyWuzzyService,
    LevenshteinService, LshService, MetaSearchService, QGramService, RemoteCostModel,
    RemoteService,
};
use emblookup_core::{Compression, EmbLookup, EmbLookupConfig, EncoderIndex};
use emblookup_embed::{
    BertMini, BertMiniConfig, Corpus, FastText, FastTextConfig, LstmEncoder,
    LstmEncoderConfig, Word2Vec, Word2VecConfig,
};
use emblookup_kg::{generate, KgFlavor, KnowledgeGraph, LookupService, SynthKg};
use emblookup_semtab::{
    generate_dataset, run_cea, run_cta, run_data_repair, run_entity_disambiguation,
    with_alias_substitution, with_missing, with_noise, BbwSystem, Dataset,
    DatasetConfig, DoSerSystem, JenTabSystem, KataraSystem, MantisTableSystem, PrF, TaskReport,
};
use emblookup_ann::lsh::LshConfig;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Virtual data-parallel lanes standing in for the paper's V100 GPU
/// columns. GPU acceleration of FAISS/PyTorch is batched data-parallel
/// distance computation; on this single-core testbed we charge the bulk
/// lookup `measured / GPU_LANES` on the same virtual clock used for the
/// simulated remote endpoints. The paper's GPU/CPU speedup ratio is ≈4×.
pub const GPU_LANES: u32 = 4;

/// Virtual GPU time for a measured bulk-lookup duration.
pub fn gpu_time(cpu: Duration) -> Duration {
    cpu / GPU_LANES
}

/// The lookup service each reimplemented system originally used
/// (see DESIGN.md: bbw→SearX meta-search, MantisTable→ElasticSearch server,
/// JenTab→Wikidata API, DoSeR→local fuzzy index, Katara→edit-distance scan).
pub fn original_service(system: &str, kg: &KnowledgeGraph) -> Box<dyn LookupService> {
    match system {
        "bbw" => Box::new(RemoteService::new(
            MetaSearchService::new(kg),
            RemoteCostModel::searx(),
            "SearX API",
        )),
        "MantisTable" => Box::new(RemoteService::new(
            ElasticLikeService::new(kg, false),
            // loopback server overhead of a real ElasticSearch instance
            RemoteCostModel {
                rtt: Duration::from_micros(500),
                server_time: Duration::from_micros(300),
                max_concurrency: 16,
            },
            "ElasticSearch",
        )),
        "JenTab" => Box::new(RemoteService::new(
            ExactMatchService::new(kg, true),
            RemoteCostModel::wikidata(),
            "Wikidata API",
        )),
        "DoSeR" => Box::new(QGramService::new(kg, false, 3)),
        "Katara" => Box::new(LevenshteinService::new(kg, false, 3)),
        // lint: allow(L001) dispatch over the const SYSTEMS table in this file; an unknown name is a programming error
        other => panic!("unknown system {other}"),
    }
}

/// One row of the Table II/III layout.
struct SpeedupRow {
    task: &'static str,
    system: &'static str,
    cpu_el: f64,
    cpu_elnc: f64,
    gpu_el: f64,
    gpu_elnc: f64,
    f_orig: f64,
    f_el: f64,
    f_elnc: f64,
}

/// Runs one (task, system) cell: original service vs EL vs EL-NC.
fn run_speedup_row(
    env: &Env,
    task: &'static str,
    system_name: &'static str,
) -> SpeedupRow {
    let kg = &env.synth.kg;
    let ds = &env.dataset;
    let original = original_service(system_name, kg);
    let k = emblookup_semtab::DEFAULT_K;

    let run = |service: &dyn LookupService| -> TaskReport {
        match (task, system_name) {
            ("CEA", "bbw") => run_cea(kg, ds, &BbwSystem, service, k),
            ("CEA", "MantisTable") => run_cea(kg, ds, &MantisTableSystem, service, k),
            ("CEA", "JenTab") => run_cea(kg, ds, &JenTabSystem::default(), service, k),
            ("CTA", "bbw") => run_cta(kg, ds, &BbwSystem, service, k),
            ("CTA", "MantisTable") => run_cta(kg, ds, &MantisTableSystem, service, k),
            ("CTA", "JenTab") => run_cta(kg, ds, &JenTabSystem::default(), service, k),
            ("EA", "DoSeR") => {
                run_entity_disambiguation(kg, ds, &DoSerSystem::default(), service, k)
            }
            ("DR", "Katara") => {
                let broken = with_missing(ds, 0.10, MASTER_SEED + 9);
                run_data_repair(kg, &broken, &KataraSystem, service, k)
            }
            // lint: allow(L001) dispatch over the const table rows declared above; an unknown cell is a programming error
            other => panic!("unknown cell {other:?}"),
        }
    };

    let orig = run(original.as_ref());
    let el = run(&env.el);
    let elnc = run(&env.el_nc);
    SpeedupRow {
        task,
        system: system_name,
        cpu_el: speedup(orig.lookup_time, el.lookup_time),
        cpu_elnc: speedup(orig.lookup_time, elnc.lookup_time),
        gpu_el: speedup(orig.lookup_time, gpu_time(el.lookup_time)),
        gpu_elnc: speedup(orig.lookup_time, gpu_time(elnc.lookup_time)),
        f_orig: orig.f1(),
        f_el: el.f1(),
        f_elnc: elnc.f1(),
    }
}

const SPEEDUP_CELLS: [(&str, &str); 8] = [
    ("CEA", "bbw"),
    ("CEA", "MantisTable"),
    ("CEA", "JenTab"),
    ("CTA", "bbw"),
    ("CTA", "MantisTable"),
    ("CTA", "JenTab"),
    ("EA", "DoSeR"),
    ("DR", "Katara"),
];

fn speedup_table(env: &Env, caption: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {caption}\n");
    let _ = writeln!(
        out,
        "| Task | System | Original | Speedup CPU (EL) | Speedup CPU (EL-NC) | Speedup GPU* (EL) | Speedup GPU* (EL-NC) | F orig | F EL | F EL-NC |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
    for (task, system) in SPEEDUP_CELLS {
        let orig_name = original_service(system, &env.synth.kg).name().to_string();
        let r = run_speedup_row(env, task, system);
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.0}x | {:.0}x | {:.0}x | {:.0}x | {:.2} | {:.2} | {:.2} |",
            r.task, r.system, orig_name, r.cpu_el, r.cpu_elnc, r.gpu_el, r.gpu_elnc,
            r.f_orig, r.f_el, r.f_elnc
        );
    }
    let _ = writeln!(
        out,
        "\n*GPU columns use the {GPU_LANES}-lane virtual data-parallel cost model (DESIGN.md §2)."
    );
    out
}

// ------------------------------------------------------------------
// Table I — dataset statistics
// ------------------------------------------------------------------

/// Table I: statistics of the three tabular benchmark datasets.
pub fn table1(scale: Scale) -> String {
    let mut out = String::from("## Table I — dataset statistics\n\n");
    let wd = generate(scale.kg_config(KgFlavor::Wikidata));
    let db = generate(scale.kg_config(KgFlavor::DbPedia));
    let datasets = [
        (
            generate_dataset(&wd, &scale.dataset_config(DatasetConfig::st_wikidata(MASTER_SEED + 1))),
            &wd,
        ),
        (
            generate_dataset(&db, &scale.dataset_config(DatasetConfig::st_dbpedia(MASTER_SEED + 2))),
            &db,
        ),
        (
            tough_tables(&wd, scale),
            &wd,
        ),
    ];
    let _ = writeln!(out, "| | {} | {} | {} |", datasets[0].0.name, datasets[1].0.name, datasets[2].0.name);
    let _ = writeln!(out, "|---|---|---|---|");
    let row = |label: &str, f: &dyn Fn(&Dataset) -> String| {
        format!(
            "| {label} | {} | {} | {} |",
            f(&datasets[0].0),
            f(&datasets[1].0),
            f(&datasets[2].0)
        )
    };
    let _ = writeln!(out, "{}", row("#Tables", &|d| d.tables.len().to_string()));
    let _ = writeln!(out, "{}", row("Avg #Rows", &|d| format!("{:.1}", d.avg_rows())));
    let _ = writeln!(out, "{}", row("Avg #Cols", &|d| format!("{:.1}", d.avg_cols())));
    let _ = writeln!(out, "{}", row("#Cells to annotate", &|d| d.num_entity_cells().to_string()));
    let _ = writeln!(
        out,
        "\nKG sizes: ST-Wikidata graph {} entities / {} facts, ST-DBPedia graph {} entities / {} facts.",
        wd.kg.num_entities(),
        wd.kg.num_facts(),
        db.kg.num_entities(),
        db.kg.num_facts()
    );
    out
}

/// The Tough Tables analogue: few large tables, heavy noise + ambiguity.
pub fn tough_tables(synth: &SynthKg, scale: Scale) -> Dataset {
    let base = generate_dataset(
        synth,
        &scale.dataset_config(DatasetConfig::tough_tables(MASTER_SEED + 3)),
    );
    let mut noisy = with_noise(&base, 0.35, MASTER_SEED + 3);
    noisy.name = "Tough Tables".into();
    noisy
}

// ------------------------------------------------------------------
// Tables II & III — system speedups on clean data
// ------------------------------------------------------------------

/// Table II: speedups + F-scores on the ST-Wikidata analogue.
pub fn table2(env: &Env) -> String {
    let mut out = String::from("## Table II — accelerating systems on ST-Wikidata\n\n");
    out.push_str(&speedup_table(env, "no-error variant, k = 20"));
    out
}

/// Table III: speedups + F-scores on the ST-DBPedia analogue.
pub fn table3(env: &Env) -> String {
    let mut out = String::from("## Table III — accelerating systems on ST-DBPedia\n\n");
    out.push_str(&speedup_table(env, "no-error variant, k = 20"));
    out
}

// ------------------------------------------------------------------
// Table IV — noisy datasets
// ------------------------------------------------------------------

/// Table IV: F-scores under 10% cell noise (plus the Tough Tables
/// analogue), original lookup vs EmbLookup, per system.
pub fn table4(env_wd: &Env, env_db: &Env, scale: Scale) -> String {
    let mut out = String::from("## Table IV — noisy tabular datasets\n\n");
    let noisy_wd = with_noise(&env_wd.dataset, 0.10, MASTER_SEED + 4);
    let noisy_db = with_noise(&env_db.dataset, 0.10, MASTER_SEED + 5);
    let tough = tough_tables(&env_wd.synth, scale);
    let _ = writeln!(
        out,
        "| Task | System | ST-Wikidata orig | ST-Wikidata EL | ST-DBPedia orig | ST-DBPedia EL | ToughTables orig | ToughTables EL |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for (task, system) in SPEEDUP_CELLS {
        let mut cells = Vec::new();
        for (env, ds) in [(env_wd, &noisy_wd), (env_db, &noisy_db), (env_wd, &tough)] {
            let (orig_f, el_f) = noisy_cell(env, ds, task, system);
            cells.push((orig_f, el_f));
        }
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
            task, system, cells[0].0, cells[0].1, cells[1].0, cells[1].1, cells[2].0, cells[2].1
        );
    }
    out
}

fn noisy_cell(env: &Env, ds: &Dataset, task: &str, system: &str) -> (f64, f64) {
    let kg = &env.synth.kg;
    let original = original_service(system, kg);
    let k = emblookup_semtab::DEFAULT_K;
    let run = |service: &dyn LookupService| -> PrF {
        match (task, system) {
            ("CEA", "bbw") => run_cea(kg, ds, &BbwSystem, service, k).metrics,
            ("CEA", "MantisTable") => run_cea(kg, ds, &MantisTableSystem, service, k).metrics,
            ("CEA", "JenTab") => run_cea(kg, ds, &JenTabSystem::default(), service, k).metrics,
            ("CTA", "bbw") => run_cta(kg, ds, &BbwSystem, service, k).metrics,
            ("CTA", "MantisTable") => run_cta(kg, ds, &MantisTableSystem, service, k).metrics,
            ("CTA", "JenTab") => run_cta(kg, ds, &JenTabSystem::default(), service, k).metrics,
            ("EA", _) => {
                run_entity_disambiguation(kg, ds, &DoSerSystem::default(), service, k).metrics
            }
            ("DR", _) => {
                let broken = with_missing(ds, 0.10, MASTER_SEED + 9);
                run_data_repair(kg, &broken, &KataraSystem, service, k).metrics
            }
            // lint: allow(L001) dispatch over the const table rows declared above; an unknown cell is a programming error
            other => panic!("unknown cell {other:?}"),
        }
    };
    (run(original.as_ref()).f1(), run(&env.el).f1())
}

// ------------------------------------------------------------------
// Table V — head-to-head lookup services
// ------------------------------------------------------------------

/// Table V: EmbLookup vs eight lookup services on top-10 retrieval over
/// a large lookup catalog (the paper queries full Wikidata; speedup
/// magnitudes require a catalog much larger than the training KG, so this
/// experiment indexes the catalog graph with the already-trained model).
/// The error variant applies 1–3 corruptions per query ("dropping/
/// inserting one or more letters, transposing letters, swapping the
/// tokens, abbreviations" — §IV-B).
pub fn table5(env: &Env, scale: Scale) -> String {
    let mut out = String::from("## Table V — comparison with popular lookup services\n\n");
    let catalog = generate(scale.catalog_kg_config());
    let kg = &catalog.kg;
    let el = EmbLookup::from_model(env.el_nc.model_arc(), kg, Compression::default_pq());

    // query workload: sampled entity labels, clean + corrupted
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(MASTER_SEED + 60);
    let mut entity_pool: Vec<&emblookup_kg::Entity> = kg.entities().collect();
    entity_pool.shuffle(&mut rng);
    entity_pool.truncate(scale.catalog_queries());
    let clean: Vec<(String, emblookup_kg::EntityId)> = entity_pool
        .iter()
        .map(|e| (e.label.clone(), e.id))
        .collect();
    let injector = emblookup_text::NoiseInjector::with_kinds(vec![
        emblookup_text::NoiseKind::DropChar,
        emblookup_text::NoiseKind::InsertChar,
        emblookup_text::NoiseKind::SubstituteChar,
        emblookup_text::NoiseKind::TransposeChars,
        emblookup_text::NoiseKind::SwapTokens,
        emblookup_text::NoiseKind::Abbreviate,
    ]);
    let noisy: Vec<(String, emblookup_kg::EntityId)> = entity_pool
        .iter()
        .map(|e| {
            let n = rng.gen_range(1..=2usize);
            (injector.corrupt_n(&e.label, n, &mut rng), e.id)
        })
        .collect();

    let services: Vec<Box<dyn LookupService>> = vec![
        Box::new(FuzzyWuzzyService::new(kg, false)),
        Box::new(RemoteService::new(
            ElasticLikeService::new(kg, false),
            RemoteCostModel {
                rtt: Duration::from_micros(500),
                server_time: Duration::from_micros(300),
                max_concurrency: 16,
            },
            "Elastic Search",
        )),
        Box::new(LshService::new(kg, false, LshConfig::default())),
        Box::new(ElasticOpService::new(kg, false, ElasticOp::Exact)),
        Box::new(ElasticOpService::new(kg, false, ElasticOp::QGram)),
        Box::new(ElasticOpService::new(kg, false, ElasticOp::Levenshtein)),
        Box::new(RemoteService::new(
            ExactMatchService::new(kg, true),
            RemoteCostModel::wikidata(),
            "Wikidata API",
        )),
        Box::new(RemoteService::new(
            ElasticLikeService::new(kg, true),
            RemoteCostModel::searx(),
            "SearX API",
        )),
    ];

    let k = 10;
    let eval = |svc: &dyn LookupService,
                queries: &[(String, emblookup_kg::EntityId)]|
     -> (f64, Duration) {
        let refs: Vec<&str> = queries.iter().map(|(q, _)| q.as_str()).collect();
        let (results, elapsed) = svc.lookup_batch_timed(&refs, k);
        let mut m = PrF::default();
        for (hits, (_, truth)) in results.iter().zip(queries) {
            m.record(!hits.is_empty(), hits.iter().any(|c| c.entity == *truth));
        }
        (m.f1(), elapsed)
    };

    let (el_clean_f, el_time) = eval(&el, &clean);
    let (el_noisy_f, _) = eval(&el, &noisy);

    let _ = writeln!(
        out,
        "| Approach | Speedup (CPU) | Speedup (GPU*) | F (no error) orig | F (no error) EL | F (error) orig | F (error) EL |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for svc in &services {
        let (f_clean, t_clean) = eval(svc.as_ref(), &clean);
        let (f_noisy, _) = eval(svc.as_ref(), &noisy);
        let _ = writeln!(
            out,
            "| {} | {:.0}x | {:.0}x | {:.2} | {:.2} | {:.2} | {:.2} |",
            svc.name(),
            speedup(t_clean, el_time),
            speedup(t_clean, gpu_time(el_time)),
            f_clean,
            el_clean_f,
            f_noisy,
            el_noisy_f,
        );
    }
    let _ = writeln!(
        out,
        "\nCatalog: {} entities; {} queries; EmbLookup bulk time {} (CPU).",
        kg.num_entities(),
        clean.len(),
        fmt_duration(el_time)
    );
    out
}

// ------------------------------------------------------------------
// Table VI — semantic (alias) lookup
// ------------------------------------------------------------------

/// Table VI: F-scores when every mention is replaced by a random alias,
/// averaged over 5 perturbed variants.
pub fn table6(env_wd: &Env, env_db: &Env, scale: Scale) -> String {
    let mut out = String::from("## Table VI — semantic lookup (alias-substituted mentions)\n\n");
    let tough = tough_tables(&env_wd.synth, scale);
    let _ = writeln!(
        out,
        "| Task | System | ST-Wikidata orig | ST-Wikidata EL | ST-DBPedia orig | ST-DBPedia EL | ToughTables orig | ToughTables EL |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for (task, system) in SPEEDUP_CELLS {
        let mut cells = Vec::new();
        for (env, base) in [
            (env_wd, &env_wd.dataset),
            (env_db, &env_db.dataset),
            (env_wd, &tough),
        ] {
            let mut orig_sum = 0.0;
            let mut el_sum = 0.0;
            const VARIANTS: u64 = 5;
            for v in 0..VARIANTS {
                let ds = with_alias_substitution(base, &env.synth, MASTER_SEED + 40 + v);
                let (o, e) = noisy_cell(env, &ds, task, system);
                orig_sum += o;
                el_sum += e;
            }
            cells.push((orig_sum / VARIANTS as f64, el_sum / VARIANTS as f64));
        }
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
            task, system, cells[0].0, cells[0].1, cells[1].0, cells[1].1, cells[2].0, cells[2].1
        );
    }
    out
}

// ------------------------------------------------------------------
// Table VII — varying the embedding algorithm
// ------------------------------------------------------------------

/// Table VII: swapping the embedding generation algorithm under the CEA
/// task (EmbLookup vs word2vec, fastText, BERT-mini, LSTM).
pub fn table7(env: &Env) -> String {
    let mut out = String::from("## Table VII — varying the embedding algorithm (CEA hit@10 F)\n\n");
    let kg = &env.synth.kg;
    let corpus = Corpus::from_kg(kg);

    // workloads: clean + fully-noised mention queries
    let clean: Vec<(String, emblookup_kg::EntityId)> = env
        .dataset
        .tables
        .iter()
        .flat_map(|t| {
            t.entity_cells()
                .filter_map(|(_, _, c)| c.truth.map(|t| (c.text.clone(), t)))
                .collect::<Vec<_>>()
        })
        .collect();
    let noisy_ds = with_noise(&env.dataset, 0.9999, MASTER_SEED + 7);
    let noisy: Vec<(String, emblookup_kg::EntityId)> = noisy_ds
        .tables
        .iter()
        .flat_map(|t| {
            t.entity_cells()
                .filter_map(|(_, _, c)| c.truth.map(|t| (c.text.clone(), t)))
                .collect::<Vec<_>>()
        })
        .collect();
    let clean_refs: Vec<(&str, emblookup_kg::EntityId)> =
        clean.iter().map(|(s, id)| (s.as_str(), *id)).collect();
    let noisy_refs: Vec<(&str, emblookup_kg::EntityId)> =
        noisy.iter().map(|(s, id)| (s.as_str(), *id)).collect();

    let _ = writeln!(out, "| Embedding | F (no error) | F (error) |");
    let _ = writeln!(out, "|---|---|---|");
    let _ = writeln!(
        out,
        "| EmbLookup | {:.2} | {:.2} |",
        hit_rate_at_k(&env.el, &clean_refs, 10),
        hit_rate_at_k(&env.el, &noisy_refs, 10)
    );

    let w2v = EncoderIndex::build(
        Word2Vec::train(&corpus, Word2VecConfig { epochs: 10, seed: MASTER_SEED, ..Default::default() }),
        kg,
    );
    let ft = EncoderIndex::build(
        FastText::train(&corpus, FastTextConfig { epochs: 30, seed: MASTER_SEED, ..Default::default() }),
        kg,
    );
    // BERT-mini / LSTM are expensive to train; cap their corpora
    let strings: Vec<String> = kg
        .entities()
        .flat_map(|e| std::iter::once(e.label.clone()).chain(e.aliases.iter().cloned()))
        .take(3000)
        .collect();
    let bert = EncoderIndex::build(
        BertMini::train(&strings, BertMiniConfig { epochs: 2, seed: MASTER_SEED, ..Default::default() }),
        kg,
    );
    let pairs: Vec<(String, String)> = kg
        .entities()
        .filter(|e| !e.aliases.is_empty())
        .map(|e| (e.label.clone(), e.aliases[0].clone()))
        .take(1500)
        .collect();
    let negatives: Vec<String> = kg.entities().map(|e| e.label.clone()).collect();
    let lstm = EncoderIndex::build(
        LstmEncoder::train(
            &pairs,
            &negatives,
            LstmEncoderConfig { epochs: 2, seed: MASTER_SEED, ..Default::default() },
        ),
        kg,
    );

    for svc in [
        &w2v as &dyn LookupService,
        &ft as &dyn LookupService,
        &bert as &dyn LookupService,
        &lstm as &dyn LookupService,
    ] {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} |",
            svc.name(),
            hit_rate_at_k(svc, &clean_refs, 10),
            hit_rate_at_k(svc, &noisy_refs, 10)
        );
    }
    out
}

// ------------------------------------------------------------------
// Table VIII — embedding dimension sweep
// ------------------------------------------------------------------

/// Table VIII: varying the embedding dimension (uncompressed index to
/// isolate the effect from quantization).
pub fn table8(scale: Scale) -> String {
    let mut out = String::from("## Table VIII — varying the embedding dimension\n\n");
    // sensitivity sweeps retrain the model per configuration; they run on
    // the small KG with the full training budget so four trainings stay
    // tractable on one core (trends, not absolute values — EXPERIMENTS.md)
    let synth = generate(Scale::Smoke.kg_config(KgFlavor::Wikidata));
    let ds = generate_dataset(
        &synth,
        &Scale::Smoke.dataset_config(DatasetConfig::st_wikidata(MASTER_SEED + 1)),
    );
    let noisy = with_noise(&ds, 0.9999, MASTER_SEED + 8);
    let clean_q: Vec<(String, emblookup_kg::EntityId)> = queries_of(&ds);
    let noisy_q: Vec<(String, emblookup_kg::EntityId)> = queries_of(&noisy);

    let _ = writeln!(out, "| Dimension | F (no error) | F (error) |");
    let _ = writeln!(out, "|---|---|---|");
    for dim in [32usize, 64, 128, 256] {
        let config = EmbLookupConfig {
            embedding_dim: dim,
            compression: Compression::None,
            ..scale.emblookup_config()
        };
        let _ = &scale;
        let el = EmbLookup::train_on(&synth.kg, config);
        let c: Vec<(&str, emblookup_kg::EntityId)> =
            clean_q.iter().map(|(s, id)| (s.as_str(), *id)).collect();
        let n: Vec<(&str, emblookup_kg::EntityId)> =
            noisy_q.iter().map(|(s, id)| (s.as_str(), *id)).collect();
        let tag = if dim == 64 { "64 (default)" } else { &dim.to_string() };
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} |",
            tag,
            hit_rate_at_k(&el, &c, 10),
            hit_rate_at_k(&el, &n, 10)
        );
    }
    out
}

fn queries_of(ds: &Dataset) -> Vec<(String, emblookup_kg::EntityId)> {
    ds.tables
        .iter()
        .flat_map(|t| {
            t.entity_cells()
                .filter_map(|(_, _, c)| c.truth.map(|t| (c.text.clone(), t)))
                .collect::<Vec<_>>()
        })
        .collect()
}

// ------------------------------------------------------------------
// Figure 3 — number of triplets per entity
// ------------------------------------------------------------------

/// Figure 3: accuracy of the four tasks and training time as the triplet
/// budget per entity grows (paper sweeps 25–1000 at Wikidata scale; we
/// sweep a proportionally scaled range).
pub fn fig3(scale: Scale) -> String {
    let mut out = String::from("## Figure 3 — impact of the number of training triplets\n\n");
    // same sensitivity-scale setup as Table VIII (see comment there)
    let synth = generate(Scale::Smoke.kg_config(KgFlavor::Wikidata));
    let ds = generate_dataset(
        &synth,
        &Scale::Smoke.dataset_config(DatasetConfig::st_wikidata(MASTER_SEED + 1)),
    );
    let kg = &synth.kg;
    let k = emblookup_semtab::DEFAULT_K;

    let _ = writeln!(out, "| Triplets/entity | CEA | CTA | EA | DR | Train time |");
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    let budgets: &[usize] = match scale {
        Scale::Smoke => &[5, 10, 25],
        Scale::Full => &[5, 10, 25, 50],
    };
    for &budget in budgets {
        let config = EmbLookupConfig {
            triplets_per_entity: budget,
            ..scale.emblookup_config()
        };
        let start = Instant::now();
        let el = EmbLookup::train_on(kg, config);
        let train_time = start.elapsed();
        let cea = run_cea(kg, &ds, &BbwSystem, &el, k).f1();
        let cta = run_cta(kg, &ds, &BbwSystem, &el, k).f1();
        let ea = run_entity_disambiguation(kg, &ds, &DoSerSystem::default(), &el, k).f1();
        let broken = with_missing(&ds, 0.10, MASTER_SEED + 9);
        let dr = run_data_repair(kg, &broken, &KataraSystem, &el, k).f1();
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {} |",
            budget, cea, cta, ea, dr, fmt_duration(train_time)
        );
    }
    out
}

// ------------------------------------------------------------------
// Figure 4 — PQ recall vs k
// ------------------------------------------------------------------

/// Figure 4: recall of the PQ-compressed index against the uncompressed
/// index as a function of `k` — low at small `k`, recovering for the
/// larger `k` the downstream applications use.
pub fn fig4(env: &Env) -> String {
    let mut out = String::from("## Figure 4 — impact of compression on recall\n\n");
    let queries: Vec<(String, emblookup_kg::EntityId)> = queries_of(&env.dataset);
    let _ = writeln!(out, "| k | Recall of EL vs EL-NC |");
    let _ = writeln!(out, "|---|---|");
    for k in [1usize, 2, 5, 10, 20, 50, 100] {
        let mut recall_sum = 0.0;
        let total = queries.len().min(400);
        for (q, _) in queries.iter().take(total) {
            let truth: Vec<_> = env
                .el_nc
                .lookup_with_distances(q, k)
                .into_iter()
                .map(|(e, _)| e)
                .collect();
            let got: Vec<_> = env
                .el
                .lookup_with_distances(q, k)
                .into_iter()
                .map(|(e, _)| e)
                .collect();
            if truth.is_empty() {
                continue;
            }
            let inter = truth.iter().filter(|e| got.contains(e)).count();
            recall_sum += inter as f64 / truth.len() as f64;
        }
        let _ = writeln!(out, "| {} | {:.3} |", k, recall_sum / total as f64);
    }
    out
}

// ------------------------------------------------------------------
// Figure 5 — PQ vs PCA at matched byte budgets
// ------------------------------------------------------------------

/// Figure 5: compression scheme comparison at equal storage budgets —
/// product quantization vs PCA, on the CEA and CTA tasks (bbw system).
pub fn fig5(env: &Env) -> String {
    let mut out = String::from("## Figure 5 — PQ vs PCA at matched byte budgets\n\n");
    let kg = &env.synth.kg;
    let ds = &env.dataset;
    let k = emblookup_semtab::DEFAULT_K;
    let model = env.el_nc.model_arc();
    let _ = writeln!(out, "| Bytes/entity | CEA (PQ) | CEA (PCA) | CTA (PQ) | CTA (PCA) |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    // PQ stores m bytes (ks=256); PCA stores k f32 = 4k bytes
    for bytes in [8usize, 16, 32, 64] {
        let pq = EmbLookup::from_model(
            model.clone(),
            kg,
            Compression::Pq { m: bytes, ks: 256 },
        );
        let pca = EmbLookup::from_model(
            model.clone(),
            kg,
            Compression::Pca { k: (bytes / 4).max(1) },
        );
        let cea_pq = run_cea(kg, ds, &BbwSystem, &pq, k).f1();
        let cea_pca = run_cea(kg, ds, &BbwSystem, &pca, k).f1();
        let cta_pq = run_cta(kg, ds, &BbwSystem, &pq, k).f1();
        let cta_pca = run_cta(kg, ds, &BbwSystem, &pca, k).f1();
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.2} | {:.2} |",
            bytes, cea_pq, cea_pca, cta_pq, cta_pca
        );
    }
    // 256 B = uncompressed reference
    let cea_flat = run_cea(kg, ds, &BbwSystem, &env.el_nc, k).f1();
    let cta_flat = run_cta(kg, ds, &BbwSystem, &env.el_nc, k).f1();
    let _ = writeln!(out, "| 256 (none) | {cea_flat:.2} | {cea_flat:.2} | {cta_flat:.2} | {cta_flat:.2} |");
    out
}

// ------------------------------------------------------------------
// Index-size comparison (§IV-D discussion)
// ------------------------------------------------------------------

/// The storage comparison of §IV-D: EmbLookup's compressed index vs an
/// ElasticSearch index with and without aliases.
pub fn index_sizes(env: &Env) -> String {
    let mut out = String::from("## Index sizes (§IV-D)\n\n");
    let kg = &env.synth.kg;
    let elastic_labels = ElasticLikeService::new(kg, false);
    let elastic_aliases = ElasticLikeService::new(kg, true);
    let _ = writeln!(out, "| Index | Bytes |");
    let _ = writeln!(out, "|---|---|");
    let _ = writeln!(out, "| EmbLookup PQ (EL) | {} |", env.el.index().nbytes());
    let _ = writeln!(out, "| EmbLookup flat (EL-NC) | {} |", env.el_nc.index().nbytes());
    let _ = writeln!(out, "| ElasticLike labels only | {} |", elastic_labels.nbytes());
    let _ = writeln!(out, "| ElasticLike labels+aliases | {} |", elastic_aliases.nbytes());
    out
}

// ------------------------------------------------------------------
// Ablation — design choices (beyond the paper; DESIGN.md §6)
// ------------------------------------------------------------------

/// Ablation of EmbLookup's design choices: triplet-mining families,
/// output L2 normalization, and the §III-C alias-indexing option.
/// Reported as typo / alias hit@10 on the sensitivity-scale KG.
pub fn ablation(scale: Scale) -> String {
    use emblookup_core::{mine_triplets, EmbLookupModel, MiningConfig, TripletFamily};
    use emblookup_embed::FastText as Ft;

    let mut out = String::from("## Ablation — mining families, normalization, alias indexing\n\n");
    let synth = generate(Scale::Smoke.kg_config(KgFlavor::Wikidata));
    let kg = &synth.kg;
    let base_config = scale.emblookup_config();

    // shared semantic leg: train fastText once
    let corpus = Corpus::from_kg(kg);
    let fasttext = FastText::train(
        &corpus,
        FastTextConfig {
            dim: base_config.fasttext_dim,
            epochs: base_config.fasttext_epochs,
            seed: base_config.seed,
            ..Default::default()
        },
    );
    let ft_bytes = fasttext.to_bytes();

    // workloads
    let mut rng = rand::rngs::StdRng::seed_from_u64(MASTER_SEED + 70);
    use rand::SeedableRng as _;
    let injector = emblookup_text::NoiseInjector::typos();
    let typo_q: Vec<(String, emblookup_kg::EntityId)> = kg
        .entities()
        .take(300)
        .map(|e| (injector.corrupt(&e.label, &mut rng), e.id))
        .collect();
    let alias_q: Vec<(String, emblookup_kg::EntityId)> = kg
        .entities()
        .filter(|e| !e.aliases.is_empty())
        .take(300)
        .map(|e| (e.aliases[0].clone(), e.id))
        .collect();

    let all = vec![
        TripletFamily::Semantic,
        TripletFamily::Syntactic,
        TripletFamily::TypeSharing,
    ];
    use emblookup_core::LossKind;
    let variants: Vec<(&str, Vec<TripletFamily>, bool, bool, LossKind)> = vec![
        ("full model", all.clone(), true, false, LossKind::Triplet),
        ("no syntactic triplets", vec![TripletFamily::Semantic, TripletFamily::TypeSharing], true, false, LossKind::Triplet),
        ("no semantic triplets", vec![TripletFamily::Syntactic, TripletFamily::TypeSharing], true, false, LossKind::Triplet),
        ("no type-sharing triplets", vec![TripletFamily::Semantic, TripletFamily::Syntactic], true, false, LossKind::Triplet),
        ("no L2 normalization", all.clone(), false, false, LossKind::Triplet),
        ("contrastive loss (future work)", all.clone(), true, false, LossKind::Contrastive),
        ("alias-indexed (§III-C option)", all, true, true, LossKind::Triplet),
    ];

    let _ = writeln!(out, "| Variant | Typo hit@10 | Alias hit@10 | Index rows |");
    let _ = writeln!(out, "|---|---|---|---|");
    for (name, families, normalize, index_aliases, loss) in variants {
        let config = EmbLookupConfig {
            l2_normalize: normalize,
            index_aliases,
            loss,
            compression: Compression::None,
            ..base_config.clone()
        };
        // lint: allow(L001) round-trips bytes serialized two lines up; failure means a serializer bug
        let semantic = Ft::from_bytes(&ft_bytes).expect("fastText round trip");
        let mut model = EmbLookupModel::new(semantic, config.clone());
        let mining = MiningConfig {
            families,
            ..MiningConfig::with_budget(config.triplets_per_entity, config.seed)
        };
        let triplets = mine_triplets(kg, &mining);
        emblookup_core::train(&mut model, &triplets);
        let service = EmbLookup::from_model(std::sync::Arc::new(model), kg, Compression::None);
        let t: Vec<(&str, emblookup_kg::EntityId)> =
            typo_q.iter().map(|(s, id)| (s.as_str(), *id)).collect();
        let a: Vec<(&str, emblookup_kg::EntityId)> =
            alias_q.iter().map(|(s, id)| (s.as_str(), *id)).collect();
        let _ = writeln!(
            out,
            "| {} | {:.3} | {:.3} | {} |",
            name,
            hit_rate_at_k(&service, &t, 10),
            hit_rate_at_k(&service, &a, 10),
            service.index().len(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::SynthKgConfig;

    #[test]
    fn gpu_time_divides() {
        assert_eq!(gpu_time(Duration::from_secs(4)), Duration::from_secs(1));
    }

    #[test]
    fn original_service_mapping_is_total() {
        let s = generate(SynthKgConfig::tiny(50));
        for system in ["bbw", "MantisTable", "JenTab", "DoSeR", "Katara"] {
            let svc = original_service(system, &s.kg);
            assert!(!svc.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown system")]
    fn unknown_system_panics() {
        let s = generate(SynthKgConfig::tiny(51));
        let _ = original_service("nope", &s.kg);
    }
}
