//! Criterion micro-benchmarks behind Figures 4 and 5: product-quantization
//! train/encode/search against PCA projection and the flat baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use emblookup_ann::{FlatIndex, Pca, PqConfig, PqIndex, ProductQuantizer, VectorSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vs = VectorSet::new(dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        vs.push(&v);
    }
    vs
}

fn bench_compression(c: &mut Criterion) {
    let data = random_set(4000, 64, 1);
    let query: Vec<f32> = random_set(1, 64, 2).get(0).to_vec();

    let pq_cfg = PqConfig { m: 8, ks: 256, kmeans_iters: 8, seed: 0 };
    let quantizer = ProductQuantizer::train(&data, pq_cfg);
    let pq_index = PqIndex::from_quantizer(quantizer.clone(), &data);
    let flat = FlatIndex::new(data.clone());
    let pca = Pca::fit(&data, 8, 0);

    let mut group = c.benchmark_group("fig4_fig5_compression");
    group.sample_size(20);

    group.bench_function("pq_encode_one_vector", |b| {
        b.iter(|| black_box(quantizer.encode(black_box(&query))))
    });
    group.bench_function("pq_distance_table", |b| {
        b.iter(|| black_box(quantizer.distance_table(black_box(&query))))
    });
    group.bench_function("pq_search_k20_4000", |b| {
        b.iter(|| black_box(pq_index.search(black_box(&query), 20)))
    });
    group.bench_function("flat_search_k20_4000", |b| {
        b.iter(|| black_box(flat.search(black_box(&query), 20)))
    });
    group.bench_function("pca_project_one_vector", |b| {
        b.iter(|| black_box(pca.project(black_box(&query))))
    });
    group.finish();

    let mut train_group = c.benchmark_group("compression_build");
    train_group.sample_size(10);
    train_group.bench_function("pq_train_4000x64", |b| {
        b.iter(|| black_box(ProductQuantizer::train(&data, pq_cfg)))
    });
    train_group.bench_function("pca_fit_k8_4000x64", |b| {
        b.iter(|| black_box(Pca::fit(&data, 8, 0)))
    });
    train_group.finish();
}

criterion_group!(benches, bench_compression);
criterion_main!(benches);
