//! Micro-benchmarks behind Figures 4 and 5: product-quantization
//! train/encode/search against PCA projection and the flat baseline.

use emblookup_ann::{FlatIndex, Pca, PqConfig, PqIndex, ProductQuantizer, VectorSet};
use emblookup_bench::micro::Group;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut vs = VectorSet::new(dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        vs.push(&v);
    }
    vs
}

fn main() {
    let data = random_set(4000, 64, 1);
    let query: Vec<f32> = random_set(1, 64, 2).get(0).to_vec();

    let pq_cfg = PqConfig { m: 8, ks: 256, kmeans_iters: 8, seed: 0 };
    let quantizer = ProductQuantizer::train(&data, pq_cfg);
    let pq_index = PqIndex::from_quantizer(quantizer.clone(), &data);
    let flat = FlatIndex::new(data.clone());
    let pca = Pca::fit(&data, 8, 0);

    let mut group = Group::new("fig4_fig5_compression");
    group.bench("pq_encode_one_vector", || {
        black_box(quantizer.encode(black_box(&query)))
    });
    group.bench("pq_distance_table", || {
        black_box(quantizer.distance_table(black_box(&query)))
    });
    group.bench("pq_search_k20_4000", || {
        black_box(pq_index.search(black_box(&query), 20))
    });
    group.bench("flat_search_k20_4000", || {
        black_box(flat.search(black_box(&query), 20))
    });
    group.bench("pca_project_one_vector", || {
        black_box(pca.project(black_box(&query)))
    });
    group.finish();

    let mut train_group = Group::new("compression_build");
    train_group.bench("pq_train_4000x64", || {
        black_box(ProductQuantizer::train(&data, pq_cfg))
    });
    train_group.bench("pca_fit_k8_4000x64", || black_box(Pca::fit(&data, 8, 0)));
    train_group.finish();
}
