//! Micro-benchmarks behind Figure 3: the training-cost building blocks —
//! triplet mining, one forward/backward batch, and the fastText
//! semantic-leg epoch.

use emblookup_bench::micro::Group;
use emblookup_core::{mine_triplets, EmbLookupConfig, EmbLookupModel, MiningConfig};
use emblookup_embed::{Corpus, FastText, FastTextConfig, StringEncoder};
use emblookup_kg::{generate, SynthKgConfig};
use emblookup_tensor::loss;
use emblookup_tensor::{Bindings, Graph};
use std::hint::black_box;

fn main() {
    let synth = generate(SynthKgConfig::small(77));
    let corpus = Corpus::from_kg(&synth.kg);
    let fasttext = FastText::train(
        &corpus,
        FastTextConfig { dim: 64, epochs: 2, seed: 77, ..Default::default() },
    );
    let _ = fasttext.embed("warmup");
    let config = EmbLookupConfig {
        epochs: 1,
        triplets_per_entity: 4,
        ..EmbLookupConfig::fast(77)
    };
    let model = EmbLookupModel::new(fasttext, config);
    let triplets = mine_triplets(&synth.kg, &MiningConfig::with_budget(4, 77));

    let mut group = Group::new("fig3_training_costs");

    group.bench("mine_triplets_600_entities_x4", || {
        black_box(mine_triplets(&synth.kg, &MiningConfig::with_budget(4, 77)))
    });

    group.bench("forward_backward_batch_32_triplets", || {
        let mut g = Graph::new();
        let mut bind = Bindings::new();
        let mut losses = Vec::new();
        for t in triplets.iter().take(32) {
            let ea = model.forward(&mut g, &mut bind, &t.anchor);
            let ep = model.forward(&mut g, &mut bind, &t.positive);
            let en = model.forward(&mut g, &mut bind, &t.negative);
            losses.push(loss::triplet(&mut g, ea, ep, en, 0.5));
        }
        let total = loss::batch_mean(&mut g, &losses);
        g.backward(total);
        black_box(g.value(total).item())
    });

    group.bench("fasttext_epoch_over_kg_corpus", || {
        black_box(FastText::train(
            &corpus,
            FastTextConfig { dim: 64, epochs: 1, seed: 77, ..Default::default() },
        ))
    });
    group.finish();
}
