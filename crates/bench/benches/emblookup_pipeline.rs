//! Criterion micro-benchmarks behind Tables II/III: the EmbLookup lookup
//! path broken into its stages (embed, index search, bulk query), which is
//! the latency the systems' speedup columns are built from.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use emblookup_bench::harness::{Env, Scale};
use emblookup_kg::{KgFlavor, LookupService};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let env = Env::build(KgFlavor::Wikidata, Scale::Smoke);
    let model = env.el.model();
    let query = "east brenkalburg";
    let embedding = model.embed(query);

    let mut group = c.benchmark_group("table2_emblookup_stages");
    group.sample_size(30);

    group.bench_function("embed_single_mention", |b| {
        b.iter(|| black_box(model.embed(black_box(query))))
    });

    group.bench_function("index_search_pq_k20", |b| {
        b.iter(|| black_box(env.el.index().search(black_box(&embedding), 20)))
    });

    group.bench_function("index_search_flat_k20", |b| {
        b.iter(|| black_box(env.el_nc.index().search(black_box(&embedding), 20)))
    });

    group.bench_function("lookup_end_to_end_k20", |b| {
        b.iter(|| black_box(env.el.lookup(black_box(query), 20)))
    });

    let queries: Vec<&str> = env
        .synth
        .kg
        .entities()
        .take(64)
        .map(|e| e.label.as_str())
        .collect();
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("bulk_lookup_64_queries_k20", |b| {
        b.iter(|| black_box(env.el.lookup_batch(black_box(&queries), 20)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
