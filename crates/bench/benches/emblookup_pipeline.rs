//! Micro-benchmarks behind Tables II/III: the EmbLookup lookup path
//! broken into its stages (embed, index search, bulk query), which is
//! the latency the systems' speedup columns are built from.

use emblookup_bench::harness::{Env, Scale};
use emblookup_bench::micro::Group;
use emblookup_kg::{KgFlavor, LookupService};
use std::hint::black_box;

fn main() {
    let env = Env::build(KgFlavor::Wikidata, Scale::Smoke);
    let model = env.el.model();
    let query = "east brenkalburg";
    let embedding = model.embed(query);

    let mut group = Group::new("table2_emblookup_stages");

    group.bench("embed_single_mention", || {
        black_box(model.embed(black_box(query)))
    });

    group.bench("index_search_pq_k20", || {
        black_box(env.el.index().search(black_box(&embedding), 20))
    });

    group.bench("index_search_flat_k20", || {
        black_box(env.el_nc.index().search(black_box(&embedding), 20))
    });

    group.bench("lookup_end_to_end_k20", || {
        black_box(env.el.lookup(black_box(query), 20))
    });

    let queries: Vec<&str> = env
        .synth
        .kg
        .entities()
        .take(64)
        .map(|e| e.label.as_str())
        .collect();
    group.bench("bulk_lookup_64_queries_k20", || {
        black_box(env.el.lookup_batch(black_box(&queries), 20))
    });
    group.finish();
}
