//! Micro-benchmarks behind Table V: per-query latency of every local
//! lookup service against the same catalog.

use emblookup_ann::lsh::LshConfig;
use emblookup_baselines::{
    ElasticLikeService, ElasticOp, ElasticOpService, ExactMatchService, FuzzyWuzzyService,
    LevenshteinService, LshService, QGramService,
};
use emblookup_bench::harness::{Env, Scale};
use emblookup_bench::micro::Group;
use emblookup_kg::{KgFlavor, LookupService};
use std::hint::black_box;

fn main() {
    let env = Env::build(KgFlavor::Wikidata, Scale::Smoke);
    let kg = &env.synth.kg;
    let queries: Vec<String> = env
        .dataset
        .tables
        .iter()
        .flat_map(|t| {
            t.entity_cells()
                .map(|(_, _, cell)| cell.text.clone())
                .collect::<Vec<_>>()
        })
        .take(32)
        .collect();

    let services: Vec<Box<dyn LookupService>> = vec![
        Box::new(ExactMatchService::new(kg, false)),
        Box::new(LevenshteinService::new(kg, false, 3)),
        Box::new(QGramService::new(kg, false, 3)),
        Box::new(FuzzyWuzzyService::new(kg, false)),
        Box::new(ElasticLikeService::new(kg, false)),
        Box::new(LshService::new(kg, false, LshConfig::default())),
        Box::new(ElasticOpService::new(kg, false, ElasticOp::Levenshtein)),
    ];

    let mut group = Group::new("table5_lookup_services");
    for (i, svc) in services.iter().enumerate() {
        // index prefix keeps IDs unique (two services are named
        // "Levenshtein": the scan and the engine-hosted operation)
        let id = format!("{}_{}", i, svc.name().replace(' ', "_"));
        let mut n = 0usize;
        group.bench(&id, || {
            let q = &queries[n % queries.len()];
            n += 1;
            black_box(svc.lookup(q, 10))
        });
    }
    let mut n = 0usize;
    group.bench("EmbLookup_PQ", || {
        let q = &queries[n % queries.len()];
        n += 1;
        black_box(env.el.lookup(q, 10))
    });
    let mut n = 0usize;
    group.bench("EmbLookup_flat", || {
        let q = &queries[n % queries.len()];
        n += 1;
        black_box(env.el_nc.lookup(q, 10))
    });
    group.finish();
}
