//! Criterion micro-benchmarks behind Table V: per-query latency of every
//! local lookup service against the same catalog.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use emblookup_ann::lsh::LshConfig;
use emblookup_baselines::{
    ElasticLikeService, ElasticOp, ElasticOpService, ExactMatchService, FuzzyWuzzyService,
    LevenshteinService, LshService, QGramService,
};
use emblookup_bench::harness::{Env, Scale};
use emblookup_kg::{KgFlavor, LookupService};
use std::hint::black_box;

fn bench_services(c: &mut Criterion) {
    let env = Env::build(KgFlavor::Wikidata, Scale::Smoke);
    let kg = &env.synth.kg;
    let queries: Vec<String> = env
        .dataset
        .tables
        .iter()
        .flat_map(|t| {
            t.entity_cells()
                .map(|(_, _, cell)| cell.text.clone())
                .collect::<Vec<_>>()
        })
        .take(32)
        .collect();

    let services: Vec<Box<dyn LookupService>> = vec![
        Box::new(ExactMatchService::new(kg, false)),
        Box::new(LevenshteinService::new(kg, false, 3)),
        Box::new(QGramService::new(kg, false, 3)),
        Box::new(FuzzyWuzzyService::new(kg, false)),
        Box::new(ElasticLikeService::new(kg, false)),
        Box::new(LshService::new(kg, false, LshConfig::default())),
        Box::new(ElasticOpService::new(kg, false, ElasticOp::Levenshtein)),
    ];

    let mut group = c.benchmark_group("table5_lookup_services");
    group.sample_size(20);
    for (i, svc) in services.iter().enumerate() {
        // index prefix keeps IDs unique (two services are named
        // "Levenshtein": the scan and the engine-hosted operation)
        let id = format!("{}_{}", i, svc.name().replace(' ', "_"));
        group.bench_function(id, |b| {
            let mut i = 0usize;
            b.iter_batched(
                || {
                    let q = queries[i % queries.len()].clone();
                    i += 1;
                    q
                },
                |q| black_box(svc.lookup(&q, 10)),
                BatchSize::SmallInput,
            );
        });
    }
    group.bench_function("EmbLookup_PQ", |b| {
        let mut i = 0usize;
        b.iter_batched(
            || {
                let q = queries[i % queries.len()].clone();
                i += 1;
                q
            },
            |q| black_box(env.el.lookup(&q, 10)),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("EmbLookup_flat", |b| {
        let mut i = 0usize;
        b.iter_batched(
            || {
                let q = queries[i % queries.len()].clone();
                i += 1;
                q
            },
            |q| black_box(env.el_nc.lookup(&q, 10)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_services);
criterion_main!(benches);
