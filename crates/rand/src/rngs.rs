//! Concrete generators. `StdRng` is xoshiro256++ — small, fast, and far
//! stronger statistically than anything the workspace's synthetic-data
//! and initialization code requires.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, the reference seeding procedure for the
        // xoshiro family: guarantees a non-zero state for every seed.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = StdRng::seed_from_u64(0);
        // state must not be all-zero (xoshiro's single fixed point)
        assert!((0..4).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn output_is_well_spread() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // ~32000 expected; catastrophic bias would land far outside
        assert!((30_000..34_000).contains(&ones), "bit bias: {ones}");
    }
}
