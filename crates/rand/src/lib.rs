//! In-tree, zero-dependency replacement for the subset of the `rand` 0.8
//! API used by this workspace, so that `cargo build` works with no
//! registry access.
//!
//! Implements `RngCore`/`Rng`/`SeedableRng`, `rngs::StdRng` (xoshiro256++
//! seeded through SplitMix64) and `seq::SliceRandom` (`choose`,
//! `shuffle`). Streams are deterministic per seed but are **not**
//! bit-compatible with the upstream crate — all seeds in this repo are
//! internal, so only self-consistency matters.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_one(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Expands a single `u64` into full generator state (via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitive types uniformly samplable over an interval. The single
/// blanket [`SampleRange`] impl per range shape keeps integer-literal
/// type inference working (`rng.gen_range(1850..2020)` defaults to
/// `i32`), matching the upstream crate's trait layout.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a uniform `f32` in `[0, 1)` (24-bit mantissa).
#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform `u64` in `[0, span)`; `span == 0` means the full domain.
#[inline]
fn below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Multiply-shift (Lemire) keeps the modulo bias negligible without a
    // rejection loop; all uses here are statistical, not cryptographic.
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // i128 arithmetic covers signed ranges; `span == 0` only
                // for the full-u64 inclusive domain, handled by `below`.
                let span =
                    (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u64;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($t:ty, $unit:ident) => {
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                lo + $unit(rng.next_u64()) * (hi - lo)
            }
        }
    };
}
uniform_float!(f32, unit_f32);
uniform_float!(f64, unit_f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0) || !rng.gen_bool(1.0)); // never panics
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "biased coin: {heads}");
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements left in place — shuffle broken");
    }

    #[test]
    fn choose_only_returns_members() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_unsized_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(draw(&mut rng) < 10);
    }
}
