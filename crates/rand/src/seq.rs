//! Sequence helpers: random element choice and Fisher–Yates shuffling.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// A uniformly random element, or `None` when the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniform in-place permutation (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
