//! Alphabet handling and the one-hot string encoding of the paper (§III-B).
//!
//! A string `m` is encoded as a matrix of dimensions `|A| × L`: column `i`
//! holds the one-hot encoding of the `i`-th character; columns past the end
//! of the string stay zero.

use std::collections::BTreeMap;

/// Character set used for one-hot encoding.
///
/// Characters outside the alphabet map to a dedicated `<unk>` slot so that
/// queries containing stray symbols still encode instead of failing — the
/// paper's lookup must be robust to arbitrary dirty strings.
#[derive(Debug, Clone)]
pub struct Alphabet {
    chars: Vec<char>,
    index: BTreeMap<char, usize>,
}

impl Alphabet {
    /// Builds an alphabet from an explicit character list.
    ///
    /// Duplicates are ignored; one extra `<unk>` slot is always appended, so
    /// [`Alphabet::len`] is `chars.len() + 1` for duplicate-free input.
    pub fn new(chars: impl IntoIterator<Item = char>) -> Self {
        let mut list = Vec::new();
        let mut index = BTreeMap::new();
        for c in chars {
            if let std::collections::btree_map::Entry::Vacant(e) = index.entry(c) {
                e.insert(list.len());
                list.push(c);
            }
        }
        Alphabet { chars: list, index }
    }

    /// The default EmbLookup alphabet: lowercase ASCII letters, digits,
    /// space, and common punctuation found in entity labels.
    pub fn default_lookup() -> Self {
        Alphabet::new(
            ('a'..='z')
                .chain('0'..='9')
                .chain(" .,'-&()/".chars()),
        )
    }

    /// Number of one-hot rows, including the `<unk>` slot.
    pub fn len(&self) -> usize {
        self.chars.len() + 1
    }

    /// True for a degenerate alphabet with only the `<unk>` slot.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Positional index of `c`, or the `<unk>` slot for unknown characters.
    /// Uppercase ASCII is folded to lowercase first.
    pub fn pos(&self, c: char) -> usize {
        let c = c.to_ascii_lowercase();
        *self.index.get(&c).unwrap_or(&self.chars.len())
    }

    /// True when `c` (case-folded) is a member of the alphabet.
    pub fn contains(&self, c: char) -> bool {
        self.index.contains_key(&c.to_ascii_lowercase())
    }

    /// The characters of the alphabet, in index order (without `<unk>`).
    pub fn chars(&self) -> &[char] {
        &self.chars
    }
}

impl Default for Alphabet {
    fn default() -> Self {
        Self::default_lookup()
    }
}

/// One-hot encoder turning strings into `|A| × L` matrices (row-major).
#[derive(Debug, Clone)]
pub struct OneHotEncoder {
    alphabet: Alphabet,
    /// Maximum encoded length `L`; longer strings are truncated.
    pub max_len: usize,
}

impl OneHotEncoder {
    /// Creates an encoder for the given alphabet and maximum length.
    ///
    /// # Panics
    /// Panics if `max_len` is zero.
    pub fn new(alphabet: Alphabet, max_len: usize) -> Self {
        assert!(max_len > 0, "one-hot max_len must be positive");
        OneHotEncoder { alphabet, max_len }
    }

    /// The underlying alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of rows of the produced matrix (`|A|`, with `<unk>`).
    pub fn rows(&self) -> usize {
        self.alphabet.len()
    }

    /// Encodes `s` as a row-major `|A| × L` buffer.
    ///
    /// Column `i` is the one-hot vector of character `i`; columns beyond the
    /// string length stay zero, and characters beyond `max_len` are dropped,
    /// exactly as in the paper's preprocessing.
    pub fn encode(&self, s: &str) -> Vec<f32> {
        let rows = self.rows();
        let mut out = vec![0.0f32; rows * self.max_len];
        for (col, c) in s.chars().take(self.max_len).enumerate() {
            let row = self.alphabet.pos(c);
            out[row * self.max_len + col] = 1.0;
        }
        out
    }

    /// Shape of the encoded matrix as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.max_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_cad() {
        // Paper §III-B: A = {a,b,c,d,e}, L = 4, m = "cad"
        let alpha = Alphabet::new("abcde".chars());
        let enc = OneHotEncoder::new(alpha, 4);
        let m = enc.encode("cad");
        let rows = enc.rows(); // 5 letters + unk = 6
        assert_eq!(rows, 6);
        let col = |m: &[f32], j: usize| -> Vec<f32> {
            (0..rows).map(|i| m[i * 4 + j]).collect()
        };
        assert_eq!(col(&m, 0), vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0]); // 'c'
        assert_eq!(col(&m, 1), vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0]); // 'a'
        assert_eq!(col(&m, 2), vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0]); // 'd'
        assert_eq!(col(&m, 3), vec![0.0; 6]); // padding
    }

    #[test]
    fn unknown_chars_hit_unk_slot() {
        let alpha = Alphabet::new("ab".chars());
        assert_eq!(alpha.pos('a'), 0);
        assert_eq!(alpha.pos('b'), 1);
        assert_eq!(alpha.pos('z'), 2); // unk
        assert_eq!(alpha.len(), 3);
    }

    #[test]
    fn case_folding() {
        let alpha = Alphabet::default_lookup();
        assert_eq!(alpha.pos('A'), alpha.pos('a'));
        assert!(alpha.contains('Z'));
    }

    #[test]
    fn encode_truncates_long_strings() {
        let enc = OneHotEncoder::new(Alphabet::default_lookup(), 3);
        let m = enc.encode("abcdef");
        let ones: usize = m.iter().filter(|&&x| x == 1.0).count();
        assert_eq!(ones, 3);
    }

    #[test]
    fn encode_empty_string_is_all_zero() {
        let enc = OneHotEncoder::new(Alphabet::default_lookup(), 4);
        let m = enc.encode("");
        assert!(m.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn duplicate_chars_deduped() {
        let alpha = Alphabet::new("aab".chars());
        assert_eq!(alpha.len(), 3); // a, b, unk
    }

    #[test]
    fn default_alphabet_covers_labels() {
        let alpha = Alphabet::default_lookup();
        for c in "federal republic of germany 1990's co. & (usa)/x-1".chars() {
            assert!(alpha.contains(c), "missing {c:?}");
        }
    }
}
