//! String distances and similarities used by the baseline lookup services
//! and by triplet-mining verification.

/// Levenshtein (edit) distance between two strings, by characters.
///
/// Uses the standard two-row dynamic program — O(|a|·|b|) time,
/// O(min(|a|,|b|)) space.
///
/// ```
/// use emblookup_text::distance::levenshtein;
/// assert_eq!(levenshtein("germany", "germoney"), 2);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein distance with an early-exit bound: returns `None` when the
/// distance provably exceeds `max`. Much faster for candidate filtering.
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > max {
        return None;
    }
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[short.len()];
    (d <= max).then_some(d)
}

/// Damerau–Levenshtein distance (restricted transpositions).
///
/// Counts adjacent transposition as one edit, matching the error model of
/// the paper's noise-injection experiments.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let w = m + 1;
    let mut d = vec![0usize; (n + 1) * w];
    for i in 0..=n {
        d[i * w] = i;
    }
    for (j, cell) in d[..=m].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[(i - 1) * w + j] + 1)
                .min(d[i * w + j - 1] + 1)
                .min(d[(i - 1) * w + j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * w + j - 2] + 1);
            }
            d[i * w + j] = best;
        }
    }
    d[n * w + m]
}

/// Normalized Levenshtein similarity in `[0, 1]`; `1.0` means equal strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Character q-grams of a string, padded with `#` on both sides so that
/// prefixes/suffixes get their own grams (classic q-gram similarity setup).
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q > 0, "q must be positive");
    let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
        .chain(s.chars())
        .chain(std::iter::repeat_n('#', q - 1))
        .collect();
    if padded.len() < q {
        return Vec::new();
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// Jaccard similarity of the q-gram sets of two strings, in `[0, 1]`.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    use std::collections::BTreeSet;
    let sa: BTreeSet<String> = qgrams(a, q).into_iter().collect();
    let sb: BTreeSet<String> = qgrams(b, q).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches += 1;
                a_matched.push(i);
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    let b_matched: Vec<usize> = b_used
        .iter()
        .enumerate()
        .filter_map(|(j, &u)| u.then_some(j))
        .collect();
    let transpositions = a_matched
        .iter()
        .zip(b_matched.iter())
        .filter(|&(&i, &j)| a[i] != b[j])
        .count()
        / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler similarity, boosting shared prefixes (scaling 0.1, max 4).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// FuzzyWuzzy-style "simple ratio": normalized Levenshtein similarity scaled
/// to 0–100 (the paper's FuzzyWuzzy baseline uses Levenshtein internally).
pub fn fuzz_ratio(a: &str, b: &str) -> u32 {
    (levenshtein_similarity(a, b) * 100.0).round() as u32
}

/// FuzzyWuzzy-style token-sort ratio: tokens are sorted before comparison,
/// making the score order-insensitive (catches "gates bill" ≈ "bill gates").
pub fn token_sort_ratio(a: &str, b: &str) -> u32 {
    fuzz_ratio(&sorted_tokens(a), &sorted_tokens(b))
}

/// FuzzyWuzzy-style token-set ratio: compares the shared-token core against
/// each full token set and takes the best score; robust to extra tokens.
pub fn token_set_ratio(a: &str, b: &str) -> u32 {
    use std::collections::BTreeSet;
    let ta: BTreeSet<&str> = a.split_whitespace().collect();
    let tb: BTreeSet<&str> = b.split_whitespace().collect();
    let inter: Vec<&str> = ta.intersection(&tb).copied().collect();
    let join = |set: &BTreeSet<&str>| -> String {
        set.iter().copied().collect::<Vec<_>>().join(" ")
    };
    let core = inter.join(" ");
    let full_a = join(&ta);
    let full_b = join(&tb);
    let c_a = fuzz_ratio(&core, &full_a);
    let c_b = fuzz_ratio(&core, &full_b);
    let a_b = fuzz_ratio(&full_a, &full_b);
    c_a.max(c_b).max(a_b)
}

fn sorted_tokens(s: &str) -> String {
    let mut tokens: Vec<&str> = s.split_whitespace().collect();
    tokens.sort_unstable();
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_pairs() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("germany", "germoney"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn bounded_matches_exact_within_bound() {
        assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
        assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
        assert_eq!(levenshtein_bounded("abc", "abcdefgh", 2), None); // length gap
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(levenshtein("ab", "ba"), 2);
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("germany", "gremany"), 1);
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("a", "a"), 1.0);
        assert_eq!(levenshtein_similarity("a", "b"), 0.0);
    }

    #[test]
    fn qgrams_pad_prefix_and_suffix() {
        let g = qgrams("ab", 3);
        assert_eq!(g, vec!["##a", "#ab", "ab#", "b##"]);
    }

    #[test]
    fn qgram_jaccard_identical_is_one() {
        assert_eq!(qgram_jaccard("berlin", "berlin", 3), 1.0);
        assert!(qgram_jaccard("berlin", "bellin", 3) > 0.3);
        assert!(qgram_jaccard("berlin", "tokyo", 3) < 0.1);
    }

    #[test]
    fn jaro_winkler_favors_prefix() {
        let plain = jaro("martha", "marhta");
        let jw = jaro_winkler("martha", "marhta");
        assert!(jw > plain);
        assert!((jaro("martha", "marhta") - 0.9444).abs() < 1e-3);
    }

    #[test]
    fn token_sort_handles_reordering() {
        assert_eq!(token_sort_ratio("bill gates", "gates bill"), 100);
        assert!(fuzz_ratio("bill gates", "gates bill") < 100);
    }

    #[test]
    fn token_set_tolerates_extra_tokens() {
        let r = token_set_ratio("barack obama", "president barack obama");
        assert_eq!(r, 100);
    }

    #[test]
    fn fuzz_ratio_range() {
        for (a, b) in [("a", "a"), ("a", "xyz"), ("hello", "hallo")] {
            let r = fuzz_ratio(a, b);
            assert!(r <= 100);
        }
    }
}
