//! Tokenization helpers shared by the embedding models and baselines.

/// Splits a string into lowercase word tokens on whitespace and punctuation.
///
/// Digits are kept inside tokens ("route 66" → `["route", "66"]`), matching
/// how entity labels are tokenized for word-level embeddings.
pub fn words(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_ascii_lowercase())
        .collect()
}

/// Normalizes a string for lookup: lowercase, collapse whitespace runs,
/// strip leading/trailing whitespace.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c.to_ascii_lowercase());
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Character n-grams of a token wrapped in `<` / `>` boundary markers, as in
/// fastText. Includes the full wrapped token itself.
pub fn fasttext_ngrams(token: &str, min_n: usize, max_n: usize) -> Vec<String> {
    assert!(min_n > 0 && min_n <= max_n, "invalid n-gram range {min_n}..={max_n}");
    let wrapped: Vec<char> = std::iter::once('<')
        .chain(token.chars())
        .chain(std::iter::once('>'))
        .collect();
    let mut out = Vec::new();
    for n in min_n..=max_n {
        if wrapped.len() < n {
            break;
        }
        for w in wrapped.windows(n) {
            out.push(w.iter().collect());
        }
    }
    // the whole wrapped word is always its own feature
    let whole: String = wrapped.iter().collect();
    if !out.contains(&whole) {
        out.push(whole);
    }
    out
}

/// Builds the initialism of a multi-word string ("European Union" → "EU"),
/// or `None` for single-token strings.
pub fn initialism(s: &str) -> Option<String> {
    let tokens = words(s);
    if tokens.len() < 2 {
        return None;
    }
    Some(
        tokens
            .iter()
            .filter_map(|t| t.chars().next())
            .map(|c| c.to_ascii_uppercase())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_splits_and_lowercases() {
        assert_eq!(words("East Berlin"), vec!["east", "berlin"]);
        assert_eq!(words("AT&T Corp."), vec!["at", "t", "corp"]);
        assert_eq!(words(""), Vec::<String>::new());
    }

    #[test]
    fn normalize_collapses_space() {
        assert_eq!(normalize("  East   BERLIN "), "east berlin");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn fasttext_ngrams_include_boundaries() {
        let g = fasttext_ngrams("ab", 2, 3);
        assert!(g.contains(&"<a".to_string()));
        assert!(g.contains(&"b>".to_string()));
        assert!(g.contains(&"<ab".to_string()));
        assert!(g.contains(&"<ab>".to_string())); // whole word
    }

    #[test]
    fn fasttext_ngrams_short_token() {
        let g = fasttext_ngrams("a", 3, 6);
        assert_eq!(g, vec!["<a>".to_string()]);
    }

    #[test]
    fn initialism_examples() {
        assert_eq!(initialism("European Union"), Some("EU".to_string()));
        assert_eq!(
            initialism("federal republic of germany"),
            Some("FROG".to_string())
        );
        assert_eq!(initialism("Germany"), None);
    }
}
