//! Noise injection mirroring the paper's error model (§IV-B):
//! "common misspellings such as dropping/inserting one or more letters,
//! transposing letters, swapping the tokens, abbreviations, and so on."

use crate::tokenize::{initialism, words};
use rand::seq::SliceRandom;
use rand::Rng;

/// A single noise family that can be applied to an entity mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// Drops one random character.
    DropChar,
    /// Inserts one random lowercase letter at a random position.
    InsertChar,
    /// Substitutes one random character by a random lowercase letter.
    SubstituteChar,
    /// Transposes one random adjacent character pair.
    TransposeChars,
    /// Duplicates one random character ("berlin" → "berrlin").
    DuplicateChar,
    /// Swaps the order of two random tokens ("bill gates" → "gates bill").
    SwapTokens,
    /// Replaces the string by its initialism ("european union" → "EU").
    Abbreviate,
    /// Drops one random token from a multi-token mention.
    DropToken,
}

impl NoiseKind {
    /// Every supported noise family, in a fixed order.
    pub const ALL: [NoiseKind; 8] = [
        NoiseKind::DropChar,
        NoiseKind::InsertChar,
        NoiseKind::SubstituteChar,
        NoiseKind::TransposeChars,
        NoiseKind::DuplicateChar,
        NoiseKind::SwapTokens,
        NoiseKind::Abbreviate,
        NoiseKind::DropToken,
    ];

    /// The misspelling-only subset (no token-level or abbreviation noise),
    /// used for syntactic triplet mining.
    pub const TYPOS: [NoiseKind; 5] = [
        NoiseKind::DropChar,
        NoiseKind::InsertChar,
        NoiseKind::SubstituteChar,
        NoiseKind::TransposeChars,
        NoiseKind::DuplicateChar,
    ];
}

/// Applies noise families to strings using a caller-supplied RNG so that
/// experiments are reproducible from a seed.
#[derive(Debug, Clone)]
pub struct NoiseInjector {
    /// Families to sample from when [`NoiseInjector::corrupt`] is called.
    pub kinds: Vec<NoiseKind>,
}

impl NoiseInjector {
    /// Injector over every noise family.
    pub fn all() -> Self {
        NoiseInjector { kinds: NoiseKind::ALL.to_vec() }
    }

    /// Injector over misspellings only.
    pub fn typos() -> Self {
        NoiseInjector { kinds: NoiseKind::TYPOS.to_vec() }
    }

    /// Injector over an explicit family list.
    ///
    /// # Panics
    /// Panics on an empty list.
    pub fn with_kinds(kinds: Vec<NoiseKind>) -> Self {
        assert!(!kinds.is_empty(), "noise injector needs at least one kind");
        NoiseInjector { kinds }
    }

    /// Applies one randomly-chosen noise family.
    ///
    /// Families that do not apply (e.g. token swap on a single token) fall
    /// back to a character substitution so the output always differs from a
    /// non-trivial input. Empty and single-char inputs are returned
    /// unchanged when nothing sensible can be done.
    pub fn corrupt<R: Rng + ?Sized>(&self, s: &str, rng: &mut R) -> String {
        let Some(&kind) = self.kinds.choose(rng) else { return s.to_string() };
        apply_noise(s, kind, rng)
    }

    /// Applies `n` successive random corruptions.
    pub fn corrupt_n<R: Rng + ?Sized>(&self, s: &str, n: usize, rng: &mut R) -> String {
        let mut out = s.to_string();
        for _ in 0..n {
            out = self.corrupt(&out, rng);
        }
        out
    }
}

impl Default for NoiseInjector {
    fn default() -> Self {
        Self::all()
    }
}

/// Applies one specific noise family to `s`.
///
/// Returns `s` unchanged when the transformation cannot apply (e.g. dropping
/// a character from an empty string).
pub fn apply_noise<R: Rng + ?Sized>(s: &str, kind: NoiseKind, rng: &mut R) -> String {
    let chars: Vec<char> = s.chars().collect();
    match kind {
        NoiseKind::DropChar => {
            if chars.len() < 2 {
                return s.to_string();
            }
            let i = rng.gen_range(0..chars.len());
            let mut out = chars.clone();
            out.remove(i);
            out.into_iter().collect()
        }
        NoiseKind::InsertChar => {
            let i = rng.gen_range(0..=chars.len());
            let c = random_letter(rng);
            let mut out = chars.clone();
            out.insert(i, c);
            out.into_iter().collect()
        }
        NoiseKind::SubstituteChar => {
            if chars.is_empty() {
                return s.to_string();
            }
            let i = rng.gen_range(0..chars.len());
            let mut out = chars.clone();
            let mut c = random_letter(rng);
            // make sure the substitution actually changes the character
            for _ in 0..4 {
                if c != out[i] {
                    break;
                }
                c = random_letter(rng);
            }
            out[i] = c;
            out.into_iter().collect()
        }
        NoiseKind::TransposeChars => {
            if chars.len() < 2 {
                return s.to_string();
            }
            let i = rng.gen_range(0..chars.len() - 1);
            let mut out = chars.clone();
            out.swap(i, i + 1);
            out.into_iter().collect()
        }
        NoiseKind::DuplicateChar => {
            if chars.is_empty() {
                return s.to_string();
            }
            let i = rng.gen_range(0..chars.len());
            let mut out = chars.clone();
            out.insert(i, chars[i]);
            out.into_iter().collect()
        }
        NoiseKind::SwapTokens => {
            let mut tokens = words(s);
            if tokens.len() < 2 {
                return apply_noise(s, NoiseKind::SubstituteChar, rng);
            }
            let i = rng.gen_range(0..tokens.len());
            let mut j = rng.gen_range(0..tokens.len());
            if i == j {
                j = (j + 1) % tokens.len();
            }
            tokens.swap(i, j);
            tokens.join(" ")
        }
        NoiseKind::Abbreviate => match initialism(s) {
            Some(abbr) => abbr,
            None => apply_noise(s, NoiseKind::DropChar, rng),
        },
        NoiseKind::DropToken => {
            let mut tokens = words(s);
            if tokens.len() < 2 {
                return apply_noise(s, NoiseKind::DropChar, rng);
            }
            let i = rng.gen_range(0..tokens.len());
            tokens.remove(i);
            tokens.join(" ")
        }
    }
}

fn random_letter<R: Rng + ?Sized>(rng: &mut R) -> char {
    (b'a' + rng.gen_range(0..26u8)) as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn drop_char_shrinks_by_one() {
        let mut r = rng();
        let out = apply_noise("berlin", NoiseKind::DropChar, &mut r);
        assert_eq!(out.chars().count(), 5);
    }

    #[test]
    fn insert_char_grows_by_one() {
        let mut r = rng();
        let out = apply_noise("berlin", NoiseKind::InsertChar, &mut r);
        assert_eq!(out.chars().count(), 7);
    }

    #[test]
    fn transpose_keeps_multiset() {
        let mut r = rng();
        let out = apply_noise("berlin", NoiseKind::TransposeChars, &mut r);
        let mut a: Vec<char> = "berlin".chars().collect();
        let mut b: Vec<char> = out.chars().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn abbreviate_multiword() {
        let mut r = rng();
        let out = apply_noise("european union", NoiseKind::Abbreviate, &mut r);
        assert_eq!(out, "EU");
    }

    #[test]
    fn abbreviate_single_word_falls_back() {
        let mut r = rng();
        let out = apply_noise("germany", NoiseKind::Abbreviate, &mut r);
        assert_eq!(out.chars().count(), 6); // DropChar fallback
    }

    #[test]
    fn swap_tokens_reorders() {
        let mut r = rng();
        let out = apply_noise("bill gates", NoiseKind::SwapTokens, &mut r);
        assert_eq!(out, "gates bill");
    }

    #[test]
    fn drop_token_removes_one() {
        let mut r = rng();
        let out = apply_noise("federal republic of germany", NoiseKind::DropToken, &mut r);
        assert_eq!(out.split_whitespace().count(), 3);
    }

    #[test]
    fn empty_string_survives_everything() {
        let mut r = rng();
        for kind in NoiseKind::ALL {
            let out = apply_noise("", kind, &mut r);
            // insert may add one char; everything else must not panic
            assert!(out.chars().count() <= 1, "{kind:?} produced {out:?}");
        }
    }

    #[test]
    fn corrupt_usually_changes_string() {
        let mut r = rng();
        let injector = NoiseInjector::typos();
        let mut changed = 0;
        for _ in 0..50 {
            if injector.corrupt("germany", &mut r) != "germany" {
                changed += 1;
            }
        }
        assert!(changed > 40, "only {changed}/50 corruptions changed the string");
    }

    #[test]
    fn corrupt_n_applies_repeatedly() {
        let mut r = rng();
        let injector = NoiseInjector::typos();
        let out = injector.corrupt_n("germany", 3, &mut r);
        assert!(crate::distance::levenshtein("germany", &out) <= 3 + 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let injector = NoiseInjector::all();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        assert_eq!(
            injector.corrupt("knowledge graph", &mut r1),
            injector.corrupt("knowledge graph", &mut r2)
        );
    }
}
