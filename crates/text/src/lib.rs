//! # emblookup-text
//!
//! String machinery for the EmbLookup reproduction: the paper's one-hot
//! character encoding, the edit-distance family used by the baseline lookup
//! services, fastText-style subword extraction, and the noise-injection
//! error model of the evaluation section.

#![warn(missing_docs)]

pub mod alphabet;
pub mod distance;
pub mod noise;
pub mod tokenize;

pub use alphabet::{Alphabet, OneHotEncoder};
pub use noise::{apply_noise, NoiseInjector, NoiseKind};

// Property tests need the external `proptest` crate, unavailable in
// offline builds; enable with `--features proptest-tests` when vendored.
#[cfg(all(test, feature = "proptest-tests"))]
mod proptests {
    use crate::distance::*;
    use proptest::prelude::*;

    fn small_string() -> impl Strategy<Value = String> {
        proptest::string::string_regex("[a-z ]{0,12}").unwrap()
    }

    proptest! {
        #[test]
        fn levenshtein_symmetric(a in small_string(), b in small_string()) {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn levenshtein_identity(a in small_string()) {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn levenshtein_triangle(a in small_string(), b in small_string(), c in small_string()) {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc, "triangle violated: {} > {} + {}", ac, ab, bc);
        }

        #[test]
        fn levenshtein_length_lower_bound(a in small_string(), b in small_string()) {
            let d = levenshtein(&a, &b);
            prop_assert!(d >= a.chars().count().abs_diff(b.chars().count()));
        }

        #[test]
        fn damerau_never_exceeds_levenshtein(a in small_string(), b in small_string()) {
            prop_assert!(damerau_levenshtein(&a, &b) <= levenshtein(&a, &b));
        }

        #[test]
        fn bounded_agrees_with_exact(a in small_string(), b in small_string(), max in 0usize..6) {
            let exact = levenshtein(&a, &b);
            match levenshtein_bounded(&a, &b, max) {
                Some(d) => prop_assert_eq!(d, exact),
                None => prop_assert!(exact > max),
            }
        }

        #[test]
        fn jaccard_in_unit_interval(a in small_string(), b in small_string()) {
            let j = qgram_jaccard(&a, &b, 3);
            prop_assert!((0.0..=1.0).contains(&j));
        }

        #[test]
        fn jaro_winkler_in_unit_interval(a in small_string(), b in small_string()) {
            let j = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&j));
        }

        #[test]
        fn fuzz_ratio_at_most_100(a in small_string(), b in small_string()) {
            prop_assert!(fuzz_ratio(&a, &b) <= 100);
            prop_assert!(token_sort_ratio(&a, &b) <= 100);
            prop_assert!(token_set_ratio(&a, &b) <= 100);
        }
    }

    mod noise_props {
        use crate::distance::damerau_levenshtein;
        use crate::noise::{apply_noise, NoiseKind};
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        proptest! {
            #[test]
            fn single_typo_is_one_edit(
                s in proptest::string::string_regex("[a-z]{2,10}").unwrap(),
                seed in 0u64..1000,
                kind_idx in 0usize..NoiseKind::TYPOS.len(),
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let kind = NoiseKind::TYPOS[kind_idx];
                let noisy = apply_noise(&s, kind, &mut rng);
                prop_assert!(damerau_levenshtein(&s, &noisy) <= 1);
            }

            #[test]
            fn encoder_one_hot_columns(
                s in proptest::string::string_regex("[a-z0-9 ]{0,20}").unwrap(),
            ) {
                let enc = crate::OneHotEncoder::new(crate::Alphabet::default_lookup(), 16);
                let m = enc.encode(&s);
                let (rows, cols) = enc.shape();
                // every column has at most one 1, and the number of set
                // columns equals min(len, 16)
                let mut set_cols = 0;
                for j in 0..cols {
                    let ones: usize = (0..rows).map(|i| (m[i * cols + j] == 1.0) as usize).sum();
                    prop_assert!(ones <= 1);
                    set_cols += ones;
                }
                prop_assert_eq!(set_cols, s.chars().count().min(16));
            }
        }
    }
}

// Property tests need the external `proptest` crate, unavailable in
// offline builds; enable with `--features proptest-tests` when vendored.
#[cfg(all(test, feature = "proptest-tests"))]
mod tokenize_proptests {
    use crate::tokenize::{fasttext_ngrams, initialism, normalize, words};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn normalize_is_idempotent(s in ".{0,40}") {
            let once = normalize(&s);
            prop_assert_eq!(normalize(&once), once);
        }

        #[test]
        fn words_are_lowercase_alnum(s in ".{0,40}") {
            for w in words(&s) {
                prop_assert!(!w.is_empty());
                prop_assert!(w.chars().all(|c| c.is_alphanumeric()));
                prop_assert_eq!(w.to_ascii_lowercase(), w.clone());
            }
        }

        #[test]
        fn ngrams_never_empty_for_nonempty_token(t in "[a-z]{1,15}") {
            let g = fasttext_ngrams(&t, 3, 6);
            prop_assert!(!g.is_empty());
            // the wrapped whole token is always present
            let whole = format!("<{}>", t);
            prop_assert!(g.contains(&whole));
        }

        #[test]
        fn initialism_length_matches_token_count(s in "[a-z]{1,8}( [a-z]{1,8}){1,4}") {
            let tokens = words(&s).len();
            let init = initialism(&s).unwrap();
            prop_assert_eq!(init.chars().count(), tokens);
        }
    }
}
