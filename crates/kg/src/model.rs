//! In-memory knowledge graph: entities, types, properties and facts,
//! following the paper's formalization `⟨E, T, P, F⟩` (§II).

use std::collections::HashMap;

/// Identifier of an entity in `E` (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Identifier of a type in `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// Identifier of a property in `P`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropertyId(pub u32);

/// Object position of a fact: another entity or a literal string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Object {
    /// Entity-valued object.
    Entity(EntityId),
    /// Literal-valued object (numbers are stored as strings too).
    Literal(String),
}

/// A fact `⟨s, p, o⟩ ∈ F`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    /// Subject entity.
    pub subject: EntityId,
    /// Property.
    pub property: PropertyId,
    /// Object entity or literal.
    pub object: Object,
}

/// An entity with its primary label, aliases (`skos:altLabel` analogues)
/// and type memberships.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Dense identifier.
    pub id: EntityId,
    /// Primary label (`rdfs:label` analogue); embeddings are computed on it.
    pub label: String,
    /// Alternative labels: abbreviations, translations, historical names.
    pub aliases: Vec<String>,
    /// Types this entity belongs to.
    pub types: Vec<TypeId>,
}

/// The knowledge graph `⟨E, T, P, F⟩` with the lookup-oriented indexes the
/// reproduction needs: label → entities, type → entities, subject → facts.
#[derive(Debug, Default, Clone)]
pub struct KnowledgeGraph {
    entities: Vec<Entity>,
    type_names: Vec<String>,
    /// Parent type for each type (CTA's "most specific type" needs a
    /// hierarchy); roots point to themselves.
    type_parents: Vec<TypeId>,
    property_names: Vec<String>,
    facts: Vec<Fact>,
    // --- indexes ---
    label_index: HashMap<String, Vec<EntityId>>,
    type_index: HashMap<TypeId, Vec<EntityId>>,
    subject_index: HashMap<EntityId, Vec<usize>>,
    object_index: HashMap<EntityId, Vec<usize>>,
}

impl KnowledgeGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a type under `name` with an optional parent; returns its id.
    pub fn add_type(&mut self, name: impl Into<String>, parent: Option<TypeId>) -> TypeId {
        let id = TypeId(self.type_names.len() as u32);
        self.type_names.push(name.into());
        self.type_parents.push(parent.unwrap_or(id));
        id
    }

    /// Registers a property under `name`; returns its id.
    pub fn add_property(&mut self, name: impl Into<String>) -> PropertyId {
        let id = PropertyId(self.property_names.len() as u32);
        self.property_names.push(name.into());
        id
    }

    /// Adds an entity with its label, aliases and types; returns its id.
    pub fn add_entity(
        &mut self,
        label: impl Into<String>,
        aliases: Vec<String>,
        types: Vec<TypeId>,
    ) -> EntityId {
        let id = EntityId(self.entities.len() as u32);
        let label = label.into();
        self.label_index
            .entry(normalize_key(&label))
            .or_default()
            .push(id);
        for alias in &aliases {
            self.label_index
                .entry(normalize_key(alias))
                .or_default()
                .push(id);
        }
        for &t in &types {
            self.type_index.entry(t).or_default().push(id);
        }
        self.entities.push(Entity { id, label, aliases, types });
        id
    }

    /// Adds a fact to `F`, updating the subject/object indexes.
    ///
    /// # Panics
    /// Panics if the subject (or entity object) id is out of range.
    pub fn add_fact(&mut self, subject: EntityId, property: PropertyId, object: Object) {
        assert!(
            (subject.0 as usize) < self.entities.len(),
            "fact subject {subject:?} out of range"
        );
        let idx = self.facts.len();
        self.subject_index.entry(subject).or_default().push(idx);
        if let Object::Entity(o) = object {
            assert!(
                (o.0 as usize) < self.entities.len(),
                "fact object {o:?} out of range"
            );
            self.object_index.entry(o).or_default().push(idx);
        }
        self.facts.push(Fact { subject, property, object });
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of types.
    pub fn num_types(&self) -> usize {
        self.type_names.len()
    }

    /// Number of properties.
    pub fn num_properties(&self) -> usize {
        self.property_names.len()
    }

    /// Number of facts.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// Borrows an entity.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn entity(&self, id: EntityId) -> &Entity {
        &self.entities[id.0 as usize]
    }

    /// Primary label of an entity.
    pub fn label(&self, id: EntityId) -> &str {
        &self.entity(id).label
    }

    /// Aliases of an entity.
    pub fn aliases(&self, id: EntityId) -> &[String] {
        &self.entity(id).aliases
    }

    /// Iterates over all entities in id order.
    pub fn entities(&self) -> impl Iterator<Item = &Entity> {
        self.entities.iter()
    }

    /// Type name for a type id.
    pub fn type_name(&self, id: TypeId) -> &str {
        &self.type_names[id.0 as usize]
    }

    /// Parent of a type (roots return themselves).
    pub fn type_parent(&self, id: TypeId) -> TypeId {
        self.type_parents[id.0 as usize]
    }

    /// Rewrites a type's parent (used by deserialization, which cannot
    /// forward-reference parents during construction).
    ///
    /// # Panics
    /// Panics if either id is out of range.
    pub fn set_type_parent(&mut self, id: TypeId, parent: TypeId) {
        assert!((parent.0 as usize) < self.type_parents.len(), "parent out of range");
        self.type_parents[id.0 as usize] = parent;
    }

    /// True when `ancestor` is `t` or a transitive parent of `t`.
    pub fn type_is_a(&self, t: TypeId, ancestor: TypeId) -> bool {
        let mut cur = t;
        loop {
            if cur == ancestor {
                return true;
            }
            let p = self.type_parent(cur);
            if p == cur {
                return false;
            }
            cur = p;
        }
    }

    /// Property name for a property id.
    pub fn property_name(&self, id: PropertyId) -> &str {
        &self.property_names[id.0 as usize]
    }

    /// Entities whose label or alias exactly matches `mention`
    /// (case/whitespace normalized). Empty when unknown.
    pub fn find_exact(&self, mention: &str) -> &[EntityId] {
        self.label_index
            .get(&normalize_key(mention))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All entities of a type (direct membership, not transitive).
    pub fn entities_of_type(&self, t: TypeId) -> &[EntityId] {
        self.type_index.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Facts with `id` in subject position.
    pub fn facts_of(&self, id: EntityId) -> impl Iterator<Item = &Fact> {
        self.subject_index
            .get(&id)
            .into_iter()
            .flatten()
            .map(move |&i| &self.facts[i])
    }

    /// Facts with `id` in object position.
    pub fn facts_about(&self, id: EntityId) -> impl Iterator<Item = &Fact> {
        self.object_index
            .get(&id)
            .into_iter()
            .flatten()
            .map(move |&i| &self.facts[i])
    }

    /// Entity neighbours through any property, in both directions.
    pub fn neighbors(&self, id: EntityId) -> Vec<EntityId> {
        let mut out = Vec::new();
        for f in self.facts_of(id) {
            if let Object::Entity(o) = f.object {
                out.push(o);
            }
        }
        for f in self.facts_about(id) {
            out.push(f.subject);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True when a fact `⟨a, p, b⟩` exists for any `p`.
    pub fn connected(&self, a: EntityId, b: EntityId) -> bool {
        self.facts_of(a)
            .any(|f| matches!(f.object, Object::Entity(o) if o == b))
    }

    /// All facts, in insertion order.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }
}

/// Normalization applied to labels before exact-match indexing.
fn normalize_key(s: &str) -> String {
    emblookup_text::tokenize::normalize(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kg() -> (KnowledgeGraph, EntityId, EntityId, EntityId) {
        let mut kg = KnowledgeGraph::new();
        let place = kg.add_type("place", None);
        let country = kg.add_type("country", Some(place));
        let city = kg.add_type("city", Some(place));
        let capital_of = kg.add_property("capital of");
        let germany = kg.add_entity(
            "Germany",
            vec!["Deutschland".into(), "FRG".into()],
            vec![country],
        );
        let berlin = kg.add_entity("Berlin", vec![], vec![city]);
        let paris = kg.add_entity("Paris", vec![], vec![city]);
        kg.add_fact(berlin, capital_of, Object::Entity(germany));
        (kg, germany, berlin, paris)
    }

    #[test]
    fn exact_lookup_by_label_and_alias() {
        let (kg, germany, ..) = tiny_kg();
        assert_eq!(kg.find_exact("Germany"), &[germany]);
        assert_eq!(kg.find_exact("germany"), &[germany]); // case folded
        assert_eq!(kg.find_exact("Deutschland"), &[germany]); // alias
        assert!(kg.find_exact("Atlantis").is_empty());
    }

    #[test]
    fn type_hierarchy() {
        let (kg, germany, ..) = tiny_kg();
        let country = kg.entity(germany).types[0];
        let place = kg.type_parent(country);
        assert!(kg.type_is_a(country, place));
        assert!(!kg.type_is_a(place, country));
        assert_eq!(kg.type_name(country), "country");
    }

    #[test]
    fn facts_and_neighbors() {
        let (kg, germany, berlin, paris) = tiny_kg();
        assert!(kg.connected(berlin, germany));
        assert!(!kg.connected(paris, germany));
        assert_eq!(kg.neighbors(germany), vec![berlin]);
        assert_eq!(kg.neighbors(berlin), vec![germany]);
        assert_eq!(kg.facts_of(berlin).count(), 1);
        assert_eq!(kg.facts_about(germany).count(), 1);
    }

    #[test]
    fn entities_of_type_lists_members() {
        let (kg, _, berlin, paris) = tiny_kg();
        let city = kg.entity(berlin).types[0];
        assert_eq!(kg.entities_of_type(city), &[berlin, paris]);
    }

    #[test]
    fn ambiguous_labels_map_to_all_owners() {
        let mut kg = KnowledgeGraph::new();
        let city = kg.add_type("city", None);
        let b1 = kg.add_entity("Berlin", vec![], vec![city]);
        let b2 = kg.add_entity("Berlin", vec![], vec![city]); // Berlin, USA
        assert_eq!(kg.find_exact("berlin"), &[b1, b2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fact_with_bad_subject_panics() {
        let mut kg = KnowledgeGraph::new();
        let p = kg.add_property("p");
        kg.add_fact(EntityId(9), p, Object::Literal("x".into()));
    }

    #[test]
    fn counts() {
        let (kg, ..) = tiny_kg();
        assert_eq!(kg.num_entities(), 3);
        assert_eq!(kg.num_types(), 3);
        assert_eq!(kg.num_properties(), 1);
        assert_eq!(kg.num_facts(), 1);
    }
}
