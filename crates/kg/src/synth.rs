//! Synthetic knowledge-graph builders standing in for Wikidata and DBPedia.
//!
//! The generated graphs have the structural properties EmbLookup exploits:
//! typed entities with a primary label and several aliases from realistic
//! alias families, facts connecting related entities, and a configurable
//! share of deliberately ambiguous labels (multiple cities named "Berlin").

use crate::aliases::generate_aliases;
use crate::model::{EntityId, KnowledgeGraph, Object, PropertyId, TypeId};
use crate::names::{NameForge, NameKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Which real KG the synthetic graph imitates. The flavors differ in alias
/// richness and label style, mirroring that Wikidata has denser alias
/// coverage than DBPedia.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KgFlavor {
    /// Wikidata-like: more aliases per entity.
    Wikidata,
    /// DBPedia-like: fewer aliases, longer formal labels.
    DbPedia,
}

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct SynthKgConfig {
    /// RNG seed; equal seeds give byte-identical graphs.
    pub seed: u64,
    /// Flavor to imitate.
    pub flavor: KgFlavor,
    /// Number of country entities.
    pub countries: usize,
    /// Number of city entities.
    pub cities: usize,
    /// Number of person entities.
    pub persons: usize,
    /// Number of organization entities.
    pub organizations: usize,
    /// Number of film entities.
    pub films: usize,
    /// Fraction of cities that reuse an existing city label (ambiguity).
    pub ambiguity_rate: f64,
    /// Mean number of aliases per entity (sampled 1..=2*mean-1).
    pub mean_aliases: usize,
}

impl SynthKgConfig {
    /// Tiny graph for unit tests (≈60 entities).
    pub fn tiny(seed: u64) -> Self {
        SynthKgConfig {
            seed,
            flavor: KgFlavor::Wikidata,
            countries: 5,
            cities: 20,
            persons: 20,
            organizations: 10,
            films: 5,
            ambiguity_rate: 0.05,
            mean_aliases: 3,
        }
    }

    /// Small graph for integration tests (≈600 entities).
    pub fn small(seed: u64) -> Self {
        SynthKgConfig {
            seed,
            flavor: KgFlavor::Wikidata,
            countries: 20,
            cities: 200,
            persons: 250,
            organizations: 80,
            films: 50,
            ambiguity_rate: 0.05,
            mean_aliases: 3,
        }
    }

    /// Benchmark-scale graph (≈4K entities), the default for the
    /// experiment harness.
    pub fn benchmark(seed: u64, flavor: KgFlavor) -> Self {
        SynthKgConfig {
            seed,
            flavor,
            countries: 60,
            cities: 1400,
            persons: 1400,
            organizations: 600,
            films: 400,
            ambiguity_rate: 0.04,
            mean_aliases: if matches!(flavor, KgFlavor::Wikidata) { 4 } else { 3 },
        }
    }

    /// Total entity count of the configuration.
    pub fn total_entities(&self) -> usize {
        self.countries + self.cities + self.persons + self.organizations + self.films
    }
}

/// Well-known type ids of a generated graph, in registration order.
#[derive(Debug, Clone, Copy)]
pub struct SynthTypes {
    /// Root type of places.
    pub place: TypeId,
    /// Country type (child of place).
    pub country: TypeId,
    /// City type (child of place).
    pub city: TypeId,
    /// Root type of agents.
    pub agent: TypeId,
    /// Person type (child of agent).
    pub person: TypeId,
    /// Organization type (child of agent).
    pub organization: TypeId,
    /// Creative-work type.
    pub work: TypeId,
    /// Film type (child of work).
    pub film: TypeId,
}

/// Well-known property ids of a generated graph.
#[derive(Debug, Clone, Copy)]
pub struct SynthProps {
    /// city → country
    pub capital_of: PropertyId,
    /// city → country
    pub located_in: PropertyId,
    /// person → country
    pub citizen_of: PropertyId,
    /// person → city
    pub born_in: PropertyId,
    /// person → organization
    pub works_for: PropertyId,
    /// organization → city
    pub headquartered_in: PropertyId,
    /// film → person
    pub directed_by: PropertyId,
    /// film → city
    pub set_in: PropertyId,
    /// any → literal year
    pub inception: PropertyId,
}

/// A generated graph together with its category bookkeeping, which the
/// table generators downstream use for ground truth.
pub struct SynthKg {
    /// The knowledge graph.
    pub kg: KnowledgeGraph,
    /// Type handles.
    pub types: SynthTypes,
    /// Property handles.
    pub props: SynthProps,
    /// Entities by category, in generation order.
    pub countries: Vec<EntityId>,
    /// City entities.
    pub cities: Vec<EntityId>,
    /// Person entities.
    pub persons: Vec<EntityId>,
    /// Organization entities.
    pub organizations: Vec<EntityId>,
    /// Film entities.
    pub films: Vec<EntityId>,
    /// Configuration used.
    pub config: SynthKgConfig,
}

impl SynthKg {
    /// Category ([`NameKind`]) of an entity, derived from its first type.
    pub fn kind_of(&self, id: EntityId) -> NameKind {
        let t = self.kg.entity(id).types[0];
        if t == self.types.country {
            NameKind::Country
        } else if t == self.types.city {
            NameKind::City
        } else if t == self.types.person {
            NameKind::Person
        } else if t == self.types.organization {
            NameKind::Organization
        } else {
            NameKind::Film
        }
    }
}

/// Generates a synthetic knowledge graph from the configuration.
///
/// Determinism: the same config yields the same graph, entity by entity.
///
/// ```
/// use emblookup_kg::{generate, SynthKgConfig};
/// let synth = generate(SynthKgConfig::tiny(42));
/// assert_eq!(synth.kg.num_entities(), SynthKgConfig::tiny(42).total_entities());
/// let entity = synth.kg.entities().next().unwrap();
/// assert!(!entity.aliases.is_empty());
/// ```
pub fn generate(config: SynthKgConfig) -> SynthKg {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut forge = NameForge::new();
    let mut kg = KnowledgeGraph::new();

    let place = kg.add_type("place", None);
    let country = kg.add_type("country", Some(place));
    let city = kg.add_type("city", Some(place));
    let agent = kg.add_type("agent", None);
    let person = kg.add_type("person", Some(agent));
    let organization = kg.add_type("organization", Some(agent));
    let work = kg.add_type("creative work", None);
    let film = kg.add_type("film", Some(work));
    let types = SynthTypes {
        place,
        country,
        city,
        agent,
        person,
        organization,
        work,
        film,
    };

    let props = SynthProps {
        capital_of: kg.add_property("capital of"),
        located_in: kg.add_property("located in"),
        citizen_of: kg.add_property("citizen of"),
        born_in: kg.add_property("born in"),
        works_for: kg.add_property("works for"),
        headquartered_in: kg.add_property("headquartered in"),
        directed_by: kg.add_property("directed by"),
        set_in: kg.add_property("set in"),
        inception: kg.add_property("inception"),
    };

    let alias_budget = |rng: &mut StdRng, cfg: &SynthKgConfig| -> usize {
        if cfg.mean_aliases == 0 {
            0
        } else {
            rng.gen_range(1..=2 * cfg.mean_aliases - 1)
        }
    };

    let add_entities = |kg: &mut KnowledgeGraph,
                            rng: &mut StdRng,
                            forge: &mut NameForge,
                            kind: NameKind,
                            type_id: TypeId,
                            count: usize,
                            ambiguous: bool|
     -> Vec<EntityId> {
        let mut out = Vec::with_capacity(count);
        let mut labels: Vec<String> = Vec::new();
        for i in 0..count {
            let label = if ambiguous
                && i > 10
                && rng.gen_bool(config.ambiguity_rate)
            {
                labels.choose(rng).cloned().unwrap_or_else(|| forge.next(kind, rng))
            } else {
                forge.next(kind, rng)
            };
            let budget = alias_budget(rng, &config);
            let aliases = generate_aliases(&label, kind, budget, forge, rng);
            labels.push(label.clone());
            out.push(kg.add_entity(label, aliases, vec![type_id]));
        }
        out
    };

    let countries = add_entities(
        &mut kg, &mut rng, &mut forge, NameKind::Country, country, config.countries, false,
    );
    let cities = add_entities(
        &mut kg, &mut rng, &mut forge, NameKind::City, city, config.cities, true,
    );
    let persons = add_entities(
        &mut kg, &mut rng, &mut forge, NameKind::Person, person, config.persons, false,
    );
    let organizations = add_entities(
        &mut kg, &mut rng, &mut forge, NameKind::Organization, organization,
        config.organizations, false,
    );
    let films = add_entities(
        &mut kg, &mut rng, &mut forge, NameKind::Film, film, config.films, false,
    );

    // --- facts ---
    if !countries.is_empty() {
        for (i, &c) in cities.iter().enumerate() {
            let home = countries[rng.gen_range(0..countries.len())];
            kg.add_fact(c, props.located_in, Object::Entity(home));
            // one capital per country: the first city assigned to it
            if i < countries.len() {
                kg.add_fact(c, props.capital_of, Object::Entity(countries[i]));
            }
        }
    }
    for &p in &persons {
        if !countries.is_empty() {
            let home = countries[rng.gen_range(0..countries.len())];
            kg.add_fact(p, props.citizen_of, Object::Entity(home));
        }
        if !cities.is_empty() {
            let birth = cities[rng.gen_range(0..cities.len())];
            kg.add_fact(p, props.born_in, Object::Entity(birth));
        }
        if !organizations.is_empty() && rng.gen_bool(0.7) {
            let employer = organizations[rng.gen_range(0..organizations.len())];
            kg.add_fact(p, props.works_for, Object::Entity(employer));
        }
    }
    for &o in &organizations {
        if !cities.is_empty() {
            let hq = cities[rng.gen_range(0..cities.len())];
            kg.add_fact(o, props.headquartered_in, Object::Entity(hq));
        }
        let year = rng.gen_range(1850..2020);
        kg.add_fact(o, props.inception, Object::Literal(year.to_string()));
    }
    for &f in &films {
        if !persons.is_empty() {
            let director = persons[rng.gen_range(0..persons.len())];
            kg.add_fact(f, props.directed_by, Object::Entity(director));
        }
        if !cities.is_empty() && rng.gen_bool(0.5) {
            let loc = cities[rng.gen_range(0..cities.len())];
            kg.add_fact(f, props.set_in, Object::Entity(loc));
        }
        let year = rng.gen_range(1930..2022);
        kg.add_fact(f, props.inception, Object::Literal(year.to_string()));
    }

    SynthKg {
        kg,
        types,
        props,
        countries,
        cities,
        persons,
        organizations,
        films,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(SynthKgConfig::tiny(9));
        let b = generate(SynthKgConfig::tiny(9));
        assert_eq!(a.kg.num_entities(), b.kg.num_entities());
        for (ea, eb) in a.kg.entities().zip(b.kg.entities()) {
            assert_eq!(ea.label, eb.label);
            assert_eq!(ea.aliases, eb.aliases);
        }
    }

    #[test]
    fn entity_counts_match_config() {
        let cfg = SynthKgConfig::tiny(1);
        let total = cfg.total_entities();
        let s = generate(cfg);
        assert_eq!(s.kg.num_entities(), total);
        assert_eq!(s.countries.len(), 5);
        assert_eq!(s.cities.len(), 20);
    }

    #[test]
    fn every_entity_has_aliases() {
        let s = generate(SynthKgConfig::tiny(2));
        for e in s.kg.entities() {
            assert!(!e.aliases.is_empty(), "{} has no aliases", e.label);
            assert!(e.aliases.iter().all(|a| a != &e.label));
        }
    }

    #[test]
    fn cities_are_located_somewhere() {
        let s = generate(SynthKgConfig::tiny(3));
        for &c in &s.cities {
            let located = s
                .kg
                .facts_of(c)
                .any(|f| f.property == s.props.located_in);
            assert!(located, "{} has no located_in fact", s.kg.label(c));
        }
    }

    #[test]
    fn type_hierarchy_reaches_roots() {
        let s = generate(SynthKgConfig::tiny(4));
        assert!(s.kg.type_is_a(s.types.city, s.types.place));
        assert!(s.kg.type_is_a(s.types.person, s.types.agent));
        assert!(!s.kg.type_is_a(s.types.city, s.types.agent));
    }

    #[test]
    fn ambiguity_produces_shared_labels() {
        let mut cfg = SynthKgConfig::small(5);
        cfg.ambiguity_rate = 0.3;
        let s = generate(cfg);
        let mut any_shared = false;
        for &c in &s.cities {
            if s.kg.find_exact(s.kg.label(c)).len() > 1 {
                any_shared = true;
                break;
            }
        }
        assert!(any_shared, "no shared city labels at 30% ambiguity");
    }

    #[test]
    fn kind_of_matches_category() {
        let s = generate(SynthKgConfig::tiny(6));
        assert_eq!(s.kind_of(s.countries[0]), NameKind::Country);
        assert_eq!(s.kind_of(s.persons[0]), NameKind::Person);
        assert_eq!(s.kind_of(s.films[0]), NameKind::Film);
    }

    #[test]
    fn benchmark_config_scales() {
        let cfg = SynthKgConfig::benchmark(7, KgFlavor::DbPedia);
        assert!(cfg.total_entities() > 3000);
        assert_eq!(cfg.mean_aliases, 3);
        let w = SynthKgConfig::benchmark(7, KgFlavor::Wikidata);
        assert_eq!(w.mean_aliases, 4);
    }
}
