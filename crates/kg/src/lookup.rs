//! The lookup-service interface of the paper (§II): `lookup(q, k)` returns
//! a candidate set of entities for an entity mention.
//!
//! Both EmbLookup and every baseline implement this trait, so annotation
//! systems can swap lookup implementations transparently — the paper's
//! central experimental manipulation.

use crate::model::EntityId;
use std::time::{Duration, Instant};

/// A candidate entity with its service-specific relevance score.
/// Higher scores are better; services normalize internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Matched entity.
    pub entity: EntityId,
    /// Relevance score (service-specific scale, higher = more relevant).
    pub score: f32,
}

/// `lookup(q, k)` — the fundamental operation underpinning semantic table
/// annotation (paper §II).
pub trait LookupService: Sync {
    /// Returns up to `k` candidate entities for mention `q`, best first.
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate>;

    /// Human-readable service name for reports.
    fn name(&self) -> &str;

    /// Like [`LookupService::lookup`] but also reports the time charged to
    /// the query. Local services report measured wall time; simulated
    /// remote services add their modeled network latency, which is how the
    /// speedup tables account for rate-limited endpoints without real
    /// network traffic.
    fn lookup_timed(&self, q: &str, k: usize) -> (Vec<Candidate>, Duration) {
        let start = Instant::now();
        let out = self.lookup(q, k);
        (out, start.elapsed())
    }

    /// Bulk lookup of many mentions; the default loops sequentially.
    /// Services with a fast batched path (EmbLookup) override this.
    fn lookup_batch(&self, queries: &[&str], k: usize) -> Vec<Vec<Candidate>> {
        queries.iter().map(|q| self.lookup(q, k)).collect()
    }

    /// Total time charged for a bulk lookup (measured + simulated).
    fn lookup_batch_timed(&self, queries: &[&str], k: usize) -> (Vec<Vec<Candidate>>, Duration) {
        let mut total = Duration::ZERO;
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            let (hits, t) = self.lookup_timed(q, k);
            total += t;
            out.push(hits);
        }
        (out, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::KnowledgeGraph;

    /// Exact-match toy service for trait default testing.
    struct Exact<'a>(&'a KnowledgeGraph);

    impl LookupService for Exact<'_> {
        fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
            self.0
                .find_exact(q)
                .iter()
                .take(k)
                .map(|&entity| Candidate { entity, score: 1.0 })
                .collect()
        }
        fn name(&self) -> &str {
            "exact"
        }
    }

    #[test]
    fn defaults_work() {
        let mut kg = KnowledgeGraph::new();
        let t = kg.add_type("t", None);
        let id = kg.add_entity("Berlin", vec![], vec![t]);
        let svc = Exact(&kg);
        let (hits, d) = svc.lookup_timed("berlin", 5);
        assert_eq!(hits[0].entity, id);
        assert!(d < Duration::from_secs(1));

        let (batch, total) = svc.lookup_batch_timed(&["berlin", "nope"], 3);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].len(), 1);
        assert!(batch[1].is_empty());
        assert!(total < Duration::from_secs(1));
    }
}
