//! Compact binary persistence for [`KnowledgeGraph`].
//!
//! Length-prefixed little-endian encoding over plain `Vec<u8>`/`&[u8]`
//! (no external buffer crates). The indexes (label/type/subject/object)
//! are rebuilt on load rather than stored, so the format contains only
//! the canonical data.

use crate::model::{EntityId, KnowledgeGraph, Object, PropertyId, TypeId};

/// Format magic + version, bumped on breaking changes.
const MAGIC: &[u8; 8] = b"EMBLKG01";

fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32_le(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked little-endian reader over a borrowed byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err("truncated KG buffer".into());
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn get_u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn get_u32_le(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_str(&mut self) -> Result<String, String> {
        if self.remaining() < 4 {
            return Err("truncated string length".into());
        }
        let len = self.get_u32_le()? as usize;
        if self.remaining() < len {
            return Err(format!("truncated string body ({len} bytes)"));
        }
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|e| format!("invalid utf8: {e}"))
    }
}

/// Serializes a knowledge graph to bytes.
pub fn kg_to_bytes(kg: &KnowledgeGraph) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);

    put_u32_le(&mut buf, kg.num_types() as u32);
    for t in 0..kg.num_types() as u32 {
        put_str(&mut buf, kg.type_name(TypeId(t)));
        put_u32_le(&mut buf, kg.type_parent(TypeId(t)).0);
    }

    put_u32_le(&mut buf, kg.num_properties() as u32);
    for p in 0..kg.num_properties() as u32 {
        put_str(&mut buf, kg.property_name(PropertyId(p)));
    }

    put_u32_le(&mut buf, kg.num_entities() as u32);
    for e in kg.entities() {
        put_str(&mut buf, &e.label);
        put_u32_le(&mut buf, e.aliases.len() as u32);
        for a in &e.aliases {
            put_str(&mut buf, a);
        }
        put_u32_le(&mut buf, e.types.len() as u32);
        for t in &e.types {
            put_u32_le(&mut buf, t.0);
        }
    }

    put_u32_le(&mut buf, kg.num_facts() as u32);
    for f in kg.facts() {
        put_u32_le(&mut buf, f.subject.0);
        put_u32_le(&mut buf, f.property.0);
        match &f.object {
            Object::Entity(o) => {
                buf.push(0);
                put_u32_le(&mut buf, o.0);
            }
            Object::Literal(s) => {
                buf.push(1);
                put_str(&mut buf, s);
            }
        }
    }
    buf
}

/// Restores a knowledge graph serialized with [`kg_to_bytes`], rebuilding
/// all lookup indexes.
///
/// # Errors
/// Returns a description of the first structural problem (bad magic,
/// truncation, dangling ids).
pub fn kg_from_bytes(bytes: &[u8]) -> Result<KnowledgeGraph, String> {
    let mut buf = Reader::new(bytes);
    if buf.remaining() < MAGIC.len() || buf.take(MAGIC.len())? != MAGIC {
        return Err("bad magic: not an EmbLookup KG file".into());
    }

    let mut kg = KnowledgeGraph::new();
    let n_types = buf.get_u32_le()? as usize;
    let mut parents = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        let name = buf.get_str()?;
        parents.push(buf.get_u32_le()?);
        kg.add_type(name, None);
    }
    // fix parents in a second pass (add_type can't forward-reference)
    for (i, &p) in parents.iter().enumerate() {
        if p as usize >= n_types {
            return Err(format!("type {i} has dangling parent {p}"));
        }
        kg.set_type_parent(TypeId(i as u32), TypeId(p));
    }

    let n_props = buf.get_u32_le()? as usize;
    for _ in 0..n_props {
        let name = buf.get_str()?;
        kg.add_property(name);
    }

    let n_entities = buf.get_u32_le()? as usize;
    for _ in 0..n_entities {
        let label = buf.get_str()?;
        let n_aliases = buf.get_u32_le()? as usize;
        let mut aliases = Vec::with_capacity(n_aliases);
        for _ in 0..n_aliases {
            aliases.push(buf.get_str()?);
        }
        let n_t = buf.get_u32_le()? as usize;
        let mut types = Vec::with_capacity(n_t);
        for _ in 0..n_t {
            let t = buf.get_u32_le()?;
            if t as usize >= n_types {
                return Err(format!("entity {label:?} has dangling type {t}"));
            }
            types.push(TypeId(t));
        }
        kg.add_entity(label, aliases, types);
    }

    let n_facts = buf.get_u32_le()? as usize;
    for _ in 0..n_facts {
        let subject = buf.get_u32_le()?;
        let property = buf.get_u32_le()?;
        if subject as usize >= n_entities {
            return Err(format!("fact has dangling subject {subject}"));
        }
        if property as usize >= n_props {
            return Err(format!("fact has dangling property {property}"));
        }
        let tag = buf.get_u8()?;
        let object = match tag {
            0 => {
                let o = buf.get_u32_le()?;
                if o as usize >= n_entities {
                    return Err(format!("fact has dangling object {o}"));
                }
                Object::Entity(EntityId(o))
            }
            1 => Object::Literal(buf.get_str()?),
            other => return Err(format!("unknown object tag {other}")),
        };
        kg.add_fact(EntityId(subject), PropertyId(property), object);
    }
    Ok(kg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthKgConfig};

    #[test]
    fn round_trip_preserves_everything() {
        let original = generate(SynthKgConfig::tiny(77)).kg;
        let bytes = kg_to_bytes(&original);
        let restored = kg_from_bytes(&bytes).unwrap();

        assert_eq!(original.num_entities(), restored.num_entities());
        assert_eq!(original.num_types(), restored.num_types());
        assert_eq!(original.num_properties(), restored.num_properties());
        assert_eq!(original.num_facts(), restored.num_facts());
        for (a, b) in original.entities().zip(restored.entities()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.aliases, b.aliases);
            assert_eq!(a.types, b.types);
        }
        // indexes were rebuilt: exact lookup still works
        let e = original.entities().nth(5).unwrap();
        assert_eq!(restored.find_exact(&e.label), original.find_exact(&e.label));
        // type hierarchy preserved
        for t in 0..original.num_types() as u32 {
            assert_eq!(
                original.type_parent(TypeId(t)),
                restored.type_parent(TypeId(t))
            );
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(kg_from_bytes(b"not a kg").is_err());
        let good = kg_to_bytes(&generate(SynthKgConfig::tiny(1)).kg);
        assert!(kg_from_bytes(&good[..good.len() / 2]).is_err());
    }

    #[test]
    fn empty_graph_round_trips() {
        let kg = KnowledgeGraph::new();
        let restored = kg_from_bytes(&kg_to_bytes(&kg)).unwrap();
        assert_eq!(restored.num_entities(), 0);
    }
}
