//! Compact binary persistence for [`KnowledgeGraph`].
//!
//! Length-prefixed little-endian encoding built on the `bytes` crate. The
//! indexes (label/type/subject/object) are rebuilt on load rather than
//! stored, so the format contains only the canonical data.

use crate::model::{EntityId, KnowledgeGraph, Object, PropertyId, TypeId};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Format magic + version, bumped on breaking changes.
const MAGIC: &[u8; 8] = b"EMBLKG01";

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, String> {
    if buf.remaining() < 4 {
        return Err("truncated string length".into());
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(format!("truncated string body ({len} bytes)"));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|e| format!("invalid utf8: {e}"))
}

/// Serializes a knowledge graph to bytes.
pub fn kg_to_bytes(kg: &KnowledgeGraph) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);

    buf.put_u32_le(kg.num_types() as u32);
    for t in 0..kg.num_types() as u32 {
        put_str(&mut buf, kg.type_name(TypeId(t)));
        buf.put_u32_le(kg.type_parent(TypeId(t)).0);
    }

    buf.put_u32_le(kg.num_properties() as u32);
    for p in 0..kg.num_properties() as u32 {
        put_str(&mut buf, kg.property_name(PropertyId(p)));
    }

    buf.put_u32_le(kg.num_entities() as u32);
    for e in kg.entities() {
        put_str(&mut buf, &e.label);
        buf.put_u32_le(e.aliases.len() as u32);
        for a in &e.aliases {
            put_str(&mut buf, a);
        }
        buf.put_u32_le(e.types.len() as u32);
        for t in &e.types {
            buf.put_u32_le(t.0);
        }
    }

    buf.put_u32_le(kg.num_facts() as u32);
    for f in kg.facts() {
        buf.put_u32_le(f.subject.0);
        buf.put_u32_le(f.property.0);
        match &f.object {
            Object::Entity(o) => {
                buf.put_u8(0);
                buf.put_u32_le(o.0);
            }
            Object::Literal(s) => {
                buf.put_u8(1);
                put_str(&mut buf, s);
            }
        }
    }
    buf.to_vec()
}

/// Restores a knowledge graph serialized with [`kg_to_bytes`], rebuilding
/// all lookup indexes.
///
/// # Errors
/// Returns a description of the first structural problem (bad magic,
/// truncation, dangling ids).
pub fn kg_from_bytes(bytes: &[u8]) -> Result<KnowledgeGraph, String> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < MAGIC.len() || &buf.copy_to_bytes(MAGIC.len())[..] != MAGIC {
        return Err("bad magic: not an EmbLookup KG file".into());
    }
    let need = |buf: &Bytes, n: usize| -> Result<(), String> {
        if buf.remaining() < n {
            Err("truncated KG buffer".into())
        } else {
            Ok(())
        }
    };

    let mut kg = KnowledgeGraph::new();
    need(&buf, 4)?;
    let n_types = buf.get_u32_le() as usize;
    let mut parents = Vec::with_capacity(n_types);
    for _ in 0..n_types {
        let name = get_str(&mut buf)?;
        need(&buf, 4)?;
        parents.push(buf.get_u32_le());
        kg.add_type(name, None);
    }
    // fix parents in a second pass (add_type can't forward-reference)
    for (i, &p) in parents.iter().enumerate() {
        if p as usize >= n_types {
            return Err(format!("type {i} has dangling parent {p}"));
        }
        kg.set_type_parent(TypeId(i as u32), TypeId(p));
    }

    need(&buf, 4)?;
    let n_props = buf.get_u32_le() as usize;
    for _ in 0..n_props {
        let name = get_str(&mut buf)?;
        kg.add_property(name);
    }

    need(&buf, 4)?;
    let n_entities = buf.get_u32_le() as usize;
    for _ in 0..n_entities {
        let label = get_str(&mut buf)?;
        need(&buf, 4)?;
        let n_aliases = buf.get_u32_le() as usize;
        let mut aliases = Vec::with_capacity(n_aliases);
        for _ in 0..n_aliases {
            aliases.push(get_str(&mut buf)?);
        }
        need(&buf, 4)?;
        let n_t = buf.get_u32_le() as usize;
        let mut types = Vec::with_capacity(n_t);
        for _ in 0..n_t {
            need(&buf, 4)?;
            let t = buf.get_u32_le();
            if t as usize >= n_types {
                return Err(format!("entity {label:?} has dangling type {t}"));
            }
            types.push(TypeId(t));
        }
        kg.add_entity(label, aliases, types);
    }

    need(&buf, 4)?;
    let n_facts = buf.get_u32_le() as usize;
    for _ in 0..n_facts {
        need(&buf, 9)?;
        let subject = buf.get_u32_le();
        let property = buf.get_u32_le();
        if subject as usize >= n_entities {
            return Err(format!("fact has dangling subject {subject}"));
        }
        if property as usize >= n_props {
            return Err(format!("fact has dangling property {property}"));
        }
        let tag = buf.get_u8();
        let object = match tag {
            0 => {
                need(&buf, 4)?;
                let o = buf.get_u32_le();
                if o as usize >= n_entities {
                    return Err(format!("fact has dangling object {o}"));
                }
                Object::Entity(EntityId(o))
            }
            1 => Object::Literal(get_str(&mut buf)?),
            other => return Err(format!("unknown object tag {other}")),
        };
        kg.add_fact(EntityId(subject), PropertyId(property), object);
    }
    Ok(kg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthKgConfig};

    #[test]
    fn round_trip_preserves_everything() {
        let original = generate(SynthKgConfig::tiny(77)).kg;
        let bytes = kg_to_bytes(&original);
        let restored = kg_from_bytes(&bytes).unwrap();

        assert_eq!(original.num_entities(), restored.num_entities());
        assert_eq!(original.num_types(), restored.num_types());
        assert_eq!(original.num_properties(), restored.num_properties());
        assert_eq!(original.num_facts(), restored.num_facts());
        for (a, b) in original.entities().zip(restored.entities()) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.aliases, b.aliases);
            assert_eq!(a.types, b.types);
        }
        // indexes were rebuilt: exact lookup still works
        let e = original.entities().nth(5).unwrap();
        assert_eq!(restored.find_exact(&e.label), original.find_exact(&e.label));
        // type hierarchy preserved
        for t in 0..original.num_types() as u32 {
            assert_eq!(
                original.type_parent(TypeId(t)),
                restored.type_parent(TypeId(t))
            );
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(kg_from_bytes(b"not a kg").is_err());
        let good = kg_to_bytes(&generate(SynthKgConfig::tiny(1)).kg);
        assert!(kg_from_bytes(&good[..good.len() / 2]).is_err());
    }

    #[test]
    fn empty_graph_round_trips() {
        let kg = KnowledgeGraph::new();
        let restored = kg_from_bytes(&kg_to_bytes(&kg)).unwrap();
        assert_eq!(restored.num_entities(), 0);
    }
}
