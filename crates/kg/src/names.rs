//! Deterministic synthetic name generation.
//!
//! The reproduction cannot ship Wikidata/DBPedia dumps, so entity labels are
//! forged from syllable pools, per entity category, from a seeded RNG. The
//! generator guarantees global uniqueness unless ambiguity is explicitly
//! requested by the KG builder (some real entities *do* share labels, e.g.
//! the many cities called Berlin).

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Entity categories with distinct naming conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NameKind {
    /// Countries ("Veldoria", "Karenland").
    Country,
    /// Cities and towns ("Brenburg", "Ostaville").
    City,
    /// People ("Mira Kalden").
    Person,
    /// Organizations ("Veldor Industries").
    Organization,
    /// Creative works ("The Silent Harbor").
    Film,
    /// Rivers ("Taren River").
    River,
}

const ONSETS: &[&str] = &[
    "b", "br", "c", "d", "dr", "f", "g", "gr", "h", "j", "k", "kal", "l", "m", "mar", "n", "p",
    "r", "s", "st", "t", "tr", "v", "vel", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ae", "ia", "ei", "ou"];
const CODAS: &[&str] = &["n", "r", "l", "s", "th", "nd", "rk", "m", "st", "", ""];

const COUNTRY_SUFFIX: &[&str] = &["ia", "land", "stan", "onia", "ova", "mark"];
const CITY_SUFFIX: &[&str] = &[
    "burg", "ville", "ton", "stadt", "ford", "haven", "field", "port", "mouth", "grad",
];
const ORG_SUFFIX: &[&str] = &[
    "industries", "group", "corporation", "labs", "systems", "holdings", "institute", "works",
];
const FILM_ADJ: &[&str] = &[
    "silent", "crimson", "lost", "final", "hidden", "golden", "broken", "distant", "burning",
    "frozen",
];
const FILM_NOUN: &[&str] = &[
    "harbor", "empire", "garden", "voyage", "kingdom", "horizon", "legacy", "river", "castle",
    "shadow",
];
const SURNAME_SUFFIX: &[&str] = &["son", "sen", "man", "er", "ov", "ski", "ard", "well"];

/// Uniform pick from one of the const syllable/suffix tables above. The
/// tables are non-empty by construction; an empty slice degrades to `""`
/// instead of panicking.
fn pick<'a, R: Rng + ?Sized>(rng: &mut R, table: &'a [&'a str]) -> &'a str {
    table.choose(rng).copied().unwrap_or("")
}

/// Seedable unique-name factory.
///
/// Every `next_*` call draws from the supplied RNG; the forge remembers all
/// names it handed out and retries (appending more syllables) on collision,
/// so two calls never return the same string unless
/// [`NameForge::allow_duplicate`] is used.
#[derive(Debug, Default)]
pub struct NameForge {
    used: HashSet<String>,
}

impl NameForge {
    /// Creates an empty forge.
    pub fn new() -> Self {
        Self::default()
    }

    fn syllable<R: Rng + ?Sized>(rng: &mut R) -> String {
        let mut s = String::new();
        s.push_str(pick(rng, ONSETS));
        s.push_str(pick(rng, VOWELS));
        s.push_str(pick(rng, CODAS));
        s
    }

    fn stem<R: Rng + ?Sized>(rng: &mut R, syllables: usize) -> String {
        let mut s = String::new();
        for _ in 0..syllables {
            s.push_str(&Self::syllable(rng));
        }
        s
    }

    /// Generates a fresh, globally-unique name of the given kind.
    pub fn next<R: Rng + ?Sized>(&mut self, kind: NameKind, rng: &mut R) -> String {
        let mut attempt = 0usize;
        loop {
            let extra = attempt / 3; // widen the space if collisions persist
            let candidate = Self::raw(kind, rng, extra);
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
            attempt += 1;
        }
    }

    /// Generates a name without uniqueness bookkeeping — used by the KG
    /// builder to create deliberately ambiguous labels.
    pub fn allow_duplicate<R: Rng + ?Sized>(kind: NameKind, rng: &mut R) -> String {
        Self::raw(kind, rng, 0)
    }

    fn raw<R: Rng + ?Sized>(kind: NameKind, rng: &mut R, extra_syllables: usize) -> String {
        match kind {
            NameKind::Country => {
                let stem = Self::stem(rng, 2 + extra_syllables);
                capitalize(&format!("{stem}{}", pick(rng, COUNTRY_SUFFIX)))
            }
            NameKind::City => {
                let stem = Self::stem(rng, 2 + extra_syllables);
                capitalize(&format!("{stem}{}", pick(rng, CITY_SUFFIX)))
            }
            NameKind::Person => {
                let first = capitalize(&Self::stem(rng, 1 + extra_syllables / 2));
                let last = capitalize(&format!(
                    "{}{}",
                    Self::stem(rng, 2 + extra_syllables - extra_syllables / 2),
                    pick(rng, SURNAME_SUFFIX)
                ));
                format!("{first} {last}")
            }
            NameKind::Organization => {
                let stem = capitalize(&Self::stem(rng, 2 + extra_syllables));
                format!("{stem} {}", capitalize(pick(rng, ORG_SUFFIX)))
            }
            NameKind::Film => {
                if extra_syllables == 0 {
                    format!(
                        "The {} {}",
                        capitalize(pick(rng, FILM_ADJ)),
                        capitalize(pick(rng, FILM_NOUN))
                    )
                } else {
                    format!(
                        "The {} {} of {}",
                        capitalize(pick(rng, FILM_ADJ)),
                        capitalize(pick(rng, FILM_NOUN)),
                        capitalize(&Self::stem(rng, extra_syllables))
                    )
                }
            }
            NameKind::River => {
                let stem = capitalize(&Self::stem(rng, 1 + extra_syllables));
                format!("{stem} River")
            }
        }
    }

    /// Number of distinct names handed out so far.
    pub fn issued(&self) -> usize {
        self.used.len()
    }
}

/// Uppercases the first ASCII letter of each word.
pub fn capitalize(s: &str) -> String {
    s.split(' ')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(first) => first.to_ascii_uppercase().to_string() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn names_are_unique() {
        let mut forge = NameForge::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            let n = forge.next(NameKind::City, &mut rng);
            assert!(seen.insert(n.clone()), "duplicate {n}");
        }
        assert_eq!(forge.issued(), 2000);
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut forge = NameForge::new();
            let mut rng = StdRng::seed_from_u64(seed);
            (0..10)
                .map(|_| forge.next(NameKind::Country, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    #[test]
    fn person_names_have_two_tokens() {
        let mut forge = NameForge::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let n = forge.next(NameKind::Person, &mut rng);
            assert_eq!(n.split(' ').count(), 2, "{n}");
        }
    }

    #[test]
    fn film_names_are_title_style() {
        let mut forge = NameForge::new();
        let mut rng = StdRng::seed_from_u64(3);
        let n = forge.next(NameKind::Film, &mut rng);
        assert!(n.starts_with("The "), "{n}");
    }

    #[test]
    fn capitalize_words() {
        assert_eq!(capitalize("hello world"), "Hello World");
        assert_eq!(capitalize(""), "");
    }

    #[test]
    fn country_names_use_suffixes() {
        let mut forge = NameForge::new();
        let mut rng = StdRng::seed_from_u64(4);
        let n = forge.next(NameKind::Country, &mut rng).to_lowercase();
        assert!(
            COUNTRY_SUFFIX.iter().any(|s| n.ends_with(s)),
            "{n} has no country suffix"
        );
    }
}
