//! Alias generation rules that mirror how real KG aliases form.
//!
//! The paper's semantic lookup relies on alias families like
//! (GERMANY, DEUTSCHLAND) — an unrelated "translated" name — and
//! (EUROPEAN UNION, EU) — an abbreviation. Each rule below creates one
//! alias family; the synthetic KG attaches a sampled subset to every entity.

use crate::names::{capitalize, NameForge, NameKind};
use emblookup_text::tokenize::initialism;
use rand::seq::SliceRandom;
use rand::Rng;

/// Alias formation rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AliasRule {
    /// Initialism of a multi-word label ("European Union" → "EU").
    Initialism,
    /// Formal long form ("Germany" → "Federal Republic of Germany").
    FormalLongForm,
    /// Pseudo-translation: an independently generated name with no
    /// syntactic relationship to the label (Germany/Deutschland analogue).
    Translation,
    /// Historical or archaic variant of the label's stem.
    Historical,
    /// Short form: the most distinctive single token of the label.
    ShortForm,
    /// Person nickname derived from the first name ("Mira" → "Miri").
    Nickname,
}

impl AliasRule {
    /// Every rule, in a fixed order.
    pub const ALL: [AliasRule; 6] = [
        AliasRule::Initialism,
        AliasRule::FormalLongForm,
        AliasRule::Translation,
        AliasRule::Historical,
        AliasRule::ShortForm,
        AliasRule::Nickname,
    ];
}

const FORMAL_COUNTRY: &[&str] = &["Federal Republic of", "Kingdom of", "Republic of", "United States of"];
const FORMAL_CITY: &[&str] = &["City of", "Free City of", "Greater"];
const FORMAL_ORG: &[&str] = &["The", "International"];
const HISTORICAL_SUFFIX: &[(&str, &str)] = &[
    ("ia", "ium"),
    ("land", "lund"),
    ("burg", "borg"),
    ("ton", "tun"),
    ("stadt", "stat"),
    ("ville", "villa"),
];

/// Applies one alias rule to `label`.
///
/// Returns `None` when the rule does not apply (e.g. an initialism of a
/// single-word label), so the caller can fall through to another rule.
/// `forge`/`rng` are only used by [`AliasRule::Translation`].
pub fn apply_rule<R: Rng + ?Sized>(
    rule: AliasRule,
    label: &str,
    kind: NameKind,
    forge: &mut NameForge,
    rng: &mut R,
) -> Option<String> {
    match rule {
        AliasRule::Initialism => {
            let init = initialism(label)?;
            (init.len() >= 2).then_some(init)
        }
        AliasRule::FormalLongForm => {
            let prefix = match kind {
                NameKind::Country => FORMAL_COUNTRY.choose(rng)?,
                NameKind::City => FORMAL_CITY.choose(rng)?,
                NameKind::Organization => FORMAL_ORG.choose(rng)?,
                _ => return None,
            };
            Some(format!("{prefix} {label}"))
        }
        AliasRule::Translation => {
            // A fresh unrelated name of the same kind stands in for a
            // foreign-language label; only the training corpus ties it to
            // the entity, exactly as with Germany/Deutschland.
            Some(forge.next(kind, rng))
        }
        AliasRule::Historical => {
            let lower = label.to_lowercase();
            for &(suffix, replacement) in HISTORICAL_SUFFIX {
                if let Some(stem) = lower.strip_suffix(suffix) {
                    return Some(capitalize(&format!("{stem}{replacement}")));
                }
            }
            None
        }
        AliasRule::ShortForm => {
            let tokens: Vec<&str> = label.split_whitespace().collect();
            if tokens.len() < 2 {
                return None;
            }
            // longest token is usually the distinctive one ("Veldor
            // Industries" → "Veldor", "The Silent Harbor" → "Harbor")
            tokens
                .iter()
                .filter(|t| t.len() > 3)
                .max_by_key(|t| t.len())
                .map(|t| capitalize(t))
        }
        AliasRule::Nickname => {
            if kind != NameKind::Person {
                return None;
            }
            let first = label.split_whitespace().next()?;
            if first.len() < 4 {
                return None;
            }
            let stem: String = first.chars().take(first.len() - 1).collect();
            Some(format!("{stem}i"))
        }
    }
}

/// Generates up to `budget` aliases for `label` by cycling through the rules
/// in randomized order, skipping rules that do not apply and deduplicating.
pub fn generate_aliases<R: Rng + ?Sized>(
    label: &str,
    kind: NameKind,
    budget: usize,
    forge: &mut NameForge,
    rng: &mut R,
) -> Vec<String> {
    let mut rules = AliasRule::ALL.to_vec();
    rules.shuffle(rng);
    let mut out: Vec<String> = Vec::new();
    // Translation can apply repeatedly (several "languages"); the others
    // are single-shot. Loop rules until the budget is met or exhausted.
    for &rule in &rules {
        if out.len() >= budget {
            break;
        }
        if let Some(alias) = apply_rule(rule, label, kind, forge, rng) {
            if alias != label && !out.contains(&alias) {
                out.push(alias);
            }
        }
    }
    while out.len() < budget {
        let alias = forge.next(kind, rng);
        if alias != label && !out.contains(&alias) {
            out.push(alias);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> (NameForge, StdRng) {
        (NameForge::new(), StdRng::seed_from_u64(11))
    }

    #[test]
    fn initialism_rule() {
        let (mut f, mut r) = ctx();
        let a = apply_rule(
            AliasRule::Initialism,
            "European Union",
            NameKind::Organization,
            &mut f,
            &mut r,
        );
        assert_eq!(a, Some("EU".to_string()));
        assert_eq!(
            apply_rule(AliasRule::Initialism, "Germany", NameKind::Country, &mut f, &mut r),
            None
        );
    }

    #[test]
    fn formal_long_form_applies_to_places() {
        let (mut f, mut r) = ctx();
        let a = apply_rule(
            AliasRule::FormalLongForm,
            "Veldoria",
            NameKind::Country,
            &mut f,
            &mut r,
        )
        .unwrap();
        assert!(a.ends_with("Veldoria"), "{a}");
        assert!(a.len() > "Veldoria".len());
        assert_eq!(
            apply_rule(AliasRule::FormalLongForm, "Mira Kalden", NameKind::Person, &mut f, &mut r),
            None
        );
    }

    #[test]
    fn translation_is_unrelated() {
        let (mut f, mut r) = ctx();
        let a = apply_rule(
            AliasRule::Translation,
            "Veldoria",
            NameKind::Country,
            &mut f,
            &mut r,
        )
        .unwrap();
        assert_ne!(a, "Veldoria");
    }

    #[test]
    fn historical_rewrites_suffix() {
        let (mut f, mut r) = ctx();
        let a = apply_rule(
            AliasRule::Historical,
            "Veldoria",
            NameKind::Country,
            &mut f,
            &mut r,
        );
        assert_eq!(a, Some("Veldorium".to_string()));
    }

    #[test]
    fn nickname_only_for_persons() {
        let (mut f, mut r) = ctx();
        let a = apply_rule(
            AliasRule::Nickname,
            "Mirana Kalden",
            NameKind::Person,
            &mut f,
            &mut r,
        );
        assert_eq!(a, Some("Mirani".to_string()));
        assert_eq!(
            apply_rule(AliasRule::Nickname, "Veldoria", NameKind::Country, &mut f, &mut r),
            None
        );
    }

    #[test]
    fn short_form_picks_distinctive_token() {
        let (mut f, mut r) = ctx();
        let a = apply_rule(
            AliasRule::ShortForm,
            "Veldor Industries",
            NameKind::Organization,
            &mut f,
            &mut r,
        );
        assert_eq!(a, Some("Industries".to_string()));
    }

    #[test]
    fn generate_aliases_meets_budget_and_dedups() {
        let (mut f, mut r) = ctx();
        let aliases = generate_aliases("Veldoria", NameKind::Country, 5, &mut f, &mut r);
        assert_eq!(aliases.len(), 5);
        let mut unique = aliases.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 5);
        assert!(!aliases.contains(&"Veldoria".to_string()));
    }

    #[test]
    fn zero_budget_gives_nothing() {
        let (mut f, mut r) = ctx();
        assert!(generate_aliases("Veldoria", NameKind::Country, 0, &mut f, &mut r).is_empty());
    }
}
