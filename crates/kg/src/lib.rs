//! # emblookup-kg
//!
//! Knowledge-graph substrate for the EmbLookup reproduction: the
//! `⟨E, T, P, F⟩` store of the paper's formalization, alias-formation rules
//! (abbreviations, formal long forms, pseudo-translations, historical
//! variants), and deterministic synthetic graph generators standing in for
//! the Wikidata and DBPedia dumps that cannot ship with the repository.

#![warn(missing_docs)]

pub mod aliases;
pub mod lookup;
pub mod model;
pub mod names;
pub mod serialize;
pub mod synth;

pub use lookup::{Candidate, LookupService};
pub use model::{Entity, EntityId, Fact, KnowledgeGraph, Object, PropertyId, TypeId};
pub use serialize::{kg_from_bytes, kg_to_bytes};
pub use synth::{generate, KgFlavor, SynthKg, SynthKgConfig};
