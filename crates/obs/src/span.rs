//! RAII span timers: `let _s = Span::enter("index.build");` records the
//! elapsed time into the histogram of the same name when dropped, and
//! emits start/end events to the installed subscriber.

use crate::hist::Histogram;
use crate::registry::{global, MetricsRegistry};
use crate::subscriber::{emit, Event, EventKind, FieldValue};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A running stage timer. Dropping it records the duration.
#[must_use = "a Span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    name: String,
    start: Instant,
    hist: Arc<Histogram>,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// Starts a span recording into the global registry's histogram
    /// `name` on drop.
    pub fn enter(name: impl Into<String>) -> Span {
        Self::enter_in(global(), name)
    }

    /// Starts a span bound to a specific registry.
    pub fn enter_in(registry: &MetricsRegistry, name: impl Into<String>) -> Span {
        let name = name.into();
        let hist = registry.histogram(&name);
        emit(&Event {
            name: &name,
            kind: EventKind::SpanStart,
            duration_ns: None,
            fields: &[],
        });
        Span { name, start: Instant::now(), hist, fields: Vec::new() }
    }

    /// Attaches a field reported with the span-end event.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.fields.push((key, value.into()));
        self
    }

    /// Time elapsed since the span was entered.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(ns);
        emit(&Event {
            name: &self.name,
            kind: EventKind::SpanEnd,
            duration_ns: Some(ns),
            fields: &self.fields,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_named_histogram() {
        let reg = MetricsRegistry::new();
        {
            let _s = Span::enter_in(&reg, "stage.one");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let h = snap.histogram("stage.one").expect("histogram registered");
        assert_eq!(h.count, 1);
        assert!(h.max() >= 2_000_000, "recorded {} ns", h.max());
    }

    #[test]
    fn nested_spans_record_independently() {
        let reg = MetricsRegistry::new();
        {
            let _outer = Span::enter_in(&reg, "outer");
            let _inner = Span::enter_in(&reg, "inner");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("outer").unwrap().count, 1);
        assert_eq!(snap.histogram("inner").unwrap().count, 1);
    }
}
