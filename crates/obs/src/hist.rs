//! Lock-free log-bucketed latency histogram (an `hdrhistogram`-lite).
//!
//! Values (typically nanoseconds) below [`LINEAR_CUTOFF`] land in exact
//! unit buckets; above it each power-of-two octave is split into
//! [`SUBS_PER_OCTAVE`] linear sub-buckets, bounding the relative
//! quantization error of any reported quantile by `1/SUBS_PER_OCTAVE`
//! (6.25%). Recording is a handful of relaxed atomic adds — safe to call
//! concurrently from any number of threads, with no lock anywhere.

use std::sync::atomic::{
    AtomicU64,
    Ordering::{AcqRel, Acquire, Relaxed, Release},
};

/// Values below this are counted in exact unit buckets.
const LINEAR_CUTOFF: u64 = 16;
/// Linear sub-buckets per power-of-two octave above the cutoff.
const SUBS_PER_OCTAVE: usize = 16;
/// First octave exponent above the linear region (`2^4 == LINEAR_CUTOFF`).
const FIRST_OCTAVE: u32 = 4;
/// Total bucket count: 16 unit buckets + 16 per octave for 2^4..2^63.
const NUM_BUCKETS: usize = LINEAR_CUTOFF as usize + (64 - FIRST_OCTAVE as usize) * SUBS_PER_OCTAVE;

/// Bucket index for a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= FIRST_OCTAVE
    let sub = ((v >> (exp - FIRST_OCTAVE)) & (SUBS_PER_OCTAVE as u64 - 1)) as usize;
    LINEAR_CUTOFF as usize + (exp - FIRST_OCTAVE) as usize * SUBS_PER_OCTAVE + sub
}

/// Inclusive lower bound of a bucket.
#[inline]
fn bucket_low(i: usize) -> u64 {
    if i < LINEAR_CUTOFF as usize {
        return i as u64;
    }
    let rel = i - LINEAR_CUTOFF as usize;
    let exp = FIRST_OCTAVE + (rel / SUBS_PER_OCTAVE) as u32;
    let sub = (rel % SUBS_PER_OCTAVE) as u64;
    (1u64 << exp) + (sub << (exp - FIRST_OCTAVE))
}

/// Representative value reported for a bucket (its midpoint).
#[inline]
fn bucket_mid(i: usize) -> u64 {
    if i < LINEAR_CUTOFF as usize {
        return i as u64;
    }
    let rel = i - LINEAR_CUTOFF as usize;
    let exp = FIRST_OCTAVE + (rel / SUBS_PER_OCTAVE) as u32;
    let width = 1u64 << (exp - FIRST_OCTAVE);
    bucket_low(i) + width / 2
}

/// One exemplar: a recorded value linked to the trace that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The recorded value (typically nanoseconds).
    pub value: u64,
    /// The non-zero trace id of the request that recorded it.
    pub trace_id: u64,
}

/// A lock-free exemplar slot: a seqlock-style `(value, trace_id)` pair.
/// Writers skip on contention (the request path never blocks); readers
/// retry on a torn read.
///
/// The handshake follows the uniform `seqlock` discipline (DESIGN.md
/// §1.3): every load is `Acquire`, every store and the claiming CAS are
/// `Release`-or-stronger. That makes the odd/even check sound: if a
/// reader's data load synchronizes-with a writer's `Release` data
/// store, that writer's odd version CAS (program-order-before the data
/// store) is visible too, so the reader's `Acquire` recheck sees the
/// odd or advanced version and retries — with the earlier all-`Relaxed`
/// accesses, the recheck could validate a torn `(value, trace_id)`
/// pair.
#[derive(Debug, Default)]
struct ExemplarSlot {
    // lint: atomic(seqlock) version word of the (value, trace_id) pair
    version: AtomicU64,
    // lint: atomic(seqlock) data slot published under `version`
    value: AtomicU64,
    // lint: atomic(seqlock) data slot published under `version`
    trace_id: AtomicU64,
}

impl ExemplarSlot {
    /// Best-effort publish; a concurrent writer wins and this write is
    /// silently skipped.
    fn offer(&self, value: u64, trace_id: u64) {
        let v = self.version.load(Acquire);
        if v % 2 == 1 {
            return; // writer in progress
        }
        if self
            .version
            .compare_exchange(v, v + 1, AcqRel, Relaxed)
            .is_err()
        {
            return;
        }
        self.value.store(value, Release);
        self.trace_id.store(trace_id, Release);
        self.version.store(v + 2, Release);
    }

    fn value(&self) -> u64 {
        self.value.load(Acquire)
    }

    fn read(&self) -> Option<Exemplar> {
        for _ in 0..4 {
            let v1 = self.version.load(Acquire);
            if v1 == 0 || v1 % 2 == 1 {
                if v1 == 0 {
                    return None;
                }
                continue;
            }
            let value = self.value.load(Acquire);
            let trace_id = self.trace_id.load(Acquire);
            if self.version.load(Acquire) == v1 {
                return (trace_id != 0).then_some(Exemplar { value, trace_id });
            }
        }
        None
    }
}

/// Concurrent log-bucketed histogram over `u64` values.
pub struct Histogram {
    // lint: atomic(counter) statistics only; snapshots are point-in-time
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    // lint: atomic(counter) statistics only
    count: AtomicU64,
    // lint: atomic(counter) statistics only
    sum: AtomicU64,
    // lint: atomic(counter) statistics only
    min: AtomicU64,
    // lint: atomic(counter) statistics only
    max: AtomicU64,
    ex_max: ExemplarSlot,
    ex_last: ExemplarSlot,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the array through a Vec once.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        // lint: allow(L001) infallible: the Vec is built with exactly NUM_BUCKETS elements one line up
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = v.into_boxed_slice().try_into().expect("bucket count is fixed");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            ex_max: ExemplarSlot::default(),
            ex_last: ExemplarSlot::default(),
        }
    }

    /// Records one value. Lock-free: five relaxed atomic RMW operations.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one value and links it to a trace id as an exemplar.
    /// The "last" exemplar always updates (best effort); the "max"
    /// exemplar updates when `value` is at least the largest exemplar
    /// value seen, so the p99 line of the Prometheus export points at
    /// a genuinely slow trace. `trace_id == 0` records without an
    /// exemplar.
    pub fn record_with_exemplar(&self, value: u64, trace_id: u64) {
        self.record(value);
        if trace_id == 0 {
            return;
        }
        self.ex_last.offer(value, trace_id);
        if value >= self.ex_max.value() {
            self.ex_max.offer(value, trace_id);
        }
    }

    /// [`Histogram::record_with_exemplar`] for a duration in
    /// nanoseconds (saturating).
    pub fn record_duration_with_exemplar(&self, d: std::time::Duration, trace_id: u64) {
        self.record_with_exemplar(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX), trace_id);
    }

    /// Records the same value `n` times in O(1) — used to attribute a
    /// batch's wall time across its queries without `n` loop iterations.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_of(value)].fetch_add(n, Relaxed);
        self.count.fetch_add(n, Relaxed);
        self.sum.fetch_add(value.saturating_mul(n), Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        HistogramSnapshot {
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            min: self.min.load(Relaxed),
            max: self.max.load(Relaxed),
            buckets,
            exemplar_max: self.ex_max.read(),
            exemplar_last: self.ex_last.read(),
        }
    }
}

/// Immutable copy of a [`Histogram`], with quantile queries.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
    exemplar_max: Option<Exemplar>,
    exemplar_last: Option<Exemplar>,
}

impl HistogramSnapshot {
    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The exemplar with the largest value recorded via
    /// [`Histogram::record_with_exemplar`], if any.
    pub fn exemplar_max(&self) -> Option<Exemplar> {
        self.exemplar_max
    }

    /// The most recent exemplar recorded via
    /// [`Histogram::record_with_exemplar`], if any.
    pub fn exemplar_last(&self) -> Option<Exemplar> {
        self.exemplar_last
    }

    /// Mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) of recorded values, or 0 when the
    /// histogram is empty. Reported values are bucket midpoints clamped to
    /// the observed `[min, max]`, so e.g. a single-sample histogram
    /// reports that sample exactly at every quantile.
    ///
    /// # Panics
    /// Panics when `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.count == 0 {
            return 0;
        }
        // rank of the target sample, 1-based
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_and_consistent() {
        // every bucket's low bound maps back to that bucket, and bounds
        // strictly increase
        let mut prev = None;
        for i in 0..NUM_BUCKETS {
            let lo = bucket_low(i);
            assert_eq!(bucket_of(lo), i, "low bound of bucket {i} maps elsewhere");
            if let Some(p) = prev {
                assert!(lo > p, "bucket {i} bound {lo} <= previous {p}");
            }
            prev = Some(lo);
        }
        // spot-check the linear/log boundary
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(31), 31);
        assert_eq!(bucket_of(32), 32);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 1_000, 12_345, 1_000_000, 123_456_789, 10_u64.pow(12)] {
            let mid = bucket_mid(bucket_of(v));
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUBS_PER_OCTAVE as f64, "value {v} err {err}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let h = Histogram::new();
        h.record(12_345);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 12_345, "q={q}");
        }
    }

    #[test]
    fn quantiles_of_uniform_stream() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.sum, 10_000 * 10_001 / 2);
        let within = |got: u64, want: u64| {
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(err < 0.07, "got {got}, want ~{want}");
        };
        within(s.p50(), 5_000);
        within(s.p90(), 9_000);
        within(s.p99(), 9_900);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 10_000);
    }

    #[test]
    fn quantile_extremes_hit_min_and_max() {
        let h = Histogram::new();
        for v in [5u64, 500, 50_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 5);
        assert_eq!(s.quantile(1.0).clamp(0, s.max()), s.quantile(1.0));
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * 1_000 + i % 997);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads * per_thread);
        assert_eq!(s.buckets.iter().sum::<u64>(), threads * per_thread);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn quantile_rejects_out_of_range() {
        Histogram::new().snapshot().quantile(1.5);
    }

    #[test]
    fn record_n_zero_is_a_no_op() {
        let h = Histogram::new();
        h.record_n(12_345, 0);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        // min/max untouched: an empty histogram still reports zeros
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn record_n_one_matches_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(777);
        b.record_n(777, 1);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.count, sb.count);
        assert_eq!(sa.sum, sb.sum);
        assert_eq!(sa.min(), sb.min());
        assert_eq!(sa.max(), sb.max());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(sa.quantile(q), sb.quantile(q), "q={q}");
        }
    }

    #[test]
    fn record_n_matches_n_records() {
        let a = Histogram::new();
        let b = Histogram::new();
        for _ in 0..1_000 {
            a.record(42);
        }
        b.record_n(42, 1_000);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.count, sb.count);
        assert_eq!(sa.sum, sb.sum);
        assert_eq!(sa.p50(), sb.p50());
        assert_eq!(sa.p99(), sb.p99());
    }

    #[test]
    fn exemplars_track_max_and_last() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().exemplar_max(), None);
        h.record_with_exemplar(100, 0xA);
        h.record_with_exemplar(5_000, 0xB);
        h.record_with_exemplar(300, 0xC);
        h.record_with_exemplar(77, 0); // no trace: counted, no exemplar
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.exemplar_max(), Some(Exemplar { value: 5_000, trace_id: 0xB }));
        assert_eq!(s.exemplar_last(), Some(Exemplar { value: 300, trace_id: 0xC }));
    }

    #[test]
    fn exemplar_reads_are_never_torn() {
        // regression for the seqlock fix: writers publish (value,
        // trace_id) pairs with trace_id == value + 1; a reader that
        // validates a read must never observe a mixed pair. Under the
        // earlier all-Relaxed handshake the version recheck could
        // validate a torn read.
        use std::sync::Arc;
        let slot = Arc::new(ExemplarSlot::default());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let slot = Arc::clone(&slot);
                scope.spawn(move || {
                    for i in 0..20_000u64 {
                        let value = t * 1_000_000 + i + 1;
                        slot.offer(value, value + 1);
                    }
                });
            }
            for _ in 0..2 {
                let slot = Arc::clone(&slot);
                scope.spawn(move || {
                    for _ in 0..50_000 {
                        if let Some(e) = slot.read() {
                            assert_eq!(
                                e.trace_id,
                                e.value + 1,
                                "torn exemplar: value and trace_id from different writes"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn record_n_saturates_sum_instead_of_overflowing() {
        let h = Histogram::new();
        h.record_n(u64::MAX / 2, 3); // value * n overflows u64
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, u64::MAX, "sum must saturate, not wrap");
        assert_eq!(s.max(), u64::MAX / 2);
        // quantiles stay within the observed range despite the saturated sum
        assert!(s.p99() <= s.max());
    }
}
