//! Request-scoped structured tracing: explicit span trees, no TLS.
//!
//! A [`Trace`] is minted once per request (trace id from the wire or
//! derived from the request index) and handed around **explicitly** —
//! there is no thread-local ambient context, so the span tree a request
//! produces is a pure function of the code path it took. Span handles
//! ([`TraceSpan`]) are cheap clonable references into the trace;
//! creation order assigns span ids, so a request whose stages are
//! created sequentially yields a deterministic tree shape regardless of
//! how many pool workers later execute the chunks.
//!
//! Time comes from a [`TraceClock`]: real wall time in production, or a
//! shared virtual nanosecond counter under the fault harness, in which
//! case captured durations are bit-identical across pool widths (only
//! the `thread` ordinal of a span may differ).
//!
//! Completed traces snapshot into an immutable [`TraceData`], which
//! renders as structured JSON (`/debug/traces`) or Chrome
//! `trace_event` JSON (`/debug/traces/chrome`, loadable in
//! `about:tracing` / Perfetto).

use crate::json::escape_json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Sentinel for "span still open" in [`SpanRecord::end_ns`].
const OPEN: u64 = u64::MAX;

/// Renders a trace id as the 16-hex-digit wire form used by the
/// `x-emblookup-trace-id` header and `/debug/traces/<id>`.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parses a wire-form trace id (1–16 hex digits). Returns `None` for
/// empty, oversized, or non-hex input and for the reserved id `0`.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// Derives a non-zero trace id deterministically from a request index
/// (splitmix64 finalizer), for clients that did not send one.
pub fn trace_id_from_index(index: u64) -> u64 {
    let mut z = index.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let id = z ^ (z >> 31);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Small process-wide thread ordinal (1, 2, …) used instead of
/// `std::thread::ThreadId` so span records stay plain `u64`s.
pub fn thread_ordinal() -> u64 {
    use std::cell::Cell;
    // lint: atomic(counter) id allocator; uniqueness, not ordering
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: Cell<u64> = const { Cell::new(0) };
    }
    ORDINAL.with(|cell| {
        let v = cell.get();
        if v != 0 {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        cell.set(v);
        v
    })
}

/// The time source spans stamp their start/end from.
#[derive(Debug, Clone)]
pub enum TraceClock {
    /// Wall time relative to an epoch (normally the trace mint).
    Real(Instant),
    /// A shared virtual nanosecond counter; only explicit advances (the
    /// fault harness's injected latency) move it, so durations are
    /// deterministic.
    Virtual(Arc<AtomicU64>),
}

impl TraceClock {
    /// A real-time clock anchored now.
    pub fn real() -> Self {
        TraceClock::Real(Instant::now())
    }

    /// A virtual clock over a shared nanosecond counter.
    pub fn virtual_shared(ns: Arc<AtomicU64>) -> Self {
        TraceClock::Virtual(ns)
    }

    /// Nanoseconds since the clock's epoch.
    pub fn now_ns(&self) -> u64 {
        match self {
            TraceClock::Real(epoch) => epoch.elapsed().as_nanos() as u64,
            // lint: atomic(counter) virtual clock: a late-by-one read only shifts a span timestamp
            TraceClock::Virtual(ns) => ns.load(Ordering::Relaxed),
        }
    }
}

/// A span annotation value: unsigned integer or static string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnoValue {
    /// An unsigned integer (counts, milliseconds, …).
    U64(u64),
    /// A static string (rung name, backend name, fault kind, …).
    Str(&'static str),
}

impl From<u64> for AnnoValue {
    fn from(v: u64) -> Self {
        AnnoValue::U64(v)
    }
}

impl From<&'static str> for AnnoValue {
    fn from(v: &'static str) -> Self {
        AnnoValue::Str(v)
    }
}

/// One recorded span: identity, timing, thread, annotations.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span id, 1-based in creation order; the root span is id 1.
    pub id: u32,
    /// Parent span id; `0` marks the root.
    pub parent: u32,
    /// Registered span name (see `names::`).
    pub name: &'static str,
    /// Start, in clock nanoseconds (`u64::MAX` until a deferred span
    /// begins).
    pub start_ns: u64,
    /// End, in clock nanoseconds (`u64::MAX` while open).
    pub end_ns: u64,
    /// Ordinal of the thread that started the span.
    pub thread: u64,
    /// Annotation `(key, value)` pairs in insertion order.
    pub annotations: Vec<(&'static str, AnnoValue)>,
}

impl SpanRecord {
    /// Wall duration, clamping open/deferred spans to zero-length at
    /// `now_ns`.
    fn duration_ns(&self) -> u64 {
        let start = if self.start_ns == OPEN { self.end_ns } else { self.start_ns };
        self.end_ns.saturating_sub(start)
    }
}

/// A live, in-flight trace: the spine every [`TraceSpan`] handle points
/// into. Span creation and mutation go through one mutex; spans are
/// created sequentially on the request path, so contention is limited
/// to pool workers stamping their own chunk spans.
#[derive(Debug)]
pub struct Trace {
    id: u64,
    clock: TraceClock,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Trace {
    /// Starts a trace with the given wire id and clock.
    pub fn start(id: u64, clock: TraceClock) -> Arc<Trace> {
        Arc::new(Trace { id, clock, spans: Mutex::new(Vec::with_capacity(8)) })
    }

    /// The wire trace id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The clock this trace stamps from.
    pub fn clock(&self) -> &TraceClock {
        &self.clock
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Vec<SpanRecord>> {
        // lint: allow(L002) per-trace span buffer: short uncontended critical section, only on traced requests
        self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn new_span(self: &Arc<Trace>, parent: u32, name: &'static str, deferred: bool) -> TraceSpan {
        let (start_ns, thread) = if deferred { (OPEN, 0) } else { (self.clock.now_ns(), thread_ordinal()) };
        let mut spans = self.locked();
        let id = spans.len() as u32 + 1;
        spans.push(SpanRecord {
            id,
            parent,
            name,
            start_ns,
            end_ns: OPEN,
            thread,
            annotations: Vec::new(),
        });
        drop(spans);
        TraceSpan { trace: Arc::clone(self), id }
    }

    /// Creates and starts the root span. Name-position for lint L003:
    /// `name` must come from `names::`.
    pub fn root(self: &Arc<Trace>, name: &'static str) -> TraceSpan {
        self.new_span(0, name, false)
    }

    /// Snapshots the trace into an immutable [`TraceData`]. Spans still
    /// open are clamped to end now; deferred spans that never began are
    /// recorded as zero-length at their end (or now).
    pub fn snapshot(&self) -> TraceData {
        let now = self.clock.now_ns();
        let mut spans = self.locked().clone();
        for s in &mut spans {
            if s.end_ns == OPEN {
                s.end_ns = now;
            }
            if s.start_ns == OPEN {
                s.start_ns = s.end_ns;
            }
        }
        TraceData { id: self.id, spans }
    }
}

/// A clonable handle onto one span of a [`Trace`]. Handles are **not**
/// RAII guards: a span ends only when [`TraceSpan::finish`] is called
/// (or when the trace is snapshotted, which clamps open spans), so a
/// panic unwinding past a handle leaves an honest open span rather
/// than a fabricated end time.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    trace: Arc<Trace>,
    id: u32,
}

impl TraceSpan {
    /// The owning trace.
    pub fn trace(&self) -> &Arc<Trace> {
        &self.trace
    }

    /// This span's id within the trace.
    pub fn span_id(&self) -> u32 {
        self.id
    }

    /// Creates and starts a child span. Name-position for lint L003.
    pub fn child(&self, name: &'static str) -> TraceSpan {
        self.trace.new_span(self.id, name, false)
    }

    /// Creates a child span without starting it; a pool worker later
    /// stamps its start (and thread) via [`TraceSpan::begin`].
    /// Name-position for lint L003.
    pub fn child_deferred(&self, name: &'static str) -> TraceSpan {
        self.trace.new_span(self.id, name, true)
    }

    /// Stamps the start time and executing thread of a deferred span.
    pub fn begin(&self) {
        let now = self.trace.clock.now_ns();
        let thread = thread_ordinal();
        let mut spans = self.trace.locked();
        if let Some(s) = spans.get_mut(self.id as usize - 1) {
            if s.start_ns == OPEN {
                s.start_ns = now;
                s.thread = thread;
            }
        }
    }

    /// Ends the span (first call wins; later calls are no-ops).
    pub fn finish(&self) {
        let now = self.trace.clock.now_ns();
        let mut spans = self.trace.locked();
        if let Some(s) = spans.get_mut(self.id as usize - 1) {
            if s.end_ns == OPEN {
                s.end_ns = now;
            }
        }
    }

    /// Attaches a `(key, value)` annotation to the span.
    pub fn annotate(&self, key: &'static str, value: impl Into<AnnoValue>) {
        let value = value.into();
        let mut spans = self.trace.locked();
        if let Some(s) = spans.get_mut(self.id as usize - 1) {
            s.annotations.push((key, value));
        }
    }
}

/// An immutable, completed span tree ready for storage and export.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// The wire trace id.
    pub id: u64,
    /// All spans, ordered by span id (creation order).
    pub spans: Vec<SpanRecord>,
}

impl TraceData {
    /// Duration of the root span (id 1), or 0 for an empty trace.
    pub fn duration_ns(&self) -> u64 {
        self.spans.first().map_or(0, SpanRecord::duration_ns)
    }

    /// Per-span self time: duration minus the summed durations of
    /// direct children, indexed by span id − 1.
    pub fn self_times_ns(&self) -> Vec<u64> {
        let mut self_ns: Vec<u64> = self.spans.iter().map(SpanRecord::duration_ns).collect();
        for s in &self.spans {
            if s.parent != 0 {
                if let Some(p) = self_ns.get_mut(s.parent as usize - 1) {
                    *p = p.saturating_sub(s.duration_ns());
                }
            }
        }
        self_ns
    }

    /// First annotation value for `key` on the root span.
    pub fn root_annotation(&self, key: &str) -> Option<AnnoValue> {
        self.spans
            .first()?
            .annotations
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
    }

    /// Structured JSON for `/debug/traces`:
    /// `{"trace_id":"…","duration_ns":N,"spans":[…]}`.
    pub fn to_json(&self) -> String {
        let self_ns = self.self_times_ns();
        let mut out = String::with_capacity(128 + self.spans.len() * 128);
        out.push_str("{\"trace_id\":\"");
        out.push_str(&format_trace_id(self.id));
        out.push_str("\",\"duration_ns\":");
        out.push_str(&self.duration_ns().to_string());
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"self_ns\":{},\"thread\":{}",
                s.id,
                s.parent,
                escape_json(s.name),
                s.start_ns,
                s.duration_ns(),
                self_ns.get(i).copied().unwrap_or(0),
                s.thread,
            ));
            out.push_str(",\"annotations\":{");
            for (j, (k, v)) in s.annotations.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape_json(k));
                out.push_str("\":");
                match v {
                    AnnoValue::U64(n) => out.push_str(&n.to_string()),
                    AnnoValue::Str(t) => {
                        out.push('"');
                        out.push_str(&escape_json(t));
                        out.push('"');
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// Fixed-point microseconds (`ns / 1000` with 3 decimals) — Chrome
/// `trace_event` wants µs, and decimal-string formatting keeps the
/// export byte-deterministic.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Renders traces as one Chrome `trace_event` JSON document
/// (`{"traceEvents":[…]}` with `"ph":"X"` complete events), loadable
/// in `about:tracing` or Perfetto. Each trace becomes a `pid`; span
/// threads become `tid`s.
pub fn traces_to_chrome_json(traces: &[TraceData]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (pid, t) in traces.iter().enumerate() {
        for s in &t.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"emblookup\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"trace_id\":\"{}\"",
                escape_json(s.name),
                micros(if s.start_ns == OPEN { s.end_ns } else { s.start_ns }),
                micros(s.duration_ns()),
                pid + 1,
                s.thread,
                format_trace_id(t.id),
            ));
            for (k, v) in &s.annotations {
                out.push_str(",\"");
                out.push_str(&escape_json(k));
                out.push_str("\":");
                match v {
                    AnnoValue::U64(n) => out.push_str(&n.to_string()),
                    AnnoValue::Str(t) => {
                        out.push('"');
                        out.push_str(&escape_json(t));
                        out.push('"');
                    }
                }
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_roundtrip_and_reserved_zero() {
        assert_eq!(parse_trace_id(&format_trace_id(0xdead_beef)), Some(0xdead_beef));
        assert_eq!(parse_trace_id("0"), None);
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("zz"), None);
        assert_eq!(parse_trace_id("11112222333344445"), None);
        assert_ne!(trace_id_from_index(0), 0);
        assert_ne!(trace_id_from_index(1), trace_id_from_index(2));
    }

    #[test]
    fn virtual_clock_builds_deterministic_tree() {
        let ns = Arc::new(AtomicU64::new(0));
        let trace = Trace::start(7, TraceClock::virtual_shared(Arc::clone(&ns)));
        let root = trace.root("train.total");
        let child = root.child("train.mining");
        ns.fetch_add(5_000, Ordering::Relaxed);
        child.annotate("visited", 42u64);
        child.finish();
        ns.fetch_add(1_000, Ordering::Relaxed);
        root.finish();
        let data = trace.snapshot();
        assert_eq!(data.spans.len(), 2);
        assert_eq!(data.spans[0].id, 1);
        assert_eq!(data.spans[1].parent, 1);
        assert_eq!(data.duration_ns(), 6_000);
        assert_eq!(data.spans[1].end_ns - data.spans[1].start_ns, 5_000);
        // self time: root = 6000 - 5000
        assert_eq!(data.self_times_ns(), vec![1_000, 5_000]);
        let json = data.to_json();
        assert!(json.contains("\"trace_id\":\"0000000000000007\""));
        assert!(json.contains("\"visited\":42"));
    }

    #[test]
    fn deferred_spans_begin_late_and_open_spans_clamp() {
        let ns = Arc::new(AtomicU64::new(0));
        let trace = Trace::start(9, TraceClock::virtual_shared(Arc::clone(&ns)));
        let root = trace.root("train.total");
        let chunk = root.child_deferred("train.mining");
        ns.fetch_add(100, Ordering::Relaxed);
        chunk.begin();
        ns.fetch_add(50, Ordering::Relaxed);
        chunk.finish();
        chunk.finish(); // idempotent
        let never_begun = root.child_deferred("train.triplet");
        let data = trace.snapshot(); // root + never_begun still open
        assert_eq!(data.spans[1].start_ns, 100);
        assert_eq!(data.spans[1].end_ns, 150);
        assert!(data.spans[1].thread != 0);
        // clamped: zero-length at snapshot time
        assert_eq!(data.spans[2].start_ns, data.spans[2].end_ns);
        assert_eq!(data.spans[0].end_ns, 150);
        drop(never_begun);
    }

    #[test]
    fn chrome_export_is_complete_events() {
        let ns = Arc::new(AtomicU64::new(0));
        let trace = Trace::start(3, TraceClock::virtual_shared(ns.clone()));
        let root = trace.root("train.total");
        ns.fetch_add(2_500, Ordering::Relaxed);
        root.finish();
        let chrome = traces_to_chrome_json(&[trace.snapshot()]);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"dur\":2.500"));
        assert!(chrome.contains("\"trace_id\":\"0000000000000003\""));
    }
}
