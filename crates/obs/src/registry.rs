//! Metric handles and the registry that names them.
//!
//! The registry's map is guarded by a mutex, but it is touched only at
//! *registration* time: callers resolve an `Arc` handle once (at service
//! construction, before any hot loop) and then operate on plain atomics.

use crate::hist::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    // lint: atomic(counter) statistics only
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// Last-write-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    // lint: atomic(counter) last-write-wins f64 bits; no ordering contract
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Named metrics, either process-global ([`global`]) or local (tests,
/// per-experiment isolation).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The map, recovered from poisoning — a panic elsewhere must not
    /// take metrics registration down with it.
    fn locked(&self) -> MutexGuard<'_, Inner> {
        // lint: allow(L002) registration-time lock: callers resolve a handle once and cache it; the hot path never re-enters
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get-or-create the counter `name`. Resolve once, then use the
    /// returned handle — it never touches the registry lock again.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.locked();
        // lint: allow(L002) name interned once per metric at registration, not per increment
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.locked();
        // lint: allow(L002) name interned once per metric at registration, not per increment
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.locked();
        // lint: allow(L002) name interned once per metric at registration, not per increment
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.locked();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Drops every registered metric. Existing handles keep working but
    /// are no longer reachable from the registry (used by tests).
    pub fn clear(&self) {
        let mut inner = self.locked();
        *inner = Inner::default();
    }
}

/// The process-global registry, created on first use.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

/// Point-in-time copy of a registry's metrics (see the `export` module
/// for Prometheus/JSON renderings).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, ascending by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` for every histogram, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, or `None` when absent.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, or `None` when absent.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The snapshot of histogram `name`, or `None` when absent.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.snapshot().counter("x"), Some(4));
    }

    #[test]
    fn counters_survive_concurrent_increments() {
        let reg = MetricsRegistry::new();
        let threads = 8;
        let per_thread = 50_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = reg.counter("hits");
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("hits"), Some(threads * per_thread));
    }

    #[test]
    fn gauge_holds_last_write() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("temp");
        g.set(1.5);
        g.set(-3.25);
        assert_eq!(reg.snapshot().gauge("temp"), Some(-3.25));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("b");
        reg.counter("a");
        reg.counter("c");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn clear_detaches_metrics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        c.inc();
        reg.clear();
        assert_eq!(reg.snapshot().counter("x"), None);
        c.inc(); // old handle still safe to use
    }
}
