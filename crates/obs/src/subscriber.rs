//! Structured stage events and pluggable sinks.
//!
//! Instrumented code emits [`Event`]s (span start/end, point events with
//! fields); whatever [`Subscriber`] is installed renders them. Nothing is
//! emitted — and nearly nothing is paid — when no subscriber is set.

use crate::json::escape_json;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// What an [`Event`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span began.
    SpanStart,
    /// A span finished (carries its duration).
    SpanEnd,
    /// A point-in-time structured event.
    Point,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Point => "point",
        }
    }
}

/// A typed field value attached to an event.
#[derive(Debug, Clone)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::F64(v) if v.is_finite() => v.to_string(),
            FieldValue::F64(_) => "null".to_string(),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(v) => format!("\"{}\"", escape_json(v)),
        }
    }
}

macro_rules! from_field {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $cast)
            }
        }
    )*};
}
from_field!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64,
            f64 => F64 as f64, f32 => F64 as f64);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured observability event.
#[derive(Debug)]
pub struct Event<'a> {
    /// Dotted stage name, e.g. `train.epoch`.
    pub name: &'a str,
    /// Span lifecycle or point event.
    pub kind: EventKind,
    /// Duration in nanoseconds for [`EventKind::SpanEnd`].
    pub duration_ns: Option<u64>,
    /// Attached key/value fields.
    pub fields: &'a [(&'a str, FieldValue)],
}

/// A sink for [`Event`]s. Implementations must be cheap and non-blocking
/// where possible: events fire from instrumented library code.
pub trait Subscriber: Send + Sync {
    /// Handles one event.
    fn on_event(&self, event: &Event<'_>);
}

static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

/// Installs the global subscriber (replacing any previous one).
pub fn set_subscriber(sub: Arc<dyn Subscriber>) {
    *SUBSCRIBER.write().unwrap_or_else(PoisonError::into_inner) = Some(sub);
}

/// Removes the global subscriber.
pub fn clear_subscriber() {
    *SUBSCRIBER.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Sends an event to the installed subscriber, if any.
pub fn emit(event: &Event<'_>) {
    // Uncontended read lock; None is the common case and returns at once.
    // lint: allow(L002) uncontended read lock; no subscriber installed is the common case
    if let Some(sub) = SUBSCRIBER.read().unwrap_or_else(PoisonError::into_inner).as_ref() {
        sub.on_event(event);
    }
}

/// Emits a point event with fields.
///
/// ```
/// emblookup_obs::event("train.epoch", &[("epoch", 3usize.into()), ("loss", 0.12.into())]);
/// ```
pub fn event(name: &str, fields: &[(&str, FieldValue)]) {
    emit(&Event { name, kind: EventKind::Point, duration_ns: None, fields });
}

/// Installs subscribers from the environment:
///
/// * `EMBLOOKUP_OBS=stderr` — pretty-printed stage events on stderr;
/// * `EMBLOOKUP_OBS_JSON=<path>` — JSON-lines event log appended to a file.
///
/// Both may be set at once. Returns `true` when any subscriber was
/// installed.
pub fn init_from_env() -> bool {
    let mut subs: Vec<Arc<dyn Subscriber>> = Vec::new();
    if std::env::var("EMBLOOKUP_OBS").is_ok_and(|v| v == "stderr" || v == "1") {
        subs.push(Arc::new(StderrSubscriber));
    }
    if let Ok(path) = std::env::var("EMBLOOKUP_OBS_JSON") {
        match JsonLinesSubscriber::create(&path) {
            Ok(s) => subs.push(Arc::new(s)),
            Err(e) => eprintln!("[obs] cannot open EMBLOOKUP_OBS_JSON={path}: {e}"),
        }
    }
    match subs.len() {
        0 => false,
        1 => {
            // lint: allow(L001) infallible: this branch only runs when len() == 1
            set_subscriber(subs.pop().expect("one subscriber"));
            true
        }
        _ => {
            set_subscriber(Arc::new(MultiSubscriber { subs }));
            true
        }
    }
}

/// Fans one event out to several subscribers.
pub struct MultiSubscriber {
    subs: Vec<Arc<dyn Subscriber>>,
}

impl Subscriber for MultiSubscriber {
    fn on_event(&self, event: &Event<'_>) {
        for s in &self.subs {
            s.on_event(event);
        }
    }
}

/// Human-readable one-line-per-event printer on stderr.
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn on_event(&self, event: &Event<'_>) {
        // span starts are noise at stderr verbosity; ends carry the timing
        if event.kind == EventKind::SpanStart {
            return;
        }
        let mut line = format!("[obs] {}", event.name);
        for (k, v) in event.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        if let Some(ns) = event.duration_ns {
            line.push_str(&format!(" ({})", crate::fmt::fmt_nanos(ns)));
        }
        eprintln!("{line}");
    }
}

/// Appends one JSON object per event to a file.
pub struct JsonLinesSubscriber {
    out: Mutex<BufWriter<File>>,
}

impl JsonLinesSubscriber {
    /// Creates (truncating) the output file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonLinesSubscriber {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Subscriber for JsonLinesSubscriber {
    fn on_event(&self, event: &Event<'_>) {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let mut line = format!(
            "{{\"ts_unix_ms\":{ts_ms},\"name\":\"{}\",\"kind\":\"{}\"",
            escape_json(event.name),
            event.kind.as_str()
        );
        if let Some(ns) = event.duration_ns {
            line.push_str(&format!(",\"duration_ns\":{ns}"));
        }
        if !event.fields.is_empty() {
            line.push_str(",\"fields\":{");
            for (i, (k, v)) in event.fields.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("\"{}\":{}", escape_json(k), v.to_json()));
            }
            line.push('}');
        }
        line.push('}');
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // per-line flush: the log must survive a crashed experiment
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Captures events in memory — the test harness's subscriber.
#[derive(Default)]
pub struct CollectingSubscriber {
    events: Mutex<Vec<OwnedEvent>>,
}

/// An owned copy of an [`Event`], as captured by [`CollectingSubscriber`].
#[derive(Debug, Clone)]
pub struct OwnedEvent {
    /// Event name.
    pub name: String,
    /// Event kind.
    pub kind: EventKind,
    /// Duration for span ends.
    pub duration_ns: Option<u64>,
    /// Fields rendered with [`FieldValue`]'s `Display`.
    pub fields: Vec<(String, String)>,
}

impl CollectingSubscriber {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// All captured events, in order.
    pub fn events(&self) -> Vec<OwnedEvent> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Number of captured events matching `name` and `kind`.
    pub fn count(&self, name: &str, kind: EventKind) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|e| e.name == name && e.kind == kind)
            .count()
    }
}

impl Subscriber for CollectingSubscriber {
    fn on_event(&self, event: &Event<'_>) {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).push(OwnedEvent {
            name: event.name.to_string(),
            kind: event.kind,
            duration_ns: event.duration_ns,
            fields: event
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_subscriber_sees_events_in_order() {
        let sub = Arc::new(CollectingSubscriber::new());
        set_subscriber(sub.clone());
        event("a", &[("x", 1u64.into())]);
        event("b", &[]);
        event("a", &[("x", 2u64.into())]);
        clear_subscriber();
        event("after-clear", &[]);
        let names: Vec<String> = sub.events().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, ["a", "b", "a"]);
        assert_eq!(sub.count("a", EventKind::Point), 2);
        assert_eq!(sub.events()[0].fields, vec![("x".to_string(), "1".to_string())]);
    }

    #[test]
    fn json_lines_subscriber_writes_valid_lines() {
        let dir = std::env::temp_dir().join(format!("obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sub = JsonLinesSubscriber::create(&path).unwrap();
        sub.on_event(&Event {
            name: "stage.\"quoted\"",
            kind: EventKind::SpanEnd,
            duration_ns: Some(1234),
            fields: &[("loss", FieldValue::F64(0.5)), ("tag", FieldValue::Str("a\nb".into()))],
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        let line = text.lines().next().unwrap();
        assert!(line.contains("\"duration_ns\":1234"), "{line}");
        assert!(line.contains("stage.\\\"quoted\\\""), "{line}");
        assert!(line.contains("a\\nb"), "{line}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
