//! Renderings of a [`MetricsSnapshot`]: Prometheus text exposition,
//! a JSON snapshot, and an aligned human-readable table.

use crate::fmt::fmt_nanos;
use crate::json::escape_json;
use crate::registry::MetricsSnapshot;

/// Maps a dotted metric name to a Prometheus-legal identifier.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("emblookup_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

impl MetricsSnapshot {
    /// Prometheus text exposition format. Counters become `_total`
    /// counters, gauges become gauges, histograms become summaries with
    /// `quantile` labels — durations are exported in seconds, following
    /// the Prometheus convention.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p}_total counter\n{p}_total {value}\n"));
        }
        for (name, value) in &self.gauges {
            let p = prom_name(name);
            out.push_str(&format!("# TYPE {p} gauge\n{p} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let p = prom_name(name);
            let secs = |ns: u64| ns as f64 / 1e9;
            out.push_str(&format!("# TYPE {p}_seconds summary\n"));
            if h.count == 0 {
                // Never-recorded histogram: an explicit zero count, but
                // no quantile/sum lines that would report 0 as an
                // observed value.
                out.push_str(&format!("{p}_seconds_count 0\n"));
                continue;
            }
            // Exemplars (OpenMetrics-style `# {trace_id="…"} value`
            // suffix): the p99 line points at the slowest traced
            // request, the p50 line at the most recent one.
            let quantiles = [
                (0.5, h.p50(), h.exemplar_last()),
                (0.9, h.p90(), None),
                (0.99, h.p99(), h.exemplar_max()),
            ];
            for (q, v, exemplar) in quantiles {
                out.push_str(&format!("{p}_seconds{{quantile=\"{q}\"}} {}", secs(v)));
                if let Some(ex) = exemplar {
                    out.push_str(&format!(
                        " # {{trace_id=\"{}\"}} {}",
                        crate::trace::format_trace_id(ex.trace_id),
                        secs(ex.value)
                    ));
                }
                out.push('\n');
            }
            out.push_str(&format!("{p}_seconds_sum {}\n", secs(h.sum)));
            out.push_str(&format!("{p}_seconds_count {}\n", h.count));
        }
        out
    }

    /// JSON object with `counters`, `gauges` and `histograms` sections;
    /// histogram durations stay in integer nanoseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {value}", escape_json(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = if value.is_finite() { value.to_string() } else { "null".into() };
            out.push_str(&format!("\n    \"{}\": {v}", escape_json(name)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if h.count == 0 {
                // A never-recorded histogram has no observed min/max:
                // emit the explicit zero count alone so downstream
                // deltas don't treat 0 as a measured value.
                out.push_str(&format!("\n    \"{}\": {{\"count\": 0}}", escape_json(name)));
                continue;
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p90_ns\": {}, \
                 \"p99_ns\": {}}}",
                escape_json(name),
                h.count,
                h.sum,
                h.min(),
                h.max(),
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Aligned text table: histograms with percentiles first, then
    /// counters and gauges. The format the bench bins print.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.histograms.is_empty() {
            out.push_str(&format!(
                "{:<38} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "histogram", "count", "p50", "p90", "p99", "max", "total"
            ));
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{:<38} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                    name,
                    h.count,
                    fmt_nanos(h.p50()),
                    fmt_nanos(h.p90()),
                    fmt_nanos(h.p99()),
                    fmt_nanos(h.max()),
                    fmt_nanos(h.sum),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<38} {:>9}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("{:<38} {:>9}\n", name, value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("{:<38} {:>9}\n", "gauge", "value"));
            for (name, value) in &self.gauges {
                out.push_str(&format!("{:<38} {:>9.3}\n", name, value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::MetricsRegistry;

    fn sample() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("lookup.queries").add(150);
        reg.gauge("index.entities").set(600.0);
        let h = reg.histogram("lookup.latency");
        h.record(1_000);
        h.record(2_000);
        h.record(4_000);
        reg
    }

    #[test]
    fn prometheus_golden_output() {
        let text = sample().snapshot().to_prometheus();
        let expected_lines = [
            "# TYPE emblookup_lookup_queries_total counter",
            "emblookup_lookup_queries_total 150",
            "# TYPE emblookup_index_entities gauge",
            "emblookup_index_entities 600",
            "# TYPE emblookup_lookup_latency_seconds summary",
            "emblookup_lookup_latency_seconds_count 3",
        ];
        for line in expected_lines {
            assert!(text.contains(line), "missing {line:?} in:\n{text}");
        }
        assert!(
            text.contains("emblookup_lookup_latency_seconds{quantile=\"0.5\"}"),
            "no quantile line:\n{text}"
        );
        // sum of 7µs exported in seconds
        assert!(text.contains("emblookup_lookup_latency_seconds_sum 0.000007"), "{text}");
    }

    #[test]
    fn json_golden_output() {
        let json = sample().snapshot().to_json();
        for needle in [
            "\"lookup.queries\": 150",
            "\"index.entities\": 600",
            "\"lookup.latency\": {\"count\": 3, \"sum_ns\": 7000",
            "\"min_ns\": 1000",
            "\"max_ns\": 4000",
        ] {
            assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
        }
        // structurally: braces balance
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
    }

    #[test]
    fn table_lists_all_metrics() {
        let table = sample().snapshot().render_table();
        assert!(table.contains("lookup.latency"), "{table}");
        assert!(table.contains("lookup.queries"), "{table}");
        assert!(table.contains("index.entities"), "{table}");
        assert!(table.contains("p99"), "{table}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.snapshot().render_table(), "");
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"counters\""));
    }

    #[test]
    fn empty_histogram_exports_count_zero_without_min_max() {
        let reg = MetricsRegistry::new();
        let _ = reg.histogram("lookup.latency");
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"lookup.latency\": {\"count\": 0}"), "{json}");
        assert!(!json.contains("min_ns"), "empty histogram leaked min_ns:\n{json}");
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("# TYPE emblookup_lookup_latency_seconds summary"), "{prom}");
        assert!(prom.contains("emblookup_lookup_latency_seconds_count 0"), "{prom}");
        assert!(!prom.contains("quantile"), "empty histogram leaked quantiles:\n{prom}");
    }

    #[test]
    fn exemplars_render_on_quantile_lines() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lookup.latency");
        h.record_with_exemplar(1_000, 0xAB);
        h.record_with_exemplar(9_000, 0xCD);
        let prom = reg.snapshot().to_prometheus();
        assert!(
            prom.contains("quantile=\"0.99\"}") && prom.contains("# {trace_id=\"00000000000000cd\"} 0.000009"),
            "p99 line must carry the max exemplar:\n{prom}"
        );
    }
}
