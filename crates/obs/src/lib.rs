//! # emblookup-obs
//!
//! Zero-dependency observability substrate for the EmbLookup workspace:
//! a `metrics`/`tracing`/`hdrhistogram`-flavoured toolkit implemented on
//! std only, so the workspace keeps building offline.
//!
//! * **Metrics** — [`MetricsRegistry`] names atomic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed [`Histogram`]s (p50/p90/p99/max,
//!   count/sum). Resolve a handle once, then record lock-free; the
//!   process-global registry is [`global()`].
//! * **Spans** — [`Span::enter("index.build")`](Span::enter) RAII guards
//!   time a stage into the histogram of the same name and notify the
//!   subscriber.
//! * **Events** — [`event()`] emits structured point events (per-epoch
//!   loss, triplet counts) through the pluggable [`Subscriber`]:
//!   [`StderrSubscriber`] pretty-prints, [`JsonLinesSubscriber`] appends
//!   machine-readable lines; [`init_from_env()`] wires either from
//!   `EMBLOOKUP_OBS` / `EMBLOOKUP_OBS_JSON`.
//! * **Exporters** — a [`MetricsSnapshot`] renders to Prometheus text
//!   ([`MetricsSnapshot::to_prometheus`]), JSON
//!   ([`MetricsSnapshot::to_json`]) or an aligned table
//!   ([`MetricsSnapshot::render_table`]).
//! * **Traces** — a request-scoped [`Trace`] builds a span tree through
//!   explicitly threaded [`TraceSpan`] handles (no thread-locals);
//!   span ids are allocated in creation order so the tree shape is
//!   deterministic, and [`TraceClock`] can share a virtual-nanosecond
//!   counter with a deadline clock for bit-identical capture under
//!   fault injection. Completed [`TraceData`] lands in the fixed-size
//!   overwrite-oldest [`FlightRecorder`] ring; a [`TailSampler`]
//!   promotes traces judged interesting after the fact (slow, shed,
//!   degraded, error, panic — [`Trigger`]) into per-class retained
//!   buffers, and [`TraceHub`] bundles both behind one `publish()`.
//!   Export as JSON ([`TraceData::to_json`]) or Chrome `trace_event`
//!   ([`traces_to_chrome_json`]); [`Histogram`] exemplars link a
//!   `/metrics` percentile line back to the trace id that produced it.
//!
//! ```
//! use emblookup_obs as obs;
//!
//! let lookups = obs::global().histogram("lookup.latency");
//! {
//!     let _stage = obs::Span::enter("index.build");
//!     // ... build ...
//! }
//! lookups.record(12_345); // nanoseconds, lock-free
//! let snap = obs::global().snapshot();
//! assert!(snap.histogram("index.build").unwrap().count >= 1);
//! println!("{}", snap.render_table());
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod fmt;
pub mod names;
pub mod ring;
pub mod sample;
pub mod trace;
mod hist;
mod json;
mod registry;
mod span;
mod subscriber;

pub use fmt::{fmt_duration, fmt_nanos};
pub use hist::{Exemplar, Histogram, HistogramSnapshot};
pub use registry::{global, Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use ring::FlightRecorder;
pub use sample::{RetainedTrace, TailSampler, TraceHub, Trigger};
pub use span::Span;
pub use trace::{
    format_trace_id, parse_trace_id, trace_id_from_index, traces_to_chrome_json, AnnoValue,
    SpanRecord, Trace, TraceClock, TraceData, TraceSpan,
};
pub use subscriber::{
    clear_subscriber, emit, event, init_from_env, set_subscriber, CollectingSubscriber, Event,
    EventKind, FieldValue, JsonLinesSubscriber, MultiSubscriber, OwnedEvent, StderrSubscriber,
    Subscriber,
};
