//! # emblookup-obs
//!
//! Zero-dependency observability substrate for the EmbLookup workspace:
//! a `metrics`/`tracing`/`hdrhistogram`-flavoured toolkit implemented on
//! std only, so the workspace keeps building offline.
//!
//! * **Metrics** — [`MetricsRegistry`] names atomic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed [`Histogram`]s (p50/p90/p99/max,
//!   count/sum). Resolve a handle once, then record lock-free; the
//!   process-global registry is [`global()`].
//! * **Spans** — [`Span::enter("index.build")`](Span::enter) RAII guards
//!   time a stage into the histogram of the same name and notify the
//!   subscriber.
//! * **Events** — [`event()`] emits structured point events (per-epoch
//!   loss, triplet counts) through the pluggable [`Subscriber`]:
//!   [`StderrSubscriber`] pretty-prints, [`JsonLinesSubscriber`] appends
//!   machine-readable lines; [`init_from_env()`] wires either from
//!   `EMBLOOKUP_OBS` / `EMBLOOKUP_OBS_JSON`.
//! * **Exporters** — a [`MetricsSnapshot`] renders to Prometheus text
//!   ([`MetricsSnapshot::to_prometheus`]), JSON
//!   ([`MetricsSnapshot::to_json`]) or an aligned table
//!   ([`MetricsSnapshot::render_table`]).
//!
//! ```
//! use emblookup_obs as obs;
//!
//! let lookups = obs::global().histogram("lookup.latency");
//! {
//!     let _stage = obs::Span::enter("index.build");
//!     // ... build ...
//! }
//! lookups.record(12_345); // nanoseconds, lock-free
//! let snap = obs::global().snapshot();
//! assert!(snap.histogram("index.build").unwrap().count >= 1);
//! println!("{}", snap.render_table());
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod fmt;
pub mod names;
mod hist;
mod json;
mod registry;
mod span;
mod subscriber;

pub use fmt::{fmt_duration, fmt_nanos};
pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{global, Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use span::Span;
pub use subscriber::{
    clear_subscriber, emit, event, init_from_env, set_subscriber, CollectingSubscriber, Event,
    EventKind, FieldValue, JsonLinesSubscriber, MultiSubscriber, OwnedEvent, StderrSubscriber,
    Subscriber,
};
