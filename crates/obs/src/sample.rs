//! Tail sampling: promote *interesting* traces out of the lossy flight
//! recorder into a retained buffer.
//!
//! The decision runs at request completion, when the outcome is known
//! — the defining property of tail (vs head) sampling. A trace is
//! promoted when the request was slow, shed, degraded, errored, or
//! panicked ([`Trigger`]); each trigger class keeps up to a fixed
//! number of traces, so total retained memory stays bounded at
//! `5 × per_trigger_cap` trees. Retention is first-come within a
//! class: as long as no class is saturated, the decision depends only
//! on the request's own outcome, which keeps sampling deterministic
//! under the virtual-time fault harness.

use crate::ring::FlightRecorder;
use crate::trace::TraceData;
use crate::{names, Counter, MetricsRegistry};
use std::sync::{Arc, Mutex, PoisonError};

/// Why a trace was promoted to the retained buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Request latency exceeded the slow-trace threshold.
    Slow,
    /// Request was refused by admission control (`429`).
    Shed,
    /// Request was answered by a lower ladder rung (flat / q-gram).
    Degraded,
    /// Request failed (`400` / `500` / `504`).
    Error,
    /// Request panicked and the panic was contained.
    Panic,
}

impl Trigger {
    /// Every trigger class, in display order.
    pub const ALL: [Trigger; 5] =
        [Trigger::Slow, Trigger::Shed, Trigger::Degraded, Trigger::Error, Trigger::Panic];

    /// Stable lower-case name used in `/debug/traces` output.
    pub fn name(self) -> &'static str {
        match self {
            Trigger::Slow => "slow",
            Trigger::Shed => "shed",
            Trigger::Degraded => "degraded",
            Trigger::Error => "error",
            Trigger::Panic => "panic",
        }
    }

    fn index(self) -> usize {
        match self {
            Trigger::Slow => 0,
            Trigger::Shed => 1,
            Trigger::Degraded => 2,
            Trigger::Error => 3,
            Trigger::Panic => 4,
        }
    }
}

/// A retained trace plus the trigger classes that promoted it.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The complete span tree.
    pub trace: Arc<TraceData>,
    /// Deduplicated triggers, in [`Trigger::ALL`] order.
    pub triggers: Vec<Trigger>,
}

/// The retained-trace buffer behind tail sampling.
#[derive(Debug)]
pub struct TailSampler {
    per_trigger_cap: usize,
    retained: Mutex<Vec<RetainedTrace>>,
}

impl TailSampler {
    /// Creates a sampler keeping up to `per_trigger_cap` traces per
    /// trigger class (min 1).
    pub fn new(per_trigger_cap: usize) -> Self {
        TailSampler { per_trigger_cap: per_trigger_cap.max(1), retained: Mutex::new(Vec::new()) }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Vec<RetainedTrace>> {
        // lint: allow(L002) tail-sampler reservoir: touched once per completed request, after the response is built
        self.retained.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Offers a completed trace with the triggers its request hit.
    /// Returns `true` when the trace was retained — i.e. at least one
    /// of its trigger classes still had room.
    pub fn offer(&self, trace: Arc<TraceData>, triggers: &[Trigger]) -> bool {
        let triggers: Vec<Trigger> =
            Trigger::ALL.iter().copied().filter(|t| triggers.contains(t)).collect();
        if triggers.is_empty() {
            return false;
        }
        let mut retained = self.locked();
        let mut counts = [0usize; 5];
        for r in retained.iter() {
            for t in &r.triggers {
                counts[t.index()] += 1;
            }
        }
        if triggers.iter().all(|t| counts[t.index()] >= self.per_trigger_cap) {
            return false;
        }
        retained.push(RetainedTrace { trace, triggers });
        true
    }

    /// All retained traces, sorted by trace id for stable output.
    pub fn retained(&self) -> Vec<RetainedTrace> {
        let mut out = self.locked().clone();
        out.sort_by_key(|r| r.trace.id);
        out
    }

    /// Finds a retained trace by wire id.
    pub fn find(&self, id: u64) -> Option<RetainedTrace> {
        self.locked().iter().find(|r| r.trace.id == id).cloned()
    }

    /// Retained-trace count per trigger class, in [`Trigger::ALL`]
    /// order.
    pub fn counts(&self) -> [usize; 5] {
        let mut counts = [0usize; 5];
        for r in self.locked().iter() {
            for t in &r.triggers {
                counts[t.index()] += 1;
            }
        }
        counts
    }
}

/// The per-server tracing hub: always-on flight recorder + tail
/// sampler + the `trace.*` counters, published to in one call at
/// request completion.
#[derive(Debug)]
pub struct TraceHub {
    /// The always-on ring of recent traces.
    pub recorder: FlightRecorder,
    /// The retained (tail-sampled) buffer.
    pub sampler: TailSampler,
    recorded: Arc<Counter>,
    retained: Arc<Counter>,
    dropped: Arc<Counter>,
}

impl TraceHub {
    /// Creates a hub with the given ring capacity and per-trigger
    /// retention cap, counting into `registry`'s `trace.*` counters.
    pub fn new(ring_cap: usize, per_trigger_cap: usize, registry: &MetricsRegistry) -> Self {
        TraceHub {
            recorder: FlightRecorder::new(ring_cap),
            sampler: TailSampler::new(per_trigger_cap),
            recorded: registry.counter(names::TRACE_RECORDED),
            retained: registry.counter(names::TRACE_RETAINED),
            dropped: registry.counter(names::TRACE_DROPPED),
        }
    }

    /// Publishes a completed trace: always offered to the flight
    /// recorder, promoted to the retained buffer when `triggers` is
    /// non-empty and its class has room. Returns the shared trace for
    /// further use (e.g. exemplar linking).
    pub fn publish(&self, data: TraceData, triggers: &[Trigger]) -> Arc<TraceData> {
        let trace = Arc::new(data);
        if self.recorder.record(Arc::clone(&trace)) {
            self.recorded.inc();
        } else {
            self.dropped.inc();
        }
        if self.sampler.offer(Arc::clone(&trace), triggers) {
            self.retained.inc();
        }
        trace
    }

    /// Looks a trace up by id: retained buffer first (with triggers),
    /// then the flight recorder (no triggers).
    pub fn find(&self, id: u64) -> Option<RetainedTrace> {
        self.sampler
            .find(id)
            .or_else(|| self.recorder.find(id).map(|trace| RetainedTrace { trace, triggers: Vec::new() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> Arc<TraceData> {
        Arc::new(TraceData { id, spans: Vec::new() })
    }

    #[test]
    fn offers_promote_per_trigger_and_respect_caps() {
        let sampler = TailSampler::new(2);
        assert!(!sampler.offer(trace(1), &[]), "no trigger, no promotion");
        assert!(sampler.offer(trace(2), &[Trigger::Slow]));
        assert!(sampler.offer(trace(3), &[Trigger::Slow]));
        assert!(!sampler.offer(trace(4), &[Trigger::Slow]), "class saturated");
        // a saturated class piggybacks on a class with room
        assert!(sampler.offer(trace(5), &[Trigger::Slow, Trigger::Panic]));
        assert_eq!(sampler.counts(), [3, 0, 0, 0, 1]);
        assert!(sampler.find(3).is_some());
        assert!(sampler.find(4).is_none());
        let ids: Vec<u64> = sampler.retained().iter().map(|r| r.trace.id).collect();
        assert_eq!(ids, vec![2, 3, 5], "retained list sorts by trace id");
    }

    #[test]
    fn triggers_deduplicate_in_stable_order() {
        let sampler = TailSampler::new(4);
        sampler.offer(trace(1), &[Trigger::Error, Trigger::Slow, Trigger::Error]);
        let r = sampler.find(1).unwrap();
        assert_eq!(r.triggers, vec![Trigger::Slow, Trigger::Error]);
    }

    #[test]
    fn hub_counts_recorded_and_retained() {
        let registry = MetricsRegistry::new();
        let hub = TraceHub::new(8, 2, &registry);
        hub.publish(TraceData { id: 1, spans: Vec::new() }, &[]);
        hub.publish(TraceData { id: 2, spans: Vec::new() }, &[Trigger::Shed]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(names::TRACE_RECORDED), Some(2));
        assert_eq!(snap.counter(names::TRACE_RETAINED), Some(1));
        assert_eq!(snap.counter(names::TRACE_DROPPED), Some(0));
        assert!(hub.find(2).is_some_and(|r| r.triggers == vec![Trigger::Shed]));
        assert!(hub.find(1).is_some_and(|r| r.triggers.is_empty()), "ring fallback");
        assert!(hub.find(99).is_none());
    }
}
