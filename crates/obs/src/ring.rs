//! The always-on flight recorder: a fixed-size overwrite-oldest ring
//! of completed traces.
//!
//! Whole [`TraceData`] trees are inserted, never individual spans, so
//! everything the recorder holds is a *complete* tree — there is no
//! partially-evicted trace to confuse a reader. Writers claim a slot
//! with one `fetch_add` and then `try_lock` it: if a concurrent reader
//! or writer holds the slot, the trace is dropped (and counted) rather
//! than blocking the request path. Memory is bounded by
//! `capacity × Arc<TraceData>`.

use crate::trace::TraceData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fixed-capacity overwrite-oldest store of recent traces.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Arc<TraceData>>>>,
    // lint: atomic(ring_head) the claimed value orders slot writes for scanners
    head: AtomicU64,
    // lint: atomic(counter) statistics only
    recorded: AtomicU64,
    // lint: atomic(counter) statistics only
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` traces (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Inserts a completed trace, overwriting the oldest slot. Lossy
    /// under contention: if the claimed slot is momentarily held, the
    /// trace is dropped and counted instead of blocking. Returns
    /// whether the trace was stored.
    pub fn record(&self, trace: Arc<TraceData>) -> bool {
        // Release: a scanner that observes the advanced head (Acquire in
        // `recent`) must also observe the slot writes published before
        // earlier advances; Relaxed here let `recent` start from a head
        // value ahead of the slot state it paired with.
        let slot = (self.head.fetch_add(1, Ordering::Release) as usize) % self.slots.len();
        match self.slots[slot].try_lock() {
            Ok(mut guard) => {
                *guard = Some(trace);
                self.recorded.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// All currently held traces, oldest slot first from the current
    /// head. Slots that are contended right now are skipped.
    pub fn recent(&self) -> Vec<Arc<TraceData>> {
        let n = self.slots.len();
        let head = self.head.load(Ordering::Acquire) as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let slot = (head + i) % n;
            if let Ok(guard) = self.slots[slot].try_lock() {
                if let Some(t) = guard.as_ref() {
                    out.push(Arc::clone(t));
                }
            }
        }
        out
    }

    /// Finds a held trace by wire id.
    pub fn find(&self, id: u64) -> Option<Arc<TraceData>> {
        self.recent().into_iter().find(|t| t.id == id)
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces successfully recorded since construction.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Total traces dropped to slot contention since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64) -> Arc<TraceData> {
        Arc::new(TraceData { id, spans: Vec::new() })
    }

    #[test]
    fn wraparound_keeps_the_newest_capacity_traces() {
        let ring = FlightRecorder::new(4);
        for id in 1..=10u64 {
            ring.record(trace(id));
        }
        let mut held: Vec<u64> = ring.recent().iter().map(|t| t.id).collect();
        held.sort_unstable();
        assert_eq!(held, vec![7, 8, 9, 10], "oldest traces must be overwritten");
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0);
        assert!(ring.find(9).is_some());
        assert!(ring.find(3).is_none());
    }

    #[test]
    fn capacity_clamps_to_one() {
        let ring = FlightRecorder::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(trace(1));
        ring.record(trace(2));
        assert_eq!(ring.recent().len(), 1);
        assert_eq!(ring.recent()[0].id, 2);
    }

    #[test]
    fn concurrent_writers_never_block_and_account_everything() {
        let ring = Arc::new(FlightRecorder::new(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        ring.record(trace(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.recorded() + ring.dropped(), 400);
        assert!(ring.recent().len() <= 8);
    }
}
