//! The single registry of metric and span names used across the
//! workspace.
//!
//! Every counter/gauge/histogram/span name that production code emits is
//! declared here once; call sites refer to the constant, never to a raw
//! string literal. `emblookup-lint` rule **L003** enforces this and
//! cross-checks call sites against [`ALL`], so a dashboard watching
//! `lookup.latency` can't silently drift from the code emitting it.
//!
//! Dynamically scoped families (`lookup.latency.<scope>`) go through the
//! `*_scoped` helpers below so the prefix still comes from this module.

macro_rules! names {
    ($($(#[$doc:meta])* $ident:ident => $value:literal),* $(,)?) => {
        $($(#[$doc])* pub const $ident: &str = $value;)*

        /// `(constant identifier, metric name)` for every registered
        /// name, in declaration order. The lint engine and the
        /// uniqueness test below consume this table.
        pub const ALL: &[(&str, &str)] = &[$((stringify!($ident), $value)),*];
    };
}

names! {
    /// Span/histogram timing the full train→index pipeline.
    TRAIN_TOTAL => "train.total",
    /// Span/histogram timing fastText pre-training.
    TRAIN_FASTTEXT => "train.fasttext",
    /// Span/histogram timing triplet mining.
    TRAIN_MINING => "train.mining",
    /// Span/histogram timing the two-phase triplet training loop.
    TRAIN_TRIPLET => "train.triplet",
    /// Histogram of per-epoch wall time.
    TRAIN_EPOCH_DURATION => "train.epoch.duration",
    /// Counter of completed training epochs.
    TRAIN_EPOCHS => "train.epochs",
    /// Counter of mined triplets.
    MINING_TRIPLETS => "mining.triplets",
    /// Span/histogram timing an entity-index build.
    INDEX_BUILD => "index.build",
    /// Gauge: entities in the current index.
    INDEX_ENTITIES => "index.entities",
    /// Gauge: approximate index size in bytes.
    INDEX_NBYTES => "index.nbytes",
    /// Histogram of single-query lookup latency (embed + ANN search).
    LOOKUP_LATENCY => "lookup.latency",
    /// Histogram of whole-batch bulk lookup wall time.
    LOOKUP_BULK => "lookup.bulk",
    /// Counter of queries served through the bulk path.
    LOOKUP_BULK_QUERIES => "lookup.bulk.queries",
    /// Histogram of per-query latency attributed inside a bulk batch
    /// (batch wall time divided across its queries).
    LOOKUP_LATENCY_BULK => "lookup.latency.bulk",
    /// Counter of flat-scan searches.
    ANN_FLAT_SEARCHES => "ann.flat.searches",
    /// Counter of vectors visited by flat scans.
    ANN_FLAT_VISITED => "ann.flat.visited_nodes",
    /// Counter of HNSW searches.
    ANN_HNSW_SEARCHES => "ann.hnsw.searches",
    /// Counter of graph nodes visited by HNSW searches.
    ANN_HNSW_VISITED => "ann.hnsw.visited_nodes",
    /// Counter of IVF searches.
    ANN_IVF_SEARCHES => "ann.ivf.searches",
    /// Counter of vectors visited by IVF searches.
    ANN_IVF_VISITED => "ann.ivf.visited_nodes",
    /// Counter of PQ searches.
    ANN_PQ_SEARCHES => "ann.pq.searches",
    /// Counter of codes visited by PQ searches.
    ANN_PQ_VISITED => "ann.pq.visited_nodes",
    /// Counter of IVFPQ searches.
    ANN_IVFPQ_SEARCHES => "ann.ivfpq.searches",
    /// Counter of codes visited by IVFPQ searches.
    ANN_IVFPQ_VISITED => "ann.ivfpq.visited_nodes",
    /// Counter of PQ-fused HNSW searches.
    ANN_HNSWPQ_SEARCHES => "ann.hnswpq.searches",
    /// Counter of graph nodes visited by PQ-fused HNSW searches.
    ANN_HNSWPQ_VISITED => "ann.hnswpq.visited_nodes",
    /// Counter of HTTP requests received by the serving layer.
    SERVE_REQUESTS => "serve.requests",
    /// Counter of lookup requests admitted past admission control.
    SERVE_ADMITTED => "serve.admitted",
    /// Counter of lookup requests shed with `429` by the bounded injector.
    SERVE_SHED => "serve.shed",
    /// Gauge: lookup requests waiting in the serving pool's injector.
    SERVE_QUEUE_DEPTH => "serve.queue.depth",
    /// Histogram of served request wall time (admission to response).
    SERVE_LATENCY => "serve.latency",
    /// Counter of requests answered `500` (contained per-request failure).
    SERVE_ERRORS => "serve.errors",
    /// Counter of requests answered `504` (deadline exhausted).
    SERVE_DEADLINE_EXCEEDED => "serve.deadline.exceeded",
    /// Counter of lookups served by the exact capped flat rung of the
    /// degradation ladder.
    SERVE_DEGRADED_FLAT => "serve.degraded.flat",
    /// Counter of lookups served by the q-gram string-similarity rung of
    /// the degradation ladder.
    SERVE_DEGRADED_QGRAM => "serve.degraded.qgram",
    /// Counter of per-request panics contained by the serving layer.
    SERVE_PANICS => "serve.panics",
    /// Counter of TCP connections accepted by the serving layer.
    SERVE_CONNECTIONS => "serve.connections",
    /// Gauge: index shards currently admitted to scatter-gather (breaker
    /// not open).
    SERVE_SHARDS_LIVE => "serve.shards.live",
    /// Counter of responses assembled from a strict subset of shards.
    SERVE_PARTIAL => "serve.partial",
    /// Counter of per-shard circuit-breaker open transitions (including
    /// re-opens after a failed half-open probe).
    SERVE_BREAKER_OPENED => "serve.breaker.opened",
    /// Counter of half-open probe attempts sent to an ejected shard.
    SERVE_BREAKER_PROBES => "serve.breaker.probes",
    /// Counter of shards re-admitted after a successful half-open probe.
    SERVE_BREAKER_READMITTED => "serve.breaker.readmitted",
    /// Counter of lookups pinned to the string rung by the whole-service
    /// overload breaker.
    SERVE_OVERLOAD_PINNED => "serve.overload.pinned",
    /// Counter of tasks executed by the compute pool.
    POOL_TASKS => "pool.tasks",
    /// Gauge: tasks currently queued in the compute pool.
    POOL_QUEUE_DEPTH => "pool.queue.depth",
    /// Counter of tasks stolen from another worker's deque.
    POOL_STEALS => "pool.steal",
    /// Trace span: root of one served HTTP request.
    SPAN_SERVE_REQUEST => "serve.request",
    /// Trace span: root of one traced library-level lookup.
    SPAN_LOOKUP_REQUEST => "lookup.request",
    /// Trace span: admission / budget stage of a request.
    SPAN_STAGE_ADMIT => "stage.admit",
    /// Trace span: request-body decode stage.
    SPAN_STAGE_DECODE => "stage.decode",
    /// Trace span: query-embedding encode stage.
    SPAN_STAGE_ENCODE => "stage.encode",
    /// Trace span: ANN / fallback search stage.
    SPAN_STAGE_SEARCH => "stage.search",
    /// Trace span: result ranking + response assembly stage.
    SPAN_STAGE_RANK => "stage.rank",
    /// Trace span: one shard's slice of a scatter-gather search.
    SPAN_STAGE_SHARD => "stage.shard",
    /// Trace span: one pool chunk of a parallel traced region.
    SPAN_POOL_CHUNK => "pool.chunk",
    /// Counter of traces stored in the flight recorder.
    TRACE_RECORDED => "trace.recorded",
    /// Counter of traces promoted to the tail-sampled retained buffer.
    TRACE_RETAINED => "trace.retained",
    /// Counter of traces dropped to flight-recorder slot contention.
    TRACE_DROPPED => "trace.dropped",
}

/// Scoped single-query latency histogram name:
/// `lookup.latency.<scope>` (e.g. `lookup.latency.el_nc`, or a baseline
/// slug from the benchmark harness).
pub fn lookup_latency_scoped(scope: &str) -> String {
    // lint: allow(L002) scoped names are built once when a service is configured, not per query
    format!("{LOOKUP_LATENCY}.{scope}")
}

/// Scoped per-query-in-batch latency histogram name:
/// `lookup.latency.<scope>.bulk`.
pub fn lookup_latency_bulk_scoped(scope: &str) -> String {
    // lint: allow(L002) scoped names are built once when a service is configured, not per query
    format!("{LOOKUP_LATENCY}.{scope}.bulk")
}

/// True when `name` is a registered constant value or an instance of a
/// registered dynamic family (`lookup.latency.*`).
pub fn is_registered(name: &str) -> bool {
    ALL.iter().any(|&(_, v)| v == name)
        || name
            .strip_prefix(LOOKUP_LATENCY)
            .is_some_and(|rest| rest.starts_with('.') && rest.len() > 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn values_and_idents_are_unique() {
        let mut idents = HashSet::new();
        let mut values = HashSet::new();
        for &(ident, value) in ALL {
            assert!(idents.insert(ident), "duplicate constant {ident}");
            assert!(values.insert(value), "duplicate metric name {value}");
        }
    }

    #[test]
    fn values_are_dotted_lowercase() {
        for &(_, value) in ALL {
            assert!(
                value
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "bad metric name {value}"
            );
            assert!(!value.starts_with('.') && !value.ends_with('.'));
        }
    }

    #[test]
    fn scoped_helpers_stay_in_family() {
        assert_eq!(lookup_latency_scoped("el_nc"), "lookup.latency.el_nc");
        assert_eq!(lookup_latency_bulk_scoped("el"), "lookup.latency.el.bulk");
        assert!(is_registered("lookup.latency.el_nc"));
        assert!(is_registered(LOOKUP_BULK));
        assert!(is_registered(LOOKUP_LATENCY));
        assert!(!is_registered("lookup.latency."));
        assert!(!is_registered("lookup.unknown"));
    }
}
