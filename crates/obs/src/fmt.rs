//! Duration formatting from the histograms' native nanoseconds.

/// Formats a nanosecond count compactly at the precision a latency table
/// needs: `800ns`, `12.3µs`, `4.5ms`, `1.50s`.
pub fn fmt_nanos(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// [`fmt_nanos`] for a [`std::time::Duration`].
pub fn fmt_duration(d: std::time::Duration) -> String {
    fmt_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn every_magnitude_has_a_unit() {
        assert_eq!(fmt_nanos(0), "0ns");
        assert_eq!(fmt_nanos(800), "800ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        // the sub-100µs range that the old fmt_duration collapsed to 0.0ms
        assert_eq!(fmt_nanos(45_000), "45.0µs");
        assert_eq!(fmt_nanos(2_500_000), "2.5ms");
        assert_eq!(fmt_nanos(1_500_000_000), "1.50s");
    }

    #[test]
    fn duration_round_trips() {
        assert_eq!(fmt_duration(Duration::from_micros(45)), "45.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(1500)), "1.50s");
    }
}
