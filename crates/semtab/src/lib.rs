//! # emblookup-semtab
//!
//! The application layer of the EmbLookup reproduction: tabular data
//! model, synthetic benchmark datasets (ST-Wikidata / ST-DBPedia / Tough
//! Tables analogues), the four semantic annotation tasks (CEA, CTA, entity
//! disambiguation, data repair), and reimplementations of the five systems
//! whose lookup component the paper accelerates (bbw, MantisTable, JenTab,
//! DoSeR, Katara).

#![warn(missing_docs)]

pub mod csv_io;
pub mod datasets;
pub mod metrics;
pub mod systems;
pub mod table;
pub mod tasks;

pub use datasets::{
    generate_dataset, with_alias_substitution, with_missing, with_noise, Dataset, DatasetConfig,
};
pub use csv_io::{apply_cea_targets, apply_cta_targets, cea_targets_to_csv, cta_targets_to_csv, table_from_csv, table_to_csv};
pub use metrics::PrF;
pub use systems::{
    AnnotationSystem, BbwSystem, DoSerSystem, JenTabSystem, KataraSystem, MantisTableSystem,
    TableAnnotation,
};
pub use table::{Cell, Table};
pub use tasks::{
    run_cea, run_cta, run_data_repair, run_entity_disambiguation, Task, TaskReport, DEFAULT_K,
};
