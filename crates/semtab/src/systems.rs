//! Reimplementations of the five systems whose lookup component the paper
//! replaces with EmbLookup: bbw, MantisTable and JenTab (semantic table
//! annotation), DoSeR (entity disambiguation) and Katara (data repair).
//!
//! Each system is faithful at the level the paper manipulates: they share
//! the candidate-generation step (a pluggable [`LookupService`]) and differ
//! in their post-processing strategy, mirroring the published systems'
//! designs. Lookup time is accounted separately from post-processing so
//! the speedup tables can report the lookup fraction exactly.

use crate::table::Table;
use emblookup_kg::{Candidate, EntityId, KnowledgeGraph, LookupService, TypeId};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Per-table annotation output.
#[derive(Debug, Clone)]
pub struct TableAnnotation {
    /// Predicted entity per cell (`None` = abstain / literal).
    pub cell_entities: Vec<Vec<Option<EntityId>>>,
    /// Predicted type per column (`None` = abstain / literal column).
    pub col_types: Vec<Option<TypeId>>,
    /// Time charged to the lookup service (measured + simulated latency).
    pub lookup_time: Duration,
    /// Time spent in system post-processing.
    pub post_time: Duration,
}

/// A semantic-table-annotation pipeline with a pluggable lookup service.
pub trait AnnotationSystem: Sync {
    /// System name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Annotates one table: CEA for every entity cell, CTA per column.
    fn annotate(
        &self,
        kg: &KnowledgeGraph,
        table: &Table,
        service: &dyn LookupService,
        k: usize,
    ) -> TableAnnotation;
}

/// Fetches candidates for every present entity cell of the table in one
/// batched, timed call. Returns a map `(row, col) → candidates`.
fn fetch_candidates(
    table: &Table,
    service: &dyn LookupService,
    k: usize,
) -> (HashMap<(usize, usize), Vec<Candidate>>, Duration) {
    let coords: Vec<(usize, usize)> = table.entity_cells().map(|(r, c, _)| (r, c)).collect();
    let queries: Vec<&str> = table
        .entity_cells()
        .map(|(_, _, cell)| cell.text.as_str())
        .collect();
    let (results, elapsed) = service.lookup_batch_timed(&queries, k);
    let map = coords.into_iter().zip(results).collect();
    (map, elapsed)
}

/// Majority direct type among a column's predicted entities; ties broken
/// by the smaller type id for determinism.
fn column_majority_type(
    kg: &KnowledgeGraph,
    entities: impl Iterator<Item = EntityId>,
) -> Option<TypeId> {
    let mut votes: HashMap<TypeId, usize> = HashMap::new();
    for e in entities {
        for &t in &kg.entity(e).types {
            *votes.entry(t).or_default() += 1;
        }
    }
    votes
        .into_iter()
        .max_by_key(|&(t, n)| (n, std::cmp::Reverse(t)))
        .map(|(t, _)| t)
}

/// Empty annotation skeleton matching the table's shape.
fn empty_annotation(table: &Table) -> (Vec<Vec<Option<EntityId>>>, Vec<Option<TypeId>>) {
    (
        table
            .rows
            .iter()
            .map(|row| vec![None; row.len()])
            .collect(),
        vec![None; table.num_cols()],
    )
}

// --------------------------------------------------------------------
// bbw
// --------------------------------------------------------------------

/// bbw-style annotation: candidates are re-scored by contextual match —
/// a candidate earns a bonus for every fact connecting it to a top
/// candidate of another cell in the same row ("meta-lookup + contextual
/// matching" in the original system).
pub struct BbwSystem;

impl AnnotationSystem for BbwSystem {
    fn name(&self) -> &'static str {
        "bbw"
    }

    fn annotate(
        &self,
        kg: &KnowledgeGraph,
        table: &Table,
        service: &dyn LookupService,
        k: usize,
    ) -> TableAnnotation {
        let (candidates, lookup_time) = fetch_candidates(table, service, k);
        let start = Instant::now();
        let (mut cells, mut cols) = empty_annotation(table);

        for (r, cell_row) in cells.iter_mut().enumerate() {
            // top candidates of the other cells in this row form the context
            let row_context: Vec<EntityId> = (0..table.num_cols())
                .filter_map(|c| candidates.get(&(r, c)))
                .flat_map(|cands| cands.iter().take(3).map(|c| c.entity))
                .collect();
            for (c, cell) in cell_row.iter_mut().enumerate() {
                let Some(cands) = candidates.get(&(r, c)) else { continue };
                let best = cands
                    .iter()
                    .enumerate()
                    .map(|(rank, cand)| {
                        let context_bonus = row_context
                            .iter()
                            .filter(|&&other| {
                                other != cand.entity
                                    && (kg.connected(cand.entity, other)
                                        || kg.connected(other, cand.entity))
                            })
                            .count();
                        // rank keeps the service's ordering as the prior
                        (cand.entity, context_bonus as i64 * 10 - rank as i64)
                    })
                    .max_by_key(|&(_, s)| s);
                *cell = best.map(|(e, _)| e);
            }
        }
        for c in 0..table.num_cols() {
            if table.col_types[c].is_some() {
                cols[c] = column_majority_type(
                    kg,
                    (0..table.num_rows()).filter_map(|r| cells[r][c]),
                );
            }
        }
        TableAnnotation {
            cell_entities: cells,
            col_types: cols,
            lookup_time,
            post_time: start.elapsed(),
        }
    }
}

// --------------------------------------------------------------------
// MantisTable
// --------------------------------------------------------------------

/// MantisTable-style annotation: a first pass elects each column's
/// majority type from top-1 candidates; a second pass restricts each
/// cell's candidates to the elected type before choosing the best match.
pub struct MantisTableSystem;

impl AnnotationSystem for MantisTableSystem {
    fn name(&self) -> &'static str {
        "MantisTable"
    }

    fn annotate(
        &self,
        kg: &KnowledgeGraph,
        table: &Table,
        service: &dyn LookupService,
        k: usize,
    ) -> TableAnnotation {
        let (candidates, lookup_time) = fetch_candidates(table, service, k);
        let start = Instant::now();
        let (mut cells, mut cols) = empty_annotation(table);

        // phase 1: column type election from top-1 candidates
        let mut elected: Vec<Option<TypeId>> = vec![None; table.num_cols()];
        for (c, slot) in elected.iter_mut().enumerate() {
            if table.col_types[c].is_none() {
                continue;
            }
            *slot = column_majority_type(
                kg,
                (0..table.num_rows())
                    .filter_map(|r| candidates.get(&(r, c)))
                    .filter_map(|cands| cands.first())
                    .map(|cand| cand.entity),
            );
        }

        // phase 2: type-constrained disambiguation
        for ((r, c), cands) in &candidates {
            let pick = match elected[*c] {
                Some(t) => cands
                    .iter()
                    .find(|cand| kg.entity(cand.entity).types.contains(&t))
                    .or_else(|| cands.first()),
                None => cands.first(),
            };
            cells[*r][*c] = pick.map(|cand| cand.entity);
        }
        for c in 0..table.num_cols() {
            if table.col_types[c].is_some() {
                cols[c] = column_majority_type(
                    kg,
                    (0..table.num_rows()).filter_map(|r| cells[r][c]),
                );
            }
        }
        TableAnnotation {
            cell_entities: cells,
            col_types: cols,
            lookup_time,
            post_time: start.elapsed(),
        }
    }
}

// --------------------------------------------------------------------
// JenTab
// --------------------------------------------------------------------

/// JenTab-style annotation: iterative candidate pruning — candidates that
/// lack both row support (no fact link to surviving candidates of the
/// row) and type support (minority type in their column) are removed over
/// a few rounds before final selection.
pub struct JenTabSystem {
    /// Pruning rounds (the original runs create/filter/select loops).
    pub rounds: usize,
}

impl Default for JenTabSystem {
    fn default() -> Self {
        JenTabSystem { rounds: 2 }
    }
}

impl AnnotationSystem for JenTabSystem {
    fn name(&self) -> &'static str {
        "JenTab"
    }

    fn annotate(
        &self,
        kg: &KnowledgeGraph,
        table: &Table,
        service: &dyn LookupService,
        k: usize,
    ) -> TableAnnotation {
        let (fetched, lookup_time) = fetch_candidates(table, service, k);
        let start = Instant::now();
        let mut pools: HashMap<(usize, usize), Vec<Candidate>> = fetched;
        let (mut cells, mut cols) = empty_annotation(table);

        for _ in 0..self.rounds {
            // column type support from current pools
            let mut col_type: Vec<Option<TypeId>> = vec![None; table.num_cols()];
            for (c, slot) in col_type.iter_mut().enumerate() {
                *slot = column_majority_type(
                    kg,
                    (0..table.num_rows())
                        .filter_map(|r| pools.get(&(r, c)))
                        .filter_map(|p| p.first())
                        .map(|cand| cand.entity),
                );
            }
            let snapshot: HashMap<(usize, usize), Vec<EntityId>> = pools
                .iter()
                .map(|(&rc, cands)| (rc, cands.iter().take(3).map(|c| c.entity).collect()))
                .collect();
            for (&(r, c), cands) in pools.iter_mut() {
                if cands.len() <= 1 {
                    continue;
                }
                let keep: Vec<Candidate> = cands
                    .iter()
                    .filter(|cand| {
                        let type_ok = col_type[c]
                            .map(|t| kg.entity(cand.entity).types.contains(&t))
                            .unwrap_or(true);
                        let row_ok = (0..table.num_cols()).any(|c2| {
                            c2 != c
                                && snapshot.get(&(r, c2)).is_some_and(|others| {
                                    others.iter().any(|&o| {
                                        kg.connected(cand.entity, o) || kg.connected(o, cand.entity)
                                    })
                                })
                        });
                        type_ok || row_ok
                    })
                    .cloned()
                    .collect();
                if !keep.is_empty() {
                    *cands = keep;
                }
            }
        }
        for (&(r, c), cands) in &pools {
            cells[r][c] = cands.first().map(|cand| cand.entity);
        }
        for c in 0..table.num_cols() {
            if table.col_types[c].is_some() {
                // JenTab reports the most specific covering type: prefer a
                // child type over its parent when both are voted
                let majority = column_majority_type(
                    kg,
                    (0..table.num_rows()).filter_map(|r| cells[r][c]),
                );
                cols[c] = majority;
            }
        }
        TableAnnotation {
            cell_entities: cells,
            col_types: cols,
            lookup_time,
            post_time: start.elapsed(),
        }
    }
}

// --------------------------------------------------------------------
// DoSeR (entity disambiguation)
// --------------------------------------------------------------------

/// Result of collective disambiguation over a mention list.
#[derive(Debug, Clone)]
pub struct DisambiguationResult {
    /// Chosen entity per mention (`None` = no candidate).
    pub assignments: Vec<Option<EntityId>>,
    /// Time charged to the lookup service.
    pub lookup_time: Duration,
    /// Post-processing time.
    pub post_time: Duration,
}

/// DoSeR-style collective entity disambiguation: candidates of all
/// mentions form a graph (edges = KG facts); scores propagate PageRank-
/// style so candidates coherent with the rest of the list win.
pub struct DoSerSystem {
    /// Propagation damping factor.
    pub damping: f32,
    /// Propagation iterations.
    pub iterations: usize,
}

impl Default for DoSerSystem {
    fn default() -> Self {
        DoSerSystem { damping: 0.6, iterations: 8 }
    }
}

impl DoSerSystem {
    /// Disambiguates a list of mentions collectively.
    pub fn disambiguate(
        &self,
        kg: &KnowledgeGraph,
        mentions: &[&str],
        service: &dyn LookupService,
        k: usize,
    ) -> DisambiguationResult {
        let (pools, lookup_time) = service.lookup_batch_timed(mentions, k);
        let start = Instant::now();

        // flatten candidates into nodes
        let mut nodes: Vec<(usize, EntityId, f32)> = Vec::new(); // (mention, entity, prior)
        for (m, pool) in pools.iter().enumerate() {
            for (rank, cand) in pool.iter().enumerate() {
                // rank-based prior is robust across score scales
                nodes.push((m, cand.entity, 1.0 / (1.0 + rank as f32)));
            }
        }
        // adjacency among candidates of different mentions
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                if nodes[i].0 == nodes[j].0 {
                    continue;
                }
                if kg.connected(nodes[i].1, nodes[j].1) || kg.connected(nodes[j].1, nodes[i].1) {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        // score propagation
        let mut score: Vec<f32> = nodes.iter().map(|&(_, _, p)| p).collect();
        for _ in 0..self.iterations {
            let mut next = vec![0.0f32; nodes.len()];
            for i in 0..nodes.len() {
                let spread: f32 = adj[i]
                    .iter()
                    .map(|&j| score[j] / adj[j].len().max(1) as f32)
                    .sum();
                next[i] = (1.0 - self.damping) * nodes[i].2 + self.damping * spread;
            }
            score = next;
        }
        // argmax per mention
        let mut assignments: Vec<Option<EntityId>> = vec![None; mentions.len()];
        let mut best: Vec<f32> = vec![f32::NEG_INFINITY; mentions.len()];
        for (i, &(m, e, _)) in nodes.iter().enumerate() {
            if score[i] > best[m] {
                best[m] = score[i];
                assignments[m] = Some(e);
            }
        }
        DisambiguationResult {
            assignments,
            lookup_time,
            post_time: start.elapsed(),
        }
    }
}

// --------------------------------------------------------------------
// Katara (data repair)
// --------------------------------------------------------------------

/// Result of repairing one table.
#[derive(Debug, Clone)]
pub struct RepairResult {
    /// Imputed entity per missing cell, keyed by `(row, col)`.
    pub imputations: HashMap<(usize, usize), EntityId>,
    /// Time charged to the lookup service.
    pub lookup_time: Duration,
    /// Post-processing time.
    pub post_time: Duration,
}

/// Katara-style repair: discover the dominant KG property linking each
/// column pair from complete rows, then impute missing cells by following
/// that property from the row's other annotated entities.
pub struct KataraSystem;

impl KataraSystem {
    /// Repairs the missing entity cells of `table`.
    pub fn repair(
        &self,
        kg: &KnowledgeGraph,
        table: &Table,
        service: &dyn LookupService,
        k: usize,
    ) -> RepairResult {
        // annotate present cells (top-1) to ground the pattern discovery
        let (candidates, lookup_time) = fetch_candidates(table, service, k);
        let start = Instant::now();
        let mut annotated: HashMap<(usize, usize), EntityId> = HashMap::new();
        for (&rc, cands) in &candidates {
            if let Some(first) = cands.first() {
                annotated.insert(rc, first.entity);
            }
        }

        // discover dominant property per ordered column pair (src -> dst)
        let ncols = table.num_cols();
        let mut pair_votes: HashMap<(usize, usize, emblookup_kg::PropertyId), usize> =
            HashMap::new();
        for r in 0..table.num_rows() {
            for src in 0..ncols {
                for dst in 0..ncols {
                    if src == dst {
                        continue;
                    }
                    let (Some(&es), Some(&ed)) =
                        (annotated.get(&(r, src)), annotated.get(&(r, dst)))
                    else {
                        continue;
                    };
                    for fact in kg.facts_of(es) {
                        if matches!(fact.object, emblookup_kg::Object::Entity(o) if o == ed) {
                            *pair_votes.entry((src, dst, fact.property)).or_default() += 1;
                        }
                    }
                }
            }
        }
        let mut dominant: HashMap<(usize, usize), emblookup_kg::PropertyId> = HashMap::new();
        for (&(src, dst, prop), &votes) in &pair_votes {
            let best = dominant.get(&(src, dst));
            let best_votes = best
                .and_then(|p| pair_votes.get(&(src, dst, *p)))
                .copied()
                .unwrap_or(0);
            if votes > best_votes {
                dominant.insert((src, dst), prop);
            }
        }

        // impute: follow the dominant property from annotated row peers
        let mut imputations = HashMap::new();
        for r in 0..table.num_rows() {
            for c in 0..ncols {
                let cell = table.cell(r, c);
                if !cell.missing {
                    continue;
                }
                'src: for src in 0..ncols {
                    if src == c {
                        continue;
                    }
                    let Some(&es) = annotated.get(&(r, src)) else { continue };
                    if let Some(&prop) = dominant.get(&(src, c)) {
                        for fact in kg.facts_of(es) {
                            if fact.property == prop {
                                if let emblookup_kg::Object::Entity(o) = fact.object {
                                    imputations.insert((r, c), o);
                                    break 'src;
                                }
                            }
                        }
                    }
                    // reverse direction: dst -> src pattern
                    if let Some(&prop) = dominant.get(&(c, src)) {
                        for fact in kg.facts_about(es) {
                            if fact.property == prop {
                                imputations.insert((r, c), fact.subject);
                                break 'src;
                            }
                        }
                    }
                }
            }
        }
        RepairResult {
            imputations,
            lookup_time,
            post_time: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate_dataset, with_missing, DatasetConfig};
    use emblookup_baselines::ExactMatchService;
    use emblookup_kg::{generate, SynthKgConfig};

    fn setup() -> (emblookup_kg::SynthKg, crate::datasets::Dataset) {
        let s = generate(SynthKgConfig::small(30));
        let ds = generate_dataset(&s, &DatasetConfig::tiny(30));
        (s, ds)
    }

    #[test]
    fn all_three_sta_systems_annotate_clean_tables_well() {
        let (s, ds) = setup();
        let service = ExactMatchService::new(&s.kg, false);
        let systems: Vec<Box<dyn AnnotationSystem>> = vec![
            Box::new(BbwSystem),
            Box::new(MantisTableSystem),
            Box::new(JenTabSystem::default()),
        ];
        for system in &systems {
            let mut correct = 0;
            let mut total = 0;
            for t in &ds.tables {
                let ann = system.annotate(&s.kg, t, &service, 10);
                for (r, c, cell) in t.entity_cells() {
                    total += 1;
                    if ann.cell_entities[r][c] == cell.truth {
                        correct += 1;
                    }
                }
            }
            // exact labels + exact-match lookup: the only errors come from
            // ambiguous labels, which context should mostly resolve
            assert!(
                correct * 10 >= total * 8,
                "{}: only {correct}/{total} CEA correct",
                system.name()
            );
        }
    }

    #[test]
    fn cta_matches_subject_column_type() {
        let (s, ds) = setup();
        let service = ExactMatchService::new(&s.kg, false);
        let system = MantisTableSystem;
        let mut hit = 0;
        let mut total = 0;
        for t in &ds.tables {
            let ann = system.annotate(&s.kg, t, &service, 10);
            for c in 0..t.num_cols() {
                if let Some(truth) = t.col_types[c] {
                    total += 1;
                    if ann.col_types[c] == Some(truth) {
                        hit += 1;
                    }
                }
            }
        }
        assert!(hit * 10 >= total * 7, "CTA {hit}/{total}");
    }

    #[test]
    fn doser_resolves_ambiguity_through_coherence() {
        let (s, _) = setup();
        let service = ExactMatchService::new(&s.kg, false);
        let doser = DoSerSystem::default();
        // mentions: a city and its country — coherent candidates connect
        let city = s.cities[0];
        let country = s
            .kg
            .facts_of(city)
            .find_map(|f| match (f.property == s.props.located_in, &f.object) {
                (true, emblookup_kg::Object::Entity(o)) => Some(*o),
                _ => None,
            })
            .unwrap();
        let m1 = s.kg.label(city).to_string();
        let m2 = s.kg.label(country).to_string();
        let result = doser.disambiguate(&s.kg, &[&m1, &m2], &service, 10);
        assert_eq!(result.assignments[0], Some(city));
        assert_eq!(result.assignments[1], Some(country));
    }

    #[test]
    fn katara_imputes_missing_related_cells() {
        // Katara's pattern discovery needs enough intact rows per table to
        // vote in the dominant property, so this test uses longer tables
        // than the `tiny` config used elsewhere.
        let (s, _) = setup();
        let cfg = DatasetConfig { tables: 4, rows: (10, 16), seed: 30, name: "repair".into() };
        let ds = generate_dataset(&s, &cfg);
        let broken = with_missing(&ds, 0.3, 31);
        let service = ExactMatchService::new(&s.kg, false);
        let katara = KataraSystem;
        let mut correct = 0;
        let mut total = 0;
        for t in &broken.tables {
            let result = katara.repair(&s.kg, t, &service, 10);
            for r in 0..t.num_rows() {
                for c in 0..t.num_cols() {
                    let cell = t.cell(r, c);
                    if cell.missing {
                        total += 1;
                        if result.imputations.get(&(r, c)) == cell.truth.as_ref() {
                            correct += 1;
                        }
                    }
                }
            }
        }
        assert!(total > 0, "no missing cells generated");
        assert!(
            correct * 2 >= total,
            "Katara imputed only {correct}/{total}"
        );
    }

    #[test]
    fn lookup_time_is_separated_from_post_time() {
        let (s, ds) = setup();
        let service = ExactMatchService::new(&s.kg, false);
        let ann = BbwSystem.annotate(&s.kg, &ds.tables[0], &service, 5);
        // both durations exist and are small for the tiny table
        assert!(ann.lookup_time < Duration::from_secs(1));
        assert!(ann.post_time < Duration::from_secs(1));
    }
}

