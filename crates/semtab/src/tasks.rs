//! Task-level evaluation: runs a system + lookup service over a dataset
//! and reports the F-score and timing split the paper's tables use.

use crate::datasets::Dataset;
use crate::metrics::PrF;
use crate::systems::{AnnotationSystem, DoSerSystem, KataraSystem};
use emblookup_kg::{KnowledgeGraph, LookupService};
use std::time::Duration;

/// The four semantic annotation tasks of §II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Cell entity annotation.
    Cea,
    /// Column type annotation.
    Cta,
    /// Entity disambiguation.
    EntityDisambiguation,
    /// Data repair.
    DataRepair,
}

impl Task {
    /// Paper-style display name.
    pub fn label(&self) -> &'static str {
        match self {
            Task::Cea => "CEA",
            Task::Cta => "CTA",
            Task::EntityDisambiguation => "Entity Disambiguation",
            Task::DataRepair => "Data Repair",
        }
    }
}

/// Outcome of running one task over one dataset with one lookup service.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Which task ran.
    pub task: Task,
    /// Accuracy tally.
    pub metrics: PrF,
    /// Total time charged to the lookup service.
    pub lookup_time: Duration,
    /// Total post-processing time.
    pub post_time: Duration,
    /// Number of evaluated items (cells / columns / mentions).
    pub items: usize,
}

impl TaskReport {
    /// The F-score the paper reports.
    pub fn f1(&self) -> f64 {
        self.metrics.f1()
    }
}

/// Candidate-set size used throughout the evaluation; the paper retrieves
/// 20–100 neighbours and post-processes.
pub const DEFAULT_K: usize = 20;

/// Runs CEA: per entity cell, does the system's chosen entity match the
/// ground truth?
pub fn run_cea(
    kg: &KnowledgeGraph,
    dataset: &Dataset,
    system: &dyn AnnotationSystem,
    service: &dyn LookupService,
    k: usize,
) -> TaskReport {
    let mut metrics = PrF::default();
    let mut lookup_time = Duration::ZERO;
    let mut post_time = Duration::ZERO;
    let mut items = 0;
    for table in &dataset.tables {
        let ann = system.annotate(kg, table, service, k);
        lookup_time += ann.lookup_time;
        post_time += ann.post_time;
        for (r, c, cell) in table.entity_cells() {
            let predicted = ann.cell_entities[r][c];
            metrics.record(predicted.is_some(), predicted == cell.truth);
            items += 1;
        }
    }
    TaskReport { task: Task::Cea, metrics, lookup_time, post_time, items }
}

/// Runs CTA: per typed column, does the system's elected type match?
pub fn run_cta(
    kg: &KnowledgeGraph,
    dataset: &Dataset,
    system: &dyn AnnotationSystem,
    service: &dyn LookupService,
    k: usize,
) -> TaskReport {
    let mut metrics = PrF::default();
    let mut lookup_time = Duration::ZERO;
    let mut post_time = Duration::ZERO;
    let mut items = 0;
    for table in &dataset.tables {
        let ann = system.annotate(kg, table, service, k);
        lookup_time += ann.lookup_time;
        post_time += ann.post_time;
        for c in 0..table.num_cols() {
            let Some(truth) = table.col_types[c] else { continue };
            let predicted = ann.col_types[c];
            // a parent type counts as correct only if it equals the truth;
            // the paper scores the most specific annotation
            metrics.record(predicted.is_some(), predicted == Some(truth));
            items += 1;
        }
    }
    TaskReport { task: Task::Cta, metrics, lookup_time, post_time, items }
}

/// Runs entity disambiguation: each table's entity cells of each row form
/// a mention list disambiguated collectively.
pub fn run_entity_disambiguation(
    kg: &KnowledgeGraph,
    dataset: &Dataset,
    system: &DoSerSystem,
    service: &dyn LookupService,
    k: usize,
) -> TaskReport {
    let mut metrics = PrF::default();
    let mut lookup_time = Duration::ZERO;
    let mut post_time = Duration::ZERO;
    let mut items = 0;
    for table in &dataset.tables {
        for row in &table.rows {
            let mentions: Vec<&str> = row
                .iter()
                .filter(|c| c.truth.is_some() && !c.missing)
                .map(|c| c.text.as_str())
                .collect();
            if mentions.len() < 2 {
                continue;
            }
            let truths: Vec<_> = row
                .iter()
                .filter(|c| !c.missing)
                .filter_map(|c| c.truth)
                .collect();
            let result = system.disambiguate(kg, &mentions, service, k);
            lookup_time += result.lookup_time;
            post_time += result.post_time;
            for (assigned, truth) in result.assignments.iter().zip(&truths) {
                metrics.record(assigned.is_some(), *assigned == Some(*truth));
                items += 1;
            }
        }
    }
    TaskReport {
        task: Task::EntityDisambiguation,
        metrics,
        lookup_time,
        post_time,
        items,
    }
}

/// Runs data repair over a dataset whose cells were blanked with
/// [`crate::datasets::with_missing`]: does the imputed entity match the
/// original?
pub fn run_data_repair(
    kg: &KnowledgeGraph,
    dataset: &Dataset,
    system: &KataraSystem,
    service: &dyn LookupService,
    k: usize,
) -> TaskReport {
    let mut metrics = PrF::default();
    let mut lookup_time = Duration::ZERO;
    let mut post_time = Duration::ZERO;
    let mut items = 0;
    for table in &dataset.tables {
        let result = system.repair(kg, table, service, k);
        lookup_time += result.lookup_time;
        post_time += result.post_time;
        for r in 0..table.num_rows() {
            for c in 0..table.num_cols() {
                let cell = table.cell(r, c);
                if !cell.missing {
                    continue;
                }
                let imputed = result.imputations.get(&(r, c)).copied();
                metrics.record(imputed.is_some(), imputed == cell.truth);
                items += 1;
            }
        }
    }
    TaskReport { task: Task::DataRepair, metrics, lookup_time, post_time, items }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate_dataset, with_missing, with_noise, DatasetConfig};
    use crate::systems::BbwSystem;
    use emblookup_baselines::{ExactMatchService, LevenshteinService};
    use emblookup_kg::{generate, SynthKgConfig};

    #[test]
    fn cea_perfect_on_clean_data_with_exact_lookup_drops_under_noise() {
        let s = generate(SynthKgConfig::small(40));
        let ds = generate_dataset(&s, &DatasetConfig::tiny(40));
        let service = ExactMatchService::new(&s.kg, false);

        let clean = run_cea(&s.kg, &ds, &BbwSystem, &service, 10);
        assert!(clean.f1() > 0.8, "clean F1 {}", clean.f1());

        let noisy_ds = with_noise(&ds, 0.5, 41);
        let noisy = run_cea(&s.kg, &noisy_ds, &BbwSystem, &service, 10);
        assert!(
            noisy.f1() < clean.f1() - 0.2,
            "noise did not hurt exact match: {} vs {}",
            noisy.f1(),
            clean.f1()
        );
    }

    #[test]
    fn levenshtein_is_more_robust_than_exact_under_noise() {
        let s = generate(SynthKgConfig::small(42));
        let ds = generate_dataset(&s, &DatasetConfig::tiny(42));
        let noisy_ds = with_noise(&ds, 0.6, 43);
        let exact = ExactMatchService::new(&s.kg, false);
        let lev = LevenshteinService::new(&s.kg, false, 3);
        let f_exact = run_cea(&s.kg, &noisy_ds, &BbwSystem, &exact, 10).f1();
        let f_lev = run_cea(&s.kg, &noisy_ds, &BbwSystem, &lev, 10).f1();
        assert!(
            f_lev > f_exact,
            "Levenshtein {f_lev} not better than exact {f_exact} under noise"
        );
    }

    #[test]
    fn cta_reports_column_items() {
        let s = generate(SynthKgConfig::small(44));
        let ds = generate_dataset(&s, &DatasetConfig::tiny(44));
        let service = ExactMatchService::new(&s.kg, false);
        let report = run_cta(&s.kg, &ds, &BbwSystem, &service, 10);
        // one CTA item per typed column; the per-table count depends on
        // which templates the seed draws (wide person tables have three)
        let typed_cols: usize = ds
            .tables
            .iter()
            .map(|t| t.col_types.iter().filter(|c| c.is_some()).count())
            .sum();
        assert!(typed_cols >= 8, "tiny dataset too small: {typed_cols}");
        assert_eq!(report.items, typed_cols);
        assert!(report.f1() > 0.6, "CTA F1 {}", report.f1());
    }

    #[test]
    fn entity_disambiguation_runs_per_row() {
        let s = generate(SynthKgConfig::small(45));
        let ds = generate_dataset(&s, &DatasetConfig::tiny(45));
        let service = ExactMatchService::new(&s.kg, false);
        let report = run_entity_disambiguation(
            &s.kg, &ds, &DoSerSystem::default(), &service, 10,
        );
        assert!(report.items > 0);
        assert!(report.f1() > 0.7, "EA F1 {}", report.f1());
    }

    #[test]
    fn data_repair_scores_missing_cells_only() {
        let s = generate(SynthKgConfig::small(46));
        let ds = with_missing(&generate_dataset(&s, &DatasetConfig::tiny(46)), 0.25, 46);
        let service = ExactMatchService::new(&s.kg, false);
        let report = run_data_repair(&s.kg, &ds, &KataraSystem, &service, 10);
        assert!(report.items > 0);
        let missing: usize = ds
            .tables
            .iter()
            .flat_map(|t| t.rows.iter().flatten())
            .filter(|c| c.missing)
            .count();
        assert_eq!(report.items, missing);
    }
}
