//! Evaluation metrics: precision, recall and the F-score the paper reports.

/// Precision/recall/F1 over a set of predictions against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrF {
    /// Correct predictions.
    pub correct: usize,
    /// Total predictions made.
    pub predicted: usize,
    /// Total ground-truth items.
    pub truth: usize,
}

impl PrF {
    /// Records one prediction outcome. `predicted = false` models an
    /// abstention (no candidate found).
    pub fn record(&mut self, predicted: bool, correct: bool) {
        self.truth += 1;
        if predicted {
            self.predicted += 1;
            if correct {
                self.correct += 1;
            }
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: PrF) {
        self.correct += other.correct;
        self.predicted += other.predicted;
        self.truth += other.truth;
    }

    /// Precision (1.0 when nothing was predicted).
    pub fn precision(&self) -> f64 {
        if self.predicted == 0 {
            return 1.0;
        }
        self.correct as f64 / self.predicted as f64
    }

    /// Recall (1.0 when there is no ground truth).
    pub fn recall(&self) -> f64 {
        if self.truth == 0 {
            return 1.0;
        }
        self.correct as f64 / self.truth as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        // lint: allow(L007) p and r are ratios in [0, 1]; exact zero is the only divide-by-zero guard needed
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let mut m = PrF::default();
        for _ in 0..10 {
            m.record(true, true);
        }
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn abstentions_hurt_recall_not_precision() {
        let mut m = PrF::default();
        m.record(true, true);
        m.record(false, false);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 0.5);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_predictions_hurt_both() {
        let mut m = PrF::default();
        m.record(true, true);
        m.record(true, false);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.f1(), 0.5);
    }

    #[test]
    fn empty_tally_is_safe() {
        let m = PrF::default();
        assert_eq!(m.f1(), 1.0); // vacuous truth
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PrF { correct: 1, predicted: 2, truth: 3 };
        a.merge(PrF { correct: 2, predicted: 2, truth: 2 });
        assert_eq!(a, PrF { correct: 3, predicted: 4, truth: 5 });
    }
}
