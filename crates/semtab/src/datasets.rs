//! Synthetic benchmark datasets mirroring ST-Wikidata (SemTab 2020),
//! ST-DBPedia (SemTab 2019) and Tough Tables.
//!
//! Tables are sampled from a synthetic KG so that ground truth is exact:
//! a table's subject column holds entities of one type; further columns
//! hold fact-related entities (a city's country, a person's employer) and
//! literals. Dataset variants inject noise into 10% of cells (the paper's
//! *error* variant) or substitute aliases (the semantic-lookup variant).

use crate::table::{Cell, Table};
use emblookup_kg::synth::SynthKg;
use emblookup_kg::{EntityId, Object, PropertyId};
use emblookup_text::{NoiseInjector, NoiseKind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A generated benchmark dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Display name ("ST-Wikidata", …).
    pub name: String,
    /// The tables.
    pub tables: Vec<Table>,
}

impl Dataset {
    /// Total annotatable entity cells across tables (the paper's
    /// "#Cells to annotate" row of Table I).
    pub fn num_entity_cells(&self) -> usize {
        self.tables.iter().map(Table::num_entity_cells).sum()
    }

    /// Mean rows per table.
    pub fn avg_rows(&self) -> f64 {
        if self.tables.is_empty() {
            return 0.0;
        }
        self.tables.iter().map(|t| t.num_rows() as f64).sum::<f64>() / self.tables.len() as f64
    }

    /// Mean columns per table.
    pub fn avg_cols(&self) -> f64 {
        if self.tables.is_empty() {
            return 0.0;
        }
        self.tables.iter().map(|t| t.num_cols() as f64).sum::<f64>() / self.tables.len() as f64
    }
}

/// Configuration for dataset generation.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Number of tables.
    pub tables: usize,
    /// Row-count range per table.
    pub rows: (usize, usize),
    /// RNG seed.
    pub seed: u64,
    /// Dataset display name.
    pub name: String,
}

impl DatasetConfig {
    /// Small config for tests.
    pub fn tiny(seed: u64) -> Self {
        DatasetConfig { tables: 4, rows: (3, 6), seed, name: "tiny".into() }
    }

    /// ST-Wikidata-analogue scale: many small tables (the real dataset
    /// averages 6.6 rows over 109K tables; we scale the count down).
    pub fn st_wikidata(seed: u64) -> Self {
        DatasetConfig { tables: 120, rows: (4, 9), seed, name: "ST-Wikidata".into() }
    }

    /// ST-DBPedia-analogue scale: fewer, longer tables (26.2 avg rows).
    pub fn st_dbpedia(seed: u64) -> Self {
        DatasetConfig { tables: 40, rows: (18, 34), seed, name: "ST-DBPedia".into() }
    }

    /// Tough-Tables analogue: few, very large, deliberately noisy tables.
    pub fn tough_tables(seed: u64) -> Self {
        DatasetConfig { tables: 8, rows: (60, 120), seed, name: "Tough Tables".into() }
    }
}

/// Generates a clean dataset over the synthetic KG.
pub fn generate_dataset(synth: &SynthKg, config: &DatasetConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut tables = Vec::with_capacity(config.tables);
    for id in 0..config.tables {
        tables.push(generate_table(synth, id as u32, &mut rng, config));
    }
    Dataset { name: config.name.clone(), tables }
}

/// Table templates: (subject pool chooser, related columns).
fn generate_table(synth: &SynthKg, id: u32, rng: &mut StdRng, config: &DatasetConfig) -> Table {
    let kg = &synth.kg;
    let n_rows = rng.gen_range(config.rows.0..=config.rows.1);
    // template: subject type and the property used for the related column;
    // template 3 is a wide person table with two related entity columns
    let template = rng.gen_range(0..4usize);
    if template == 3 {
        return generate_person_table(synth, id, rng, n_rows);
    }
    let (pool, subject_type, rel_prop, rel_type): (&[EntityId], _, PropertyId, _) = match template {
        0 => (
            &synth.cities,
            synth.types.city,
            synth.props.located_in,
            synth.types.country,
        ),
        1 => (
            &synth.persons,
            synth.types.person,
            synth.props.born_in,
            synth.types.city,
        ),
        _ => (
            &synth.organizations,
            synth.types.organization,
            synth.props.headquartered_in,
            synth.types.city,
        ),
    };
    let mut rows = Vec::with_capacity(n_rows);
    let mut chosen: Vec<EntityId> = pool.to_vec();
    chosen.shuffle(rng);
    chosen.truncate(n_rows);
    for &subject in &chosen {
        let related = kg
            .facts_of(subject)
            .find(|f| f.property == rel_prop)
            .and_then(|f| match f.object {
                Object::Entity(o) => Some(o),
                Object::Literal(_) => None,
            });
        let mut row = vec![Cell::entity(kg.label(subject), subject)];
        match related {
            Some(o) => row.push(Cell::entity(kg.label(o), o)),
            None => row.push(Cell::literal("-")),
        }
        // a literal column keeps the table realistic
        row.push(Cell::literal(format!("{}", rng.gen_range(1000..999999))));
        rows.push(row);
    }
    Table {
        id,
        rows,
        col_types: vec![Some(subject_type), Some(rel_type), None],
    }
}

/// Wide person table: person | birth city | employer | literal year.
/// Two related entity columns make row-context disambiguation matter.
fn generate_person_table(synth: &SynthKg, id: u32, rng: &mut StdRng, n_rows: usize) -> Table {
    let kg = &synth.kg;
    let mut chosen: Vec<EntityId> = synth.persons.clone();
    chosen.shuffle(rng);
    chosen.truncate(n_rows);
    let mut rows = Vec::with_capacity(chosen.len());
    for &person in &chosen {
        let related = |prop: PropertyId| -> Option<EntityId> {
            kg.facts_of(person).find(|f| f.property == prop).and_then(|f| match f.object {
                Object::Entity(o) => Some(o),
                Object::Literal(_) => None,
            })
        };
        let mut row = vec![Cell::entity(kg.label(person), person)];
        match related(synth.props.born_in) {
            Some(o) => row.push(Cell::entity(kg.label(o), o)),
            None => row.push(Cell::literal("-")),
        }
        match related(synth.props.works_for) {
            Some(o) => row.push(Cell::entity(kg.label(o), o)),
            None => row.push(Cell::literal("-")),
        }
        row.push(Cell::literal(format!("{}", rng.gen_range(1900..2020))));
        rows.push(row);
    }
    Table {
        id,
        rows,
        col_types: vec![
            Some(synth.types.person),
            Some(synth.types.city),
            Some(synth.types.organization),
            None,
        ],
    }
}

/// Returns a copy of `dataset` with `fraction` of the entity cells
/// corrupted by the paper's misspelling families (§IV-B).
pub fn with_noise(dataset: &Dataset, fraction: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let injector = NoiseInjector::with_kinds(vec![
        NoiseKind::DropChar,
        NoiseKind::InsertChar,
        NoiseKind::SubstituteChar,
        NoiseKind::TransposeChars,
        NoiseKind::SwapTokens,
        NoiseKind::Abbreviate,
    ]);
    let mut out = dataset.clone();
    for table in &mut out.tables {
        for row in &mut table.rows {
            for cell in row.iter_mut() {
                if cell.truth.is_some() && !cell.missing && rng.gen_bool(fraction) {
                    cell.text = injector.corrupt(&cell.text, &mut rng);
                }
            }
        }
    }
    out
}

/// Returns a copy of `dataset` where every entity cell's text is replaced
/// by a uniformly chosen alias of its ground-truth entity (the semantic
/// lookup variant of §IV-D). Entities without aliases keep their label.
pub fn with_alias_substitution(dataset: &Dataset, synth: &SynthKg, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = dataset.clone();
    for table in &mut out.tables {
        for row in &mut table.rows {
            for cell in row.iter_mut() {
                let Some(truth) = cell.truth else { continue };
                if cell.missing {
                    continue;
                }
                let aliases = synth.kg.aliases(truth);
                if !aliases.is_empty() {
                    cell.text = aliases[rng.gen_range(0..aliases.len())].clone();
                }
            }
        }
    }
    out
}

/// Returns a copy of `dataset` with `fraction` of present entity cells
/// blanked out — the data-repair (Katara) workload, which the paper builds
/// by replacing 10% of cells with missing values.
pub fn with_missing(dataset: &Dataset, fraction: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = dataset.clone();
    for table in &mut out.tables {
        for row in &mut table.rows {
            for cell in row.iter_mut() {
                if cell.truth.is_some() && !cell.missing && rng.gen_bool(fraction) {
                    cell.missing = true;
                    cell.text = String::new();
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKgConfig};

    fn synth() -> SynthKg {
        generate(SynthKgConfig::small(20))
    }

    #[test]
    fn tables_are_well_formed_with_truth() {
        let s = synth();
        let ds = generate_dataset(&s, &DatasetConfig::tiny(1));
        assert_eq!(ds.tables.len(), 4);
        for t in &ds.tables {
            t.validate().unwrap();
            for (_, _, cell) in t.entity_cells() {
                let truth = cell.truth.unwrap();
                // text matches the label of the ground-truth entity
                assert_eq!(cell.text, s.kg.label(truth));
            }
        }
        assert!(ds.num_entity_cells() > 0);
    }

    #[test]
    fn subject_column_type_matches_members() {
        let s = synth();
        let ds = generate_dataset(&s, &DatasetConfig::tiny(2));
        for t in &ds.tables {
            let subject_type = t.col_types[0].unwrap();
            for row in &t.rows {
                let truth = row[0].truth.unwrap();
                assert!(s.kg.entity(truth).types.contains(&subject_type));
            }
        }
    }

    #[test]
    fn noise_changes_about_the_right_fraction() {
        let s = synth();
        let clean = generate_dataset(&s, &DatasetConfig::st_wikidata(3));
        let noisy = with_noise(&clean, 0.3, 3);
        let mut changed = 0;
        let mut total = 0;
        for (tc, tn) in clean.tables.iter().zip(&noisy.tables) {
            for (rc, rn) in tc.rows.iter().zip(&tn.rows) {
                for (cc, cn) in rc.iter().zip(rn) {
                    if cc.truth.is_some() {
                        total += 1;
                        if cc.text != cn.text {
                            changed += 1;
                        }
                    }
                }
            }
        }
        let rate = changed as f64 / total as f64;
        assert!((0.2..0.4).contains(&rate), "noise rate {rate}");
    }

    #[test]
    fn alias_substitution_preserves_truth() {
        let s = synth();
        let clean = generate_dataset(&s, &DatasetConfig::tiny(4));
        let aliased = with_alias_substitution(&clean, &s, 4);
        let mut substituted = 0;
        for (tc, ta) in clean.tables.iter().zip(&aliased.tables) {
            for (rc, ra) in tc.rows.iter().zip(&ta.rows) {
                for (cc, ca) in rc.iter().zip(ra) {
                    assert_eq!(cc.truth, ca.truth);
                    if let Some(truth) = cc.truth {
                        if cc.text != ca.text {
                            substituted += 1;
                            // substituted text must be a registered alias
                            assert!(s.kg.aliases(truth).contains(&ca.text));
                        }
                    }
                }
            }
        }
        assert!(substituted > 0, "no aliases substituted");
    }

    #[test]
    fn missing_marks_cells() {
        let s = synth();
        let clean = generate_dataset(&s, &DatasetConfig::tiny(5));
        let broken = with_missing(&clean, 0.5, 5);
        let missing: usize = broken
            .tables
            .iter()
            .flat_map(|t| t.rows.iter())
            .flatten()
            .filter(|c| c.missing)
            .count();
        assert!(missing > 0);
        // entity_cells skips missing ones
        assert!(broken.num_entity_cells() < clean.num_entity_cells());
    }

    #[test]
    fn scale_presets_have_expected_shape() {
        let s = synth();
        let wd = generate_dataset(&s, &DatasetConfig::st_wikidata(6));
        let db = generate_dataset(&s, &DatasetConfig::st_dbpedia(6));
        let tt = generate_dataset(&s, &DatasetConfig::tough_tables(6));
        assert!(wd.tables.len() > db.tables.len());
        assert!(db.avg_rows() > wd.avg_rows());
        assert!(tt.avg_rows() > db.avg_rows());
    }

    #[test]
    fn deterministic_given_seed() {
        let s = synth();
        let a = generate_dataset(&s, &DatasetConfig::tiny(9));
        let b = generate_dataset(&s, &DatasetConfig::tiny(9));
        assert_eq!(a.tables[0].rows[0][0].text, b.tables[0].rows[0][0].text);
    }
}

// Property tests need the external `proptest` crate, unavailable in
// offline builds; enable with `--features proptest-tests` when vendored.
#[cfg(all(test, feature = "proptest-tests"))]
mod proptests {
    use super::*;
    use emblookup_kg::generate as gen_kg;
    use emblookup_kg::SynthKgConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn generated_tables_are_rectangular_with_valid_truth(seed in 0u64..40) {
            let synth = gen_kg(SynthKgConfig::tiny(seed));
            let ds = generate_dataset(&synth, &DatasetConfig::tiny(seed));
            for t in &ds.tables {
                prop_assert!(t.validate().is_ok());
                for (_, _, cell) in t.entity_cells() {
                    let truth = cell.truth.unwrap();
                    prop_assert!((truth.0 as usize) < synth.kg.num_entities());
                }
            }
        }

        #[test]
        fn noise_preserves_truth_and_shape(seed in 0u64..40, frac in 0.0f64..1.0) {
            let synth = gen_kg(SynthKgConfig::tiny(seed));
            let ds = generate_dataset(&synth, &DatasetConfig::tiny(seed));
            let noisy = with_noise(&ds, frac, seed);
            prop_assert_eq!(ds.tables.len(), noisy.tables.len());
            for (a, b) in ds.tables.iter().zip(&noisy.tables) {
                prop_assert_eq!(a.num_rows(), b.num_rows());
                for (ra, rb) in a.rows.iter().zip(&b.rows) {
                    for (ca, cb) in ra.iter().zip(rb) {
                        prop_assert_eq!(ca.truth, cb.truth);
                        prop_assert_eq!(ca.missing, cb.missing);
                    }
                }
            }
        }

        #[test]
        fn missing_fraction_is_monotone(seed in 0u64..20) {
            let synth = gen_kg(SynthKgConfig::tiny(seed));
            let ds = generate_dataset(&synth, &DatasetConfig::tiny(seed));
            let count = |d: &Dataset| -> usize {
                d.tables.iter().flat_map(|t| t.rows.iter().flatten()).filter(|c| c.missing).count()
            };
            let low = with_missing(&ds, 0.1, seed);
            let high = with_missing(&ds, 0.9, seed);
            prop_assert!(count(&high) >= count(&low));
        }
    }
}
