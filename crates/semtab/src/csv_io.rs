//! CSV interop in the SemTab challenge layout: one CSV per table plus the
//! target/ground-truth files (`CEA_targets`: table, row, col, entity).
//! Lets users run the pipelines on their own tabular corpora.

use crate::datasets::Dataset;
use crate::table::{Cell, Table};
use emblookup_kg::{EntityId, TypeId};
use std::fmt::Write as _;

/// Serializes one table as CSV (RFC-4180-style quoting of `",\n`).
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    for row in &table.rows {
        let line: Vec<String> = row.iter().map(|c| quote(&c.text)).collect();
        let _ = writeln!(out, "{}", line.join(","));
    }
    out
}

/// Serializes the CEA ground truth of a dataset in SemTab layout:
/// `table_id,row,col,entity_id` per annotated cell.
pub fn cea_targets_to_csv(dataset: &Dataset) -> String {
    let mut out = String::new();
    for table in &dataset.tables {
        for (r, c, cell) in table.entity_cells() {
            if let Some(truth) = cell.truth {
                let _ = writeln!(out, "{},{},{},{}", table.id, r, c, truth.0);
            }
        }
    }
    out
}

/// Serializes the CTA ground truth: `table_id,col,type_id` per typed column.
pub fn cta_targets_to_csv(dataset: &Dataset) -> String {
    let mut out = String::new();
    for table in &dataset.tables {
        for (c, t) in table.col_types.iter().enumerate() {
            if let Some(t) = t {
                let _ = writeln!(out, "{},{},{}", table.id, c, t.0);
            }
        }
    }
    out
}

/// Parses one CSV document into a table (all cells as literals; attach
/// ground truth separately with [`apply_cea_targets`]).
///
/// # Errors
/// Returns a message for unbalanced quotes or ragged rows.
pub fn table_from_csv(id: u32, csv: &str) -> Result<Table, String> {
    let mut rows: Vec<Vec<Cell>> = Vec::new();
    for (ln, line) in csv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = split_csv_line(line).map_err(|e| format!("line {}: {e}", ln + 1))?;
        rows.push(fields.into_iter().map(Cell::literal).collect());
    }
    let width = rows.first().map(Vec::len).unwrap_or(0);
    if rows.iter().any(|r| r.len() != width) {
        return Err("ragged rows".into());
    }
    Ok(Table {
        id,
        rows,
        col_types: vec![None; width],
    })
}

/// Applies CEA target rows (`table_id,row,col,entity_id`) to a table,
/// marking the referenced cells as entity cells.
///
/// # Errors
/// Returns a message for malformed lines or out-of-range coordinates.
pub fn apply_cea_targets(table: &mut Table, targets_csv: &str) -> Result<(), String> {
    for (ln, line) in targets_csv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 4 {
            return Err(format!("line {}: expected 4 fields", ln + 1));
        }
        let parse = |s: &str| -> Result<u32, String> {
            s.trim().parse().map_err(|_| format!("line {}: bad number {s:?}", ln + 1))
        };
        let (tid, r, c, e) = (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?, parse(parts[3])?);
        if tid != table.id {
            continue;
        }
        let (r, c) = (r as usize, c as usize);
        if r >= table.num_rows() || c >= table.num_cols() {
            return Err(format!("line {}: cell ({r},{c}) out of range", ln + 1));
        }
        table.cell_mut(r, c).truth = Some(EntityId(e));
    }
    Ok(())
}

/// Applies CTA target rows (`table_id,col,type_id`) to a table.
///
/// # Errors
/// Returns a message for malformed lines or out-of-range columns.
pub fn apply_cta_targets(table: &mut Table, targets_csv: &str) -> Result<(), String> {
    for (ln, line) in targets_csv.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 3 {
            return Err(format!("line {}: expected 3 fields", ln + 1));
        }
        let parse = |s: &str| -> Result<u32, String> {
            s.trim().parse().map_err(|_| format!("line {}: bad number {s:?}", ln + 1))
        };
        let (tid, c, t) = (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?);
        if tid != table.id {
            continue;
        }
        let c = c as usize;
        if c >= table.num_cols() {
            return Err(format!("line {}: column {c} out of range", ln + 1));
        }
        table.col_types[c] = Some(TypeId(t));
    }
    Ok(())
}

fn quote(s: &str) -> String {
    if s.contains(['"', ',', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn split_csv_line(line: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match (c, in_quotes) {
            ('"', false) => {
                if field.is_empty() {
                    in_quotes = true;
                } else {
                    field.push('"');
                }
            }
            ('"', true) => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (',', false) => {
                out.push(std::mem::take(&mut field));
            }
            (c, _) => field.push(c),
        }
    }
    if in_quotes {
        return Err("unbalanced quotes".into());
    }
    out.push(field);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{generate_dataset, DatasetConfig};
    use emblookup_kg::{generate, SynthKgConfig};

    #[test]
    fn table_round_trips_through_csv() {
        let synth = generate(SynthKgConfig::tiny(70));
        let ds = generate_dataset(&synth, &DatasetConfig::tiny(70));
        let original = &ds.tables[0];
        let csv = table_to_csv(original);
        let mut restored = table_from_csv(original.id, &csv).unwrap();
        assert_eq!(restored.num_rows(), original.num_rows());
        assert_eq!(restored.num_cols(), original.num_cols());
        // texts survive
        for (a, b) in original.rows.iter().flatten().zip(restored.rows.iter().flatten()) {
            assert_eq!(a.text, b.text);
        }
        // ground truth re-attaches
        let targets = cea_targets_to_csv(&ds);
        apply_cea_targets(&mut restored, &targets).unwrap();
        for (r, c, cell) in original.entity_cells() {
            assert_eq!(restored.cell(r, c).truth, cell.truth);
        }
    }

    #[test]
    fn quoting_handles_commas_and_quotes() {
        let table = Table {
            id: 0,
            rows: vec![vec![
                Cell::literal("a, b"),
                Cell::literal("say \"hi\""),
                Cell::literal("plain"),
            ]],
            col_types: vec![None; 3],
        };
        let csv = table_to_csv(&table);
        let restored = table_from_csv(0, &csv).unwrap();
        assert_eq!(restored.cell(0, 0).text, "a, b");
        assert_eq!(restored.cell(0, 1).text, "say \"hi\"");
        assert_eq!(restored.cell(0, 2).text, "plain");
    }

    #[test]
    fn malformed_inputs_are_errors() {
        assert!(table_from_csv(0, "a,b\nc").is_err()); // ragged
        assert!(table_from_csv(0, "\"abc").is_err()); // unbalanced
        let mut t = Table { id: 0, rows: vec![vec![Cell::literal("x")]], col_types: vec![None] };
        assert!(apply_cea_targets(&mut t, "0,9,9,1").is_err());
        assert!(apply_cea_targets(&mut t, "0,0").is_err());
        assert!(apply_cta_targets(&mut t, "0,9,1").is_err());
    }

    #[test]
    fn cta_targets_round_trip() {
        let synth = generate(SynthKgConfig::tiny(71));
        let ds = generate_dataset(&synth, &DatasetConfig::tiny(71));
        let original = &ds.tables[1];
        let targets = cta_targets_to_csv(&ds);
        let mut restored = table_from_csv(original.id, &table_to_csv(original)).unwrap();
        apply_cta_targets(&mut restored, &targets).unwrap();
        assert_eq!(restored.col_types, original.col_types);
    }
}
