//! The tabular data model of the paper (§II): a relational table whose
//! cells mention KG entities, with ground-truth annotations for evaluation.

use emblookup_kg::{EntityId, TypeId};

/// One table cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Surface text of the cell (possibly noisy or an alias).
    pub text: String,
    /// Ground-truth entity for entity cells; `None` for literals.
    pub truth: Option<EntityId>,
    /// True when the cell's value is missing (data-repair target).
    pub missing: bool,
}

impl Cell {
    /// Entity-mention cell with ground truth.
    pub fn entity(text: impl Into<String>, truth: EntityId) -> Self {
        Cell { text: text.into(), truth: Some(truth), missing: false }
    }

    /// Literal cell (numbers, dates).
    pub fn literal(text: impl Into<String>) -> Self {
        Cell { text: text.into(), truth: None, missing: false }
    }

    /// Missing cell that originally referred to `truth`.
    pub fn missing(truth: EntityId) -> Self {
        Cell { text: String::new(), truth: Some(truth), missing: true }
    }
}

/// A relational table with ground-truth column types.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table identifier within its dataset.
    pub id: u32,
    /// Row-major cells; all rows have equal length.
    pub rows: Vec<Vec<Cell>>,
    /// Ground-truth type per column (`None` for literal columns).
    pub col_types: Vec<Option<TypeId>>,
}

impl Table {
    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.col_types.len()
    }

    /// Borrows the cell at `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &Cell {
        &self.rows[row][col]
    }

    /// Mutably borrows the cell at `(row, col)`.
    pub fn cell_mut(&mut self, row: usize, col: usize) -> &mut Cell {
        &mut self.rows[row][col]
    }

    /// Iterates `(row, col, cell)` over annotatable entity cells that are
    /// present (non-missing, non-literal).
    pub fn entity_cells(&self) -> impl Iterator<Item = (usize, usize, &Cell)> {
        self.rows.iter().enumerate().flat_map(|(r, row)| {
            row.iter()
                .enumerate()
                .filter(|(_, c)| c.truth.is_some() && !c.missing)
                .map(move |(j, c)| (r, j, c))
        })
    }

    /// Total number of annotatable entity cells.
    pub fn num_entity_cells(&self) -> usize {
        self.entity_cells().count()
    }

    /// Validates structural invariants (rectangularity, column count).
    ///
    /// # Errors
    /// Describes the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (r, row) in self.rows.iter().enumerate() {
            if row.len() != self.col_types.len() {
                return Err(format!(
                    "row {r} has {} cells, expected {}",
                    row.len(),
                    self.col_types.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Table {
        Table {
            id: 0,
            rows: vec![
                vec![Cell::entity("berlin", EntityId(1)), Cell::literal("3.6M")],
                vec![Cell::missing(EntityId(2)), Cell::literal("2.1M")],
            ],
            col_types: vec![Some(TypeId(0)), None],
        }
    }

    #[test]
    fn shape_accessors() {
        let t = toy();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.num_cols(), 2);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn entity_cells_skip_literals_and_missing() {
        let t = toy();
        let cells: Vec<_> = t.entity_cells().collect();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0, 0); // row 0
        assert_eq!(cells[0].1, 0); // col 0
    }

    #[test]
    fn validate_catches_ragged_rows() {
        let mut t = toy();
        t.rows[1].pop();
        assert!(t.validate().is_err());
    }
}
