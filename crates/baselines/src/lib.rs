//! # emblookup-baselines
//!
//! The competing lookup services of the paper's evaluation (Table V):
//! exact match, Levenshtein scan, q-gram, FuzzyWuzzy-style token matching,
//! an ElasticSearch-like word+trigram BM25 engine, MinHash LSH, and
//! simulated remote endpoints (Wikidata API, SearX) with deterministic
//! latency/rate-limit cost models. All implement
//! [`emblookup_kg::LookupService`] so annotation systems can swap them for
//! EmbLookup transparently.

#![warn(missing_docs)]

pub mod cached;
pub mod catalog;
pub mod elastic;
pub mod elastic_ops;
pub mod lsh_service;
pub mod metasearch;
pub mod metered;
pub mod remote;
pub mod scan;

pub use cached::CachedService;
pub use catalog::MentionCatalog;
pub use elastic::ElasticLikeService;
pub use elastic_ops::{ElasticOp, ElasticOpService};
pub use lsh_service::LshService;
pub use metasearch::MetaSearchService;
pub use metered::Metered;
pub use remote::{RemoteCostModel, RemoteService};
pub use scan::{ExactMatchService, FuzzyWuzzyService, LevenshteinService, QGramService};
