//! [`Metered`]: wraps any [`LookupService`] to record per-query latency
//! into an `emblookup-obs` histogram — the head-to-head benchmarks put
//! every baseline behind the same `lookup.latency.*` metric family that
//! EmbLookup itself reports.
//!
//! The histogram handle is resolved once at construction; each query then
//! costs exactly one atomic histogram record on top of the wrapped call.

use emblookup_kg::{Candidate, LookupService};
use emblookup_obs::Histogram;
use std::sync::Arc;
use std::time::Duration;

/// A lookup service whose queries are timed into a named histogram.
pub struct Metered<S> {
    inner: S,
    hist: Arc<Histogram>,
}

/// Lowercases a service name into a metric-safe suffix
/// (`"FuzzyWuzzy (token_set_ratio)"` → `"fuzzywuzzy_token_set_ratio"`).
fn slug(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('_') && !out.is_empty() {
            out.push('_');
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    if out.is_empty() {
        out.push_str("unnamed");
    }
    out
}

impl<S: LookupService> Metered<S> {
    /// Wraps `inner`, recording into `lookup.latency.<slug(name)>` in the
    /// global registry.
    pub fn new(inner: S) -> Self {
        let metric = format!("lookup.latency.{}", slug(inner.name()));
        Self::with_metric(inner, &metric)
    }

    /// Wraps `inner`, recording into an explicitly named histogram.
    pub fn with_metric(inner: S, metric: &str) -> Self {
        Metered { inner, hist: emblookup_obs::global().histogram(metric) }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the service.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: LookupService> LookupService for Metered<S> {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        // record the *charged* time so simulated remote services meter
        // their modeled network latency, not just local compute
        let (hits, d) = self.inner.lookup_timed(q, k);
        self.hist.record_duration(d);
        hits
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn lookup_timed(&self, q: &str, k: usize) -> (Vec<Candidate>, Duration) {
        let (hits, d) = self.inner.lookup_timed(q, k);
        self.hist.record_duration(d);
        (hits, d)
    }

    fn lookup_batch(&self, queries: &[&str], k: usize) -> Vec<Vec<Candidate>> {
        // preserve the inner fast path; per-query latencies inside a batch
        // are not individually observable, so none are recorded here
        self.inner.lookup_batch(queries, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ExactMatchService;
    use emblookup_kg::KnowledgeGraph;

    fn toy_kg() -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::new();
        let t = kg.add_type("city", None);
        kg.add_entity("Berlin", vec!["BER".into()], vec![t]);
        kg.add_entity("Paris", vec![], vec![t]);
        kg
    }

    #[test]
    fn slug_normalizes_names() {
        assert_eq!(slug("FuzzyWuzzy (token_set_ratio)"), "fuzzywuzzy_token_set_ratio");
        assert_eq!(slug("Exact"), "exact");
        assert_eq!(slug("---"), "unnamed");
    }

    #[test]
    fn metered_preserves_results_and_counts_queries() {
        let kg = toy_kg();
        let reg = emblookup_obs::global();
        let svc = Metered::with_metric(
            ExactMatchService::new(&kg, true),
            "lookup.latency.test_metered_exact",
        );
        let before = reg
            .snapshot()
            .histogram("lookup.latency.test_metered_exact")
            .map(|h| h.count)
            .unwrap_or(0);
        let raw = ExactMatchService::new(&kg, true).lookup("Berlin", 3);
        let metered = svc.lookup("Berlin", 3);
        assert_eq!(raw.len(), metered.len());
        let (_, d) = svc.lookup_timed("Paris", 3);
        assert!(d < Duration::from_secs(1));
        let after = reg
            .snapshot()
            .histogram("lookup.latency.test_metered_exact")
            .expect("histogram registered")
            .count;
        assert_eq!(after - before, 2);
        assert_eq!(svc.name(), svc.inner().name());
    }
}
