//! LSH lookup service: MinHash over character q-grams for candidate
//! generation, Levenshtein re-ranking — the "LSH variant optimized for
//! Levenshtein distance" baseline of Table V.

use crate::catalog::{rank_candidates, MentionCatalog};
use emblookup_ann::lsh::{hash_feature, LshConfig, MinHashLsh};
use emblookup_kg::{Candidate, EntityId, KnowledgeGraph, LookupService};
use emblookup_text::distance::{levenshtein_bounded, qgrams};
use emblookup_text::tokenize::normalize;

/// MinHash-LSH candidate generation + edit-distance re-ranking.
pub struct LshService {
    catalog: MentionCatalog,
    lsh: MinHashLsh,
    q: usize,
    name: String,
}

impl LshService {
    /// Builds the LSH tables over catalog q-gram sets.
    pub fn new(kg: &KnowledgeGraph, include_aliases: bool, config: LshConfig) -> Self {
        let catalog = MentionCatalog::from_kg(kg, include_aliases);
        let q = 3;
        let mut lsh = MinHashLsh::new(config);
        for (i, e) in catalog.entries().iter().enumerate() {
            lsh.insert(i as u32, &Self::features(&e.mention, q));
        }
        LshService { catalog, lsh, q, name: "LSH".into() }
    }

    fn features(s: &str, q: usize) -> Vec<u64> {
        qgrams(s, q).iter().map(|g| hash_feature(g)).collect()
    }
}

impl LookupService for LshService {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        let qn = normalize(q);
        let candidates = self.lsh.candidates(&Self::features(&qn, self.q));
        // bounded re-rank: the LSH filter exists to avoid full scans, so
        // candidates beyond a few edits are discarded early
        let scored: Vec<(EntityId, f32)> = candidates
            .into_iter()
            .filter_map(|i| {
                let entry = &self.catalog.entries()[i as usize];
                levenshtein_bounded(&qn, &entry.mention, 4)
                    .map(|d| (entry.entity, -(d as f32)))
            })
            .collect();
        rank_candidates(scored, k)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKgConfig};

    #[test]
    fn exact_label_is_found() {
        let s = generate(SynthKgConfig::tiny(13));
        let svc = LshService::new(&s.kg, false, LshConfig::default());
        let e = s.kg.entities().nth(2).unwrap();
        let hits = svc.lookup(&e.label, 5);
        assert!(hits.iter().any(|c| c.entity == e.id));
        assert_eq!(hits[0].score, 0.0); // zero edit distance, negated
    }

    #[test]
    fn recall_degrades_gracefully_not_catastrophically() {
        // LSH is a candidate filter: some typos fall out of every band —
        // that is exactly the accuracy gap Table V shows for LSH.
        let s = generate(SynthKgConfig::tiny(14));
        let svc = LshService::new(&s.kg, false, LshConfig { bands: 24, rows: 2, seed: 0 });
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4);
        let mut found = 0;
        let total = 20;
        for e in s.kg.entities().take(total) {
            let noisy = emblookup_text::apply_noise(
                &e.label,
                emblookup_text::NoiseKind::DropChar,
                &mut rng,
            );
            if svc.lookup(&noisy, 10).iter().any(|c| c.entity == e.id) {
                found += 1;
            }
        }
        assert!(found >= total / 2, "LSH recovered only {found}/{total}");
    }

    #[test]
    fn unrelated_query_returns_few_or_none() {
        let s = generate(SynthKgConfig::tiny(15));
        let svc = LshService::new(&s.kg, false, LshConfig { bands: 8, rows: 6, seed: 0 });
        let hits = svc.lookup("qqqqqqzzzzzz", 10);
        assert!(hits.len() < 5);
    }
}
