//! Meta-search-style entity matching (the SearX-backed lookup bbw used).
//!
//! Web meta-search resolves aliases and token reorderings well (the
//! underlying engines index redirects and alternative names) but does
//! *not* perform character-level fuzzy matching on entity names — a typo
//! in a rare proper noun simply misses. This matcher models that: exact
//! match over token-sorted, normalized surface forms, aliases included.

use emblookup_kg::{Candidate, EntityId, KnowledgeGraph, LookupService};
use emblookup_text::tokenize::normalize;
use std::collections::HashMap;

/// Alias-aware exact matcher over token-sorted keys.
pub struct MetaSearchService {
    index: HashMap<String, Vec<EntityId>>,
    name: String,
}

impl MetaSearchService {
    /// Indexes every label and alias under its token-sorted key.
    pub fn new(kg: &KnowledgeGraph) -> Self {
        let mut index: HashMap<String, Vec<EntityId>> = HashMap::new();
        for e in kg.entities() {
            for surface in std::iter::once(&e.label).chain(e.aliases.iter()) {
                index.entry(Self::key(surface)).or_default().push(e.id);
            }
        }
        for list in index.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        MetaSearchService { index, name: "MetaSearch".into() }
    }

    fn key(s: &str) -> String {
        let mut tokens: Vec<&str> = s.split_whitespace().collect();
        tokens.sort_unstable();
        normalize(&tokens.join(" "))
    }
}

impl LookupService for MetaSearchService {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        self.index
            .get(&Self::key(q))
            .into_iter()
            .flatten()
            .take(k)
            .map(|&entity| Candidate { entity, score: 1.0 })
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKgConfig};
    use emblookup_text::NoiseKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn resolves_aliases_and_reorderings_but_not_typos() {
        let s = generate(SynthKgConfig::tiny(25));
        let svc = MetaSearchService::new(&s.kg);
        let person = s
            .kg
            .entities()
            .find(|e| e.label.contains(' ') && !e.aliases.is_empty())
            .unwrap();

        // exact
        assert!(svc.lookup(&person.label, 5).iter().any(|c| c.entity == person.id));
        // token reordering
        let reversed: Vec<&str> = person.label.split(' ').rev().collect();
        assert!(svc
            .lookup(&reversed.join(" "), 5)
            .iter()
            .any(|c| c.entity == person.id));
        // alias
        assert!(svc
            .lookup(&person.aliases[0], 5)
            .iter()
            .any(|c| c.entity == person.id));
        // but a single character typo misses entirely
        let mut rng = StdRng::seed_from_u64(1);
        let typo = emblookup_text::apply_noise(&person.label, NoiseKind::SubstituteChar, &mut rng);
        assert!(svc.lookup(&typo, 5).is_empty(), "typo {typo:?} unexpectedly matched");
    }

    #[test]
    fn unknown_queries_return_empty() {
        let s = generate(SynthKgConfig::tiny(26));
        let svc = MetaSearchService::new(&s.kg);
        assert!(svc.lookup("entirely unknown thing", 5).is_empty());
        assert!(svc.lookup("", 5).is_empty());
    }
}
