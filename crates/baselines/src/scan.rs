//! Scan-based lookup services: exact match, full Levenshtein scan, q-gram
//! Jaccard scan and the FuzzyWuzzy-style token matcher — the "implement
//! the similarity metric from scratch" family of the paper's related work.

use crate::catalog::{rank_candidates, MentionCatalog};
use emblookup_kg::{Candidate, EntityId, KnowledgeGraph, LookupService};
use emblookup_text::distance::{levenshtein_bounded, qgram_jaccard, token_set_ratio};
use emblookup_text::tokenize::normalize;
use std::collections::{BTreeMap, HashMap};

/// Exact-match lookup over a normalized hash index.
pub struct ExactMatchService {
    index: HashMap<String, Vec<EntityId>>,
    name: String,
}

impl ExactMatchService {
    /// Builds the hash index from the catalog.
    pub fn new(kg: &KnowledgeGraph, include_aliases: bool) -> Self {
        let catalog = MentionCatalog::from_kg(kg, include_aliases);
        let mut index: HashMap<String, Vec<EntityId>> = HashMap::new();
        for e in catalog.entries() {
            index.entry(e.mention.clone()).or_default().push(e.entity);
        }
        ExactMatchService { index, name: "ExactMatch".into() }
    }
}

impl LookupService for ExactMatchService {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        self.index
            .get(&normalize(q))
            .into_iter()
            .flatten()
            .take(k)
            .map(|&entity| Candidate { entity, score: 1.0 })
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Full Levenshtein scan with a per-candidate early-exit bound — the
/// "optimized Levenshtein distance module" used by SemTab submissions.
pub struct LevenshteinService {
    catalog: MentionCatalog,
    /// Maximum edit distance considered a match.
    pub max_edits: usize,
    name: String,
}

impl LevenshteinService {
    /// Builds the service; `max_edits` bounds the scan (default-style 3).
    pub fn new(kg: &KnowledgeGraph, include_aliases: bool, max_edits: usize) -> Self {
        LevenshteinService {
            catalog: MentionCatalog::from_kg(kg, include_aliases),
            max_edits,
            name: "Levenshtein".into(),
        }
    }
}

impl LookupService for LevenshteinService {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        let q = normalize(q);
        let mut scored = Vec::new();
        for e in self.catalog.entries() {
            if let Some(d) = levenshtein_bounded(&q, &e.mention, self.max_edits) {
                scored.push((e.entity, -(d as f32)));
            }
        }
        rank_candidates(scored, k)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// q-gram lookup: Jaccard similarity of padded character q-grams,
/// pre-filtered through an inverted q-gram index.
pub struct QGramService {
    catalog: MentionCatalog,
    inverted: HashMap<String, Vec<u32>>,
    q: usize,
    name: String,
}

impl QGramService {
    /// Builds the inverted q-gram index (`q = 3` is the classic setting).
    pub fn new(kg: &KnowledgeGraph, include_aliases: bool, q: usize) -> Self {
        let catalog = MentionCatalog::from_kg(kg, include_aliases);
        let mut inverted: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, e) in catalog.entries().iter().enumerate() {
            let mut grams = emblookup_text::distance::qgrams(&e.mention, q);
            grams.sort_unstable();
            grams.dedup();
            for g in grams {
                inverted.entry(g).or_default().push(i as u32);
            }
        }
        QGramService { catalog, inverted, q, name: "q-gram".into() }
    }
}

impl LookupService for QGramService {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        let qn = normalize(q);
        let mut grams = emblookup_text::distance::qgrams(&qn, self.q);
        grams.sort_unstable();
        grams.dedup();
        // candidate pre-filter: any shared q-gram
        // BTreeMap: candidate order escapes into scoring (L008)
        let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
        for g in &grams {
            if let Some(list) = self.inverted.get(g) {
                for &i in list {
                    *counts.entry(i).or_default() += 1;
                }
            }
        }
        let scored: Vec<(EntityId, f32)> = counts
            .keys()
            .map(|&i| {
                let entry = &self.catalog.entries()[i as usize];
                let sim = qgram_jaccard(&qn, &entry.mention, self.q) as f32;
                (entry.entity, sim)
            })
            .collect();
        rank_candidates(scored, k)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// FuzzyWuzzy-style lookup: token-set ratio over a full catalog scan.
pub struct FuzzyWuzzyService {
    catalog: MentionCatalog,
    name: String,
}

impl FuzzyWuzzyService {
    /// Builds the scan service.
    pub fn new(kg: &KnowledgeGraph, include_aliases: bool) -> Self {
        FuzzyWuzzyService {
            catalog: MentionCatalog::from_kg(kg, include_aliases),
            name: "FuzzyWuzzy".into(),
        }
    }
}

impl LookupService for FuzzyWuzzyService {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        let qn = normalize(q);
        let scored: Vec<(EntityId, f32)> = self
            .catalog
            .entries()
            .iter()
            .map(|e| (e.entity, token_set_ratio(&qn, &e.mention) as f32))
            .collect();
        rank_candidates(scored, k)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKg, SynthKgConfig};
    use emblookup_text::NoiseKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synth() -> SynthKg {
        generate(SynthKgConfig::tiny(4))
    }

    #[test]
    fn exact_hits_only_exact() {
        let s = synth();
        let svc = ExactMatchService::new(&s.kg, false);
        let e = s.kg.entities().next().unwrap();
        let hits = svc.lookup(&e.label, 5);
        assert!(hits.iter().any(|c| c.entity == e.id));
        // one char typo breaks exact match
        let mut broken = e.label.clone();
        broken.push('x');
        assert!(svc.lookup(&broken, 5).is_empty());
    }

    #[test]
    fn levenshtein_tolerates_typos() {
        let s = synth();
        let svc = LevenshteinService::new(&s.kg, false, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let e = s.kg.entities().next().unwrap();
        let noisy = emblookup_text::apply_noise(&e.label, NoiseKind::SubstituteChar, &mut rng);
        let hits = svc.lookup(&noisy, 5);
        assert!(
            hits.iter().any(|c| c.entity == e.id),
            "typo {noisy:?} of {:?} not matched",
            e.label
        );
    }

    #[test]
    fn qgram_tolerates_typos() {
        let s = synth();
        let svc = QGramService::new(&s.kg, false, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let e = s.kg.entities().nth(3).unwrap();
        let noisy = emblookup_text::apply_noise(&e.label, NoiseKind::DropChar, &mut rng);
        let hits = svc.lookup(&noisy, 5);
        assert!(hits.iter().any(|c| c.entity == e.id));
    }

    #[test]
    fn fuzzywuzzy_handles_token_reorder() {
        let s = synth();
        let svc = FuzzyWuzzyService::new(&s.kg, false);
        let person = s.persons[0];
        let label = s.kg.label(person);
        let reversed: Vec<&str> = label.split(' ').rev().collect();
        let hits = svc.lookup(&reversed.join(" "), 5);
        assert!(hits.iter().any(|c| c.entity == person));
    }

    #[test]
    fn alias_lookup_fails_without_alias_index() {
        let s = synth();
        let svc = LevenshteinService::new(&s.kg, false, 2);
        // find an entity whose alias is syntactically far from the label
        let target = s
            .kg
            .entities()
            .find(|e| {
                e.aliases.iter().any(|a| {
                    emblookup_text::distance::levenshtein(&e.label.to_lowercase(), &a.to_lowercase()) > 4
                })
            })
            .expect("no far alias in tiny KG");
        let alias = target
            .aliases
            .iter()
            .find(|a| {
                emblookup_text::distance::levenshtein(
                    &target.label.to_lowercase(),
                    &a.to_lowercase(),
                ) > 4
            })
            .unwrap();
        let hits = svc.lookup(alias, 5);
        assert!(
            !hits.iter().any(|c| c.entity == target.id),
            "label-only index unexpectedly resolved alias {alias:?}"
        );
        // but the alias-aware index resolves it
        let svc_full = ExactMatchService::new(&s.kg, true);
        let hits = svc_full.lookup(alias, 5);
        assert!(hits.iter().any(|c| c.entity == target.id));
    }

    #[test]
    fn all_scan_services_bound_k() {
        let s = synth();
        let services: Vec<Box<dyn LookupService>> = vec![
            Box::new(ExactMatchService::new(&s.kg, false)),
            Box::new(LevenshteinService::new(&s.kg, false, 5)),
            Box::new(QGramService::new(&s.kg, false, 3)),
            Box::new(FuzzyWuzzyService::new(&s.kg, false)),
        ];
        for svc in &services {
            let hits = svc.lookup(s.kg.label(s.cities[0]), 3);
            assert!(hits.len() <= 3, "{} returned {}", svc.name(), hits.len());
        }
    }

    #[test]
    fn empty_query_is_safe() {
        let s = synth();
        let svc = QGramService::new(&s.kg, false, 3);
        let _ = svc.lookup("", 5);
        let svc = FuzzyWuzzyService::new(&s.kg, false);
        let _ = svc.lookup("", 5);
    }
}
