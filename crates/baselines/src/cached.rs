//! Lookup-result caching — every real annotation system caches its lookup
//! responses (bbw explicitly caches SearX answers), since table corpora
//! repeat mentions heavily (a popular country appears in thousands of
//! rows). Wrapping a service in [`CachedService`] models that, and the
//! timed path charges only cache misses.
// lint: hot-path

use emblookup_kg::{Candidate, LookupService};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
// lint: allow(L002) the memo table needs shared interior mutability; one short critical section per query, amortized by hits
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Memoizing wrapper around any [`LookupService`].
///
/// The cache key is `(query, k)`; hits cost nothing on the virtual clock.
/// Hit/miss counters are plain relaxed atomics; only the memo table
/// itself sits behind a mutex.
pub struct CachedService<S: LookupService> {
    inner: S,
    // lint: allow(L002) the memo table needs shared interior mutability; one short critical section per query, amortized by hits
    cache: Mutex<HashMap<(String, usize), Vec<Candidate>>>,
    name: String,
    // lint: atomic(counter) statistics only
    hits: AtomicU64,
    // lint: atomic(counter) statistics only
    misses: AtomicU64,
}

impl<S: LookupService> CachedService<S> {
    /// Wraps `inner` with an unbounded memo cache.
    pub fn new(inner: S) -> Self {
        // lint: allow(L002) one-time construction, not on the query path
        let name = format!("{} (cached)", inner.name());
        CachedService {
            inner,
            // lint: allow(L002) the memo table needs shared interior mutability; one short critical section per query, amortized by hits
            cache: Mutex::new(HashMap::new()),
            name,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The memo table, recovered from poisoning: a panicking inner
    /// service must not wedge every later lookup.
    fn table(&self) -> MutexGuard<'_, HashMap<(String, usize), Vec<Candidate>>> {
        // lint: allow(L002) the memo-cache baseline IS a locked table by design; the contention is part of what it measures
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: LookupService> LookupService for CachedService<S> {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        // lint: allow(L002) the memo map needs an owned key for insert; no borrowed-tuple lookup exists
        let key = (q.to_string(), k);
        if let Some(hit) = self.table().get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Relaxed);
        let result = self.inner.lookup(q, k);
        self.table().insert(key, result.clone());
        result
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn lookup_timed(&self, q: &str, k: usize) -> (Vec<Candidate>, Duration) {
        // lint: allow(L002) the memo map needs an owned key for insert; no borrowed-tuple lookup exists
        let key = (q.to_string(), k);
        if let Some(hit) = self.table().get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return (hit.clone(), Duration::ZERO);
        }
        self.misses.fetch_add(1, Relaxed);
        let (result, elapsed) = self.inner.lookup_timed(q, k);
        self.table().insert(key, result.clone());
        (result, elapsed)
    }

    fn lookup_batch_timed(&self, queries: &[&str], k: usize) -> (Vec<Vec<Candidate>>, Duration) {
        let mut total = Duration::ZERO;
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            let (hits, t) = self.lookup_timed(q, k);
            total += t;
            out.push(hits);
        }
        (out, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::{RemoteCostModel, RemoteService};
    use crate::scan::ExactMatchService;
    use emblookup_kg::{generate, SynthKgConfig};

    #[test]
    fn repeated_queries_hit_the_cache() {
        let s = generate(SynthKgConfig::tiny(30));
        let svc = CachedService::new(ExactMatchService::new(&s.kg, false));
        let label = s.kg.label(s.cities[0]).to_string();
        let a = svc.lookup(&label, 5);
        let b = svc.lookup(&label, 5);
        assert_eq!(a, b);
        assert_eq!(svc.stats(), (1, 1));
    }

    #[test]
    fn cache_eliminates_remote_latency_on_hits() {
        let s = generate(SynthKgConfig::tiny(31));
        let remote = RemoteService::new(
            ExactMatchService::new(&s.kg, true),
            RemoteCostModel::wikidata(),
            "Wikidata API",
        );
        let svc = CachedService::new(remote);
        let label = s.kg.label(s.persons[0]).to_string();
        let (_, first) = svc.lookup_timed(&label, 5);
        let (_, second) = svc.lookup_timed(&label, 5);
        assert!(first >= Duration::from_millis(80));
        assert_eq!(second, Duration::ZERO);
    }

    #[test]
    fn different_k_is_a_different_key() {
        let s = generate(SynthKgConfig::tiny(32));
        let svc = CachedService::new(ExactMatchService::new(&s.kg, false));
        let label = s.kg.label(s.cities[1]).to_string();
        let _ = svc.lookup(&label, 3);
        let _ = svc.lookup(&label, 7);
        assert_eq!(svc.stats(), (0, 2));
    }

    #[test]
    fn batch_charges_only_misses() {
        let s = generate(SynthKgConfig::tiny(33));
        let remote = RemoteService::new(
            ExactMatchService::new(&s.kg, true),
            RemoteCostModel::wikidata(),
            "Wikidata API",
        );
        let svc = CachedService::new(remote);
        let label = s.kg.label(s.films[0]).to_string();
        let queries = vec![label.as_str(); 10];
        let (_, elapsed) = svc.lookup_batch_timed(&queries, 5, );
        // 1 miss + 9 hits: roughly one remote round trip, not ten
        assert!(elapsed < Duration::from_millis(200), "{elapsed:?}");
        let (hits, misses) = svc.stats();
        assert_eq!((hits, misses), (9, 1));
    }
}
