//! "ElasticLike": a local full-text engine modeled on how ElasticSearch
//! serves fuzzy entity lookups — a weighted combination of word-level and
//! trigram-level BM25 (the paper cites exactly this setup), with the usual
//! inverted-index architecture.

use crate::catalog::{rank_candidates, MentionCatalog};
use emblookup_kg::{Candidate, EntityId, KnowledgeGraph, LookupService};
use emblookup_text::distance::qgrams;
use emblookup_text::tokenize::{normalize, words};
use std::collections::{BTreeMap, HashMap};

/// BM25 hyperparameters.
const K1: f64 = 1.2;
const B: f64 = 0.75;
/// Weight of the word-level score vs the trigram score.
const WORD_WEIGHT: f64 = 0.6;

#[derive(Debug, Default)]
struct Bm25Index {
    /// term → (doc id, term frequency) postings
    postings: HashMap<String, Vec<(u32, u32)>>,
    doc_len: Vec<u32>,
    avg_len: f64,
}

impl Bm25Index {
    fn build<F>(docs: usize, mut terms_of: F) -> Self
    where
        F: FnMut(usize) -> Vec<String>,
    {
        let mut index = Bm25Index {
            postings: HashMap::new(),
            doc_len: vec![0; docs],
            avg_len: 0.0,
        };
        for doc in 0..docs {
            let terms = terms_of(doc);
            index.doc_len[doc] = terms.len() as u32;
            // BTreeMap: postings must be built in a stable term order (L008)
            let mut tf: BTreeMap<String, u32> = BTreeMap::new();
            for t in terms {
                *tf.entry(t).or_default() += 1;
            }
            for (term, f) in tf {
                index.postings.entry(term).or_default().push((doc as u32, f));
            }
        }
        let total: u64 = index.doc_len.iter().map(|&l| l as u64).sum();
        index.avg_len = total as f64 / docs.max(1) as f64;
        index
    }

    /// BM25 scores of all documents matching at least one query term.
    fn score(&self, terms: &[String]) -> HashMap<u32, f64> {
        let n = self.doc_len.len() as f64;
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for term in terms {
            let Some(postings) = self.postings.get(term) else { continue };
            let df = postings.len() as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for &(doc, tf) in postings {
                let dl = self.doc_len[doc as usize] as f64;
                let tf = tf as f64;
                let s = idf * (tf * (K1 + 1.0)) / (tf + K1 * (1.0 - B + B * dl / self.avg_len));
                *scores.entry(doc).or_default() += s;
            }
        }
        scores
    }

    fn nbytes(&self) -> usize {
        self.postings
            .iter()
            .map(|(term, postings)| term.len() + postings.len() * 8)
            .sum::<usize>()
            + self.doc_len.len() * 4
    }
}

/// Local search engine over entity mentions with word + trigram BM25.
pub struct ElasticLikeService {
    catalog: MentionCatalog,
    word_index: Bm25Index,
    trigram_index: Bm25Index,
    name: String,
}

impl ElasticLikeService {
    /// Builds both inverted indexes from the catalog.
    pub fn new(kg: &KnowledgeGraph, include_aliases: bool) -> Self {
        let catalog = MentionCatalog::from_kg(kg, include_aliases);
        let n = catalog.len();
        let word_index = Bm25Index::build(n, |doc| words(&catalog.entries()[doc].mention));
        let trigram_index = Bm25Index::build(n, |doc| qgrams(&catalog.entries()[doc].mention, 3));
        ElasticLikeService {
            catalog,
            word_index,
            trigram_index,
            name: "ElasticLike".into(),
        }
    }

    /// Approximate index size in bytes (both inverted indexes + catalog),
    /// for the storage comparison of §IV-D.
    pub fn nbytes(&self) -> usize {
        self.word_index.nbytes() + self.trigram_index.nbytes() + self.catalog.nbytes()
    }
}

impl LookupService for ElasticLikeService {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        let qn = normalize(q);
        let word_scores = self.word_index.score(&words(&qn));
        let tri_scores = self.trigram_index.score(&qgrams(&qn, 3));
        // BTreeMap: the collected sequence below escapes into ranking (L008)
        let mut combined: BTreeMap<u32, f64> = BTreeMap::new();
        for (doc, s) in word_scores {
            *combined.entry(doc).or_default() += WORD_WEIGHT * s;
        }
        for (doc, s) in tri_scores {
            *combined.entry(doc).or_default() += (1.0 - WORD_WEIGHT) * s;
        }
        let scored: Vec<(EntityId, f32)> = combined
            .into_iter()
            .map(|(doc, s)| (self.catalog.entries()[doc as usize].entity, s as f32))
            .collect();
        rank_candidates(scored, k)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKgConfig};
    use emblookup_text::NoiseKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_label_ranks_first() {
        let s = generate(SynthKgConfig::tiny(9));
        let svc = ElasticLikeService::new(&s.kg, false);
        let e = s.kg.entities().nth(7).unwrap();
        let hits = svc.lookup(&e.label, 5);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].entity, e.id, "exact label not ranked first");
    }

    #[test]
    fn trigram_leg_catches_typos() {
        let s = generate(SynthKgConfig::tiny(10));
        let svc = ElasticLikeService::new(&s.kg, false);
        let mut rng = StdRng::seed_from_u64(3);
        let mut found = 0;
        let total = 20;
        for e in s.kg.entities().take(total) {
            let noisy =
                emblookup_text::apply_noise(&e.label, NoiseKind::SubstituteChar, &mut rng);
            let hits = svc.lookup(&noisy, 10);
            if hits.iter().any(|c| c.entity == e.id) {
                found += 1;
            }
        }
        assert!(found >= total * 7 / 10, "only {found}/{total} typos recovered");
    }

    #[test]
    fn index_size_grows_with_aliases() {
        let s = generate(SynthKgConfig::tiny(11));
        let small = ElasticLikeService::new(&s.kg, false);
        let big = ElasticLikeService::new(&s.kg, true);
        assert!(big.nbytes() > small.nbytes());
    }

    #[test]
    fn empty_and_oov_queries_are_safe() {
        let s = generate(SynthKgConfig::tiny(12));
        let svc = ElasticLikeService::new(&s.kg, false);
        assert!(svc.lookup("", 5).is_empty());
        let _ = svc.lookup("zzzzqqqq", 5);
    }
}
