//! Syntactic lookup operations hosted on the ElasticLike engine.
//!
//! Table V compares EmbLookup "against optimized implementations of these
//! operations [exact match, q-gram, Levenshtein] in Elastic Search": the
//! engine's inverted index generates candidates and the requested metric
//! scores them. This mirrors running `fuzzy`/`term` queries on a real
//! ElasticSearch rather than hand-rolled scans.

use crate::catalog::{rank_candidates, MentionCatalog};
use emblookup_kg::{Candidate, EntityId, KnowledgeGraph, LookupService};
use emblookup_text::distance::{levenshtein_bounded, qgram_jaccard, qgrams};
use emblookup_text::tokenize::normalize;
use std::collections::HashMap;

/// Which metric the engine applies to its candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticOp {
    /// Term query: exact normalized match.
    Exact,
    /// q-gram Jaccard similarity (`q = 3`).
    QGram,
    /// Bounded Levenshtein distance (fuzziness 3).
    Levenshtein,
}

impl ElasticOp {
    /// Display name matching the paper's Table V rows.
    pub fn label(&self) -> &'static str {
        match self {
            ElasticOp::Exact => "Exact Match",
            ElasticOp::QGram => "q-gram",
            ElasticOp::Levenshtein => "Levenshtein",
        }
    }
}

/// Candidate generation through a trigram inverted index, scoring by the
/// chosen metric.
pub struct ElasticOpService {
    catalog: MentionCatalog,
    inverted: HashMap<String, Vec<u32>>,
    op: ElasticOp,
    name: String,
}

impl ElasticOpService {
    /// Builds the trigram candidate index over the catalog.
    pub fn new(kg: &KnowledgeGraph, include_aliases: bool, op: ElasticOp) -> Self {
        let catalog = MentionCatalog::from_kg(kg, include_aliases);
        let mut inverted: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, e) in catalog.entries().iter().enumerate() {
            let mut grams = qgrams(&e.mention, 3);
            grams.sort_unstable();
            grams.dedup();
            for g in grams {
                inverted.entry(g).or_default().push(i as u32);
            }
        }
        ElasticOpService {
            catalog,
            inverted,
            name: op.label().to_string(),
            op,
        }
    }

    /// Entries sharing at least `min_shared` trigrams with the query.
    fn candidates(&self, q: &str, min_shared: u32) -> Vec<u32> {
        let mut grams = qgrams(q, 3);
        grams.sort_unstable();
        grams.dedup();
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for g in &grams {
            if let Some(list) = self.inverted.get(g) {
                for &i in list {
                    *counts.entry(i).or_default() += 1;
                }
            }
        }
        // sorted before it escapes: callers must not inherit hash
        // iteration order (L008)
        let mut out: Vec<u32> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_shared)
            .map(|(i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }
}

impl LookupService for ElasticOpService {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        let qn = normalize(q);
        let scored: Vec<(EntityId, f32)> = match self.op {
            ElasticOp::Exact => self
                .candidates(&qn, 1)
                .into_iter()
                .filter_map(|i| {
                    let e = &self.catalog.entries()[i as usize];
                    (e.mention == qn).then_some((e.entity, 1.0))
                })
                .collect(),
            ElasticOp::QGram => self
                .candidates(&qn, 1)
                .into_iter()
                .map(|i| {
                    let e = &self.catalog.entries()[i as usize];
                    (e.entity, qgram_jaccard(&qn, &e.mention, 3) as f32)
                })
                .collect(),
            ElasticOp::Levenshtein => self
                .candidates(&qn, 1)
                .into_iter()
                .filter_map(|i| {
                    let e = &self.catalog.entries()[i as usize];
                    levenshtein_bounded(&qn, &e.mention, 3).map(|d| (e.entity, -(d as f32)))
                })
                .collect(),
        };
        rank_candidates(scored, k)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKgConfig};
    use emblookup_text::NoiseKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synth() -> emblookup_kg::SynthKg {
        generate(SynthKgConfig::tiny(21))
    }

    #[test]
    fn exact_op_matches_only_exact() {
        let s = synth();
        let svc = ElasticOpService::new(&s.kg, false, ElasticOp::Exact);
        let e = s.kg.entities().next().unwrap();
        assert!(svc.lookup(&e.label, 5).iter().any(|c| c.entity == e.id));
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = emblookup_text::apply_noise(&e.label, NoiseKind::SubstituteChar, &mut rng);
        assert!(svc.lookup(&noisy, 5).is_empty());
    }

    #[test]
    fn levenshtein_op_tolerates_typos() {
        let s = synth();
        let svc = ElasticOpService::new(&s.kg, false, ElasticOp::Levenshtein);
        let mut rng = StdRng::seed_from_u64(2);
        let e = s.kg.entities().nth(5).unwrap();
        let noisy = emblookup_text::apply_noise(&e.label, NoiseKind::DropChar, &mut rng);
        assert!(svc.lookup(&noisy, 5).iter().any(|c| c.entity == e.id));
    }

    #[test]
    fn qgram_op_scores_by_jaccard() {
        let s = synth();
        let svc = ElasticOpService::new(&s.kg, false, ElasticOp::QGram);
        let e = s.kg.entities().nth(8).unwrap();
        let hits = svc.lookup(&e.label, 5);
        assert_eq!(hits[0].entity, e.id);
        assert!((hits[0].score - 1.0).abs() < 1e-6);
    }

    #[test]
    fn names_match_paper_rows() {
        let s = synth();
        for (op, name) in [
            (ElasticOp::Exact, "Exact Match"),
            (ElasticOp::QGram, "q-gram"),
            (ElasticOp::Levenshtein, "Levenshtein"),
        ] {
            assert_eq!(ElasticOpService::new(&s.kg, false, op).name(), name);
        }
    }
}
