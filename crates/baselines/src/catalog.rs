//! The mention catalog baseline services share: the list of searchable
//! surface forms and the entities they belong to.

use emblookup_kg::{EntityId, KnowledgeGraph};
use emblookup_text::tokenize::normalize;

/// A searchable surface form (label or alias) paired with its entity.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Normalized surface form.
    pub mention: String,
    /// Owning entity.
    pub entity: EntityId,
}

/// Flat catalog of surface forms extracted from a knowledge graph.
///
/// Local baselines index only primary labels by default (the paper points
/// out that including aliases inflates an ElasticSearch index from 63 MB to
/// 790 MB); pass `include_aliases = true` to model alias-aware services.
#[derive(Debug, Clone, Default)]
pub struct MentionCatalog {
    entries: Vec<CatalogEntry>,
}

impl MentionCatalog {
    /// Builds the catalog from a graph.
    pub fn from_kg(kg: &KnowledgeGraph, include_aliases: bool) -> Self {
        let mut entries = Vec::with_capacity(kg.num_entities());
        for e in kg.entities() {
            entries.push(CatalogEntry {
                mention: normalize(&e.label),
                entity: e.id,
            });
            if include_aliases {
                for alias in &e.aliases {
                    entries.push(CatalogEntry {
                        mention: normalize(alias),
                        entity: e.id,
                    });
                }
            }
        }
        MentionCatalog { entries }
    }

    /// All entries.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Number of indexed surface forms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no surface forms are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of the stored mention strings (index-size reports).
    pub fn nbytes(&self) -> usize {
        self.entries
            .iter()
            .map(|e| e.mention.len() + std::mem::size_of::<EntityId>())
            .sum()
    }
}

/// Converts scored `(entity, score)` pairs into a deduplicated top-k
/// candidate list, best score first. An entity reachable through several
/// surface forms keeps its best score.
pub fn rank_candidates(
    mut scored: Vec<(EntityId, f32)>,
    k: usize,
) -> Vec<emblookup_kg::Candidate> {
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(k);
    for (entity, score) in scored {
        if seen.insert(entity) {
            out.push(emblookup_kg::Candidate { entity, score });
            if out.len() == k {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_kg::{generate, SynthKgConfig};

    #[test]
    fn label_only_vs_alias_catalog_sizes() {
        let s = generate(SynthKgConfig::tiny(1));
        let labels = MentionCatalog::from_kg(&s.kg, false);
        let full = MentionCatalog::from_kg(&s.kg, true);
        assert_eq!(labels.len(), s.kg.num_entities());
        assert!(full.len() > labels.len() * 2);
        assert!(full.nbytes() > labels.nbytes());
    }

    #[test]
    fn mentions_are_normalized() {
        let s = generate(SynthKgConfig::tiny(2));
        let catalog = MentionCatalog::from_kg(&s.kg, false);
        for e in catalog.entries() {
            assert_eq!(e.mention, normalize(&e.mention));
        }
    }

    #[test]
    fn rank_dedups_and_sorts() {
        let hits = rank_candidates(
            vec![
                (EntityId(1), 0.5),
                (EntityId(2), 0.9),
                (EntityId(1), 0.8),
                (EntityId(3), 0.1),
            ],
            2,
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].entity, EntityId(2));
        assert_eq!(hits[1].entity, EntityId(1));
        assert_eq!(hits[1].score, 0.8);
    }

    #[test]
    fn rank_handles_empty() {
        assert!(rank_candidates(vec![], 5).is_empty());
    }
}
