//! Simulated remote lookup endpoints (Wikidata API, SearX metasearch).
//!
//! Remote services dominate the paper's slow end of Table V: their cost is
//! round-trip latency plus rate limits (Wikidata allows five parallel
//! queries per IP). We model that cost deterministically on a virtual
//! clock instead of doing network I/O: `lookup_timed` returns the inner
//! (alias-aware, server-side) match result plus the latency the real
//! endpoint would have charged. Results are deterministic and the harness
//! never sleeps.

use emblookup_kg::{Candidate, LookupService};
use std::time::Duration;

/// Latency/rate-limit model of a remote endpoint.
#[derive(Debug, Clone, Copy)]
pub struct RemoteCostModel {
    /// Round-trip time charged per request.
    pub rtt: Duration,
    /// Server-side processing time charged per request.
    pub server_time: Duration,
    /// Maximum concurrent in-flight requests (rate limit).
    pub max_concurrency: usize,
}

impl RemoteCostModel {
    /// Wikidata API-style: moderate RTT, strict concurrency of 5.
    pub fn wikidata() -> Self {
        RemoteCostModel {
            rtt: Duration::from_millis(60),
            server_time: Duration::from_millis(25),
            max_concurrency: 5,
        }
    }

    /// SearX metasearch-style: aggregates ~70 engines, so far slower
    /// per request, small concurrency.
    pub fn searx() -> Self {
        RemoteCostModel {
            rtt: Duration::from_millis(90),
            server_time: Duration::from_millis(140),
            max_concurrency: 4,
        }
    }

    /// Latency charged for one request.
    pub fn per_request(&self) -> Duration {
        self.rtt + self.server_time
    }

    /// Virtual elapsed time for `n` requests issued as fast as the rate
    /// limit allows (perfect pipelining within the concurrency budget).
    pub fn batch_elapsed(&self, n: usize) -> Duration {
        if n == 0 {
            return Duration::ZERO;
        }
        let waves = n.div_ceil(self.max_concurrency.max(1)) as u32;
        self.per_request() * waves
    }
}

/// Wraps a local matcher as a simulated remote endpoint.
///
/// The inner service is alias-aware in the presets (remote KG endpoints
/// resolve aliases server-side), which is why remote services keep decent
/// accuracy on semantic lookups while paying heavily in latency.
pub struct RemoteService<S: LookupService> {
    inner: S,
    /// Cost model applied to every request.
    pub cost: RemoteCostModel,
    name: String,
}

impl<S: LookupService> RemoteService<S> {
    /// Wraps `inner` under the given cost model and display name.
    pub fn new(inner: S, cost: RemoteCostModel, name: impl Into<String>) -> Self {
        RemoteService { inner, cost, name: name.into() }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: LookupService> LookupService for RemoteService<S> {
    fn lookup(&self, q: &str, k: usize) -> Vec<Candidate> {
        self.inner.lookup(q, k)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn lookup_timed(&self, q: &str, k: usize) -> (Vec<Candidate>, Duration) {
        let (hits, compute) = self.inner.lookup_timed(q, k);
        (hits, compute + self.cost.per_request())
    }

    fn lookup_batch_timed(&self, queries: &[&str], k: usize) -> (Vec<Vec<Candidate>>, Duration) {
        let mut out = Vec::with_capacity(queries.len());
        let mut compute = Duration::ZERO;
        for q in queries {
            let (hits, t) = self.inner.lookup_timed(q, k);
            compute += t;
            out.push(hits);
        }
        (out, compute + self.cost.batch_elapsed(queries.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ExactMatchService;
    use emblookup_kg::{generate, SynthKgConfig};

    #[test]
    fn per_request_latency_is_charged() {
        let s = generate(SynthKgConfig::tiny(16));
        let remote = RemoteService::new(
            ExactMatchService::new(&s.kg, true),
            RemoteCostModel::wikidata(),
            "Wikidata API",
        );
        let label = s.kg.label(s.cities[0]).to_string();
        let (_, t) = remote.lookup_timed(&label, 5);
        assert!(t >= Duration::from_millis(85), "{t:?} too fast");
    }

    #[test]
    fn rate_limit_shapes_batch_time() {
        let model = RemoteCostModel::wikidata();
        // 10 requests at concurrency 5 -> 2 waves
        assert_eq!(model.batch_elapsed(10), model.per_request() * 2);
        assert_eq!(model.batch_elapsed(11), model.per_request() * 3);
        assert_eq!(model.batch_elapsed(0), Duration::ZERO);
    }

    #[test]
    fn results_pass_through_unchanged() {
        let s = generate(SynthKgConfig::tiny(17));
        let inner = ExactMatchService::new(&s.kg, true);
        let remote = RemoteService::new(
            ExactMatchService::new(&s.kg, true),
            RemoteCostModel::searx(),
            "SearX",
        );
        let label = s.kg.label(s.persons[0]).to_string();
        let a = inner.lookup(&label, 5);
        let b = remote.lookup(&label, 5);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].entity, b[0].entity);
    }

    #[test]
    fn alias_aware_remote_resolves_aliases() {
        let s = generate(SynthKgConfig::tiny(18));
        let remote = RemoteService::new(
            ExactMatchService::new(&s.kg, true),
            RemoteCostModel::wikidata(),
            "Wikidata API",
        );
        let e = s.kg.entities().next().unwrap();
        let alias = &e.aliases[0];
        let hits = remote.lookup(alias, 5);
        assert!(hits.iter().any(|c| c.entity == e.id));
    }
}
