//! Flat storage for fixed-dimension embedding collections.


/// A collection of `n` vectors of equal dimension, stored row-major in one
/// contiguous buffer (the `I` matrix of the paper, `N × D`).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSet {
    dim: usize,
    data: Vec<f32>,
}

impl VectorSet {
    /// Creates an empty collection of the given dimension.
    ///
    /// # Panics
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        VectorSet { dim, data: Vec::new() }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "buffer length {} not a multiple of dim {}",
            data.len(),
            dim
        );
        VectorSet { dim, data }
    }

    /// Appends one vector.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "expected dim {}, got {}", self.dim, v.len());
        self.data.extend_from_slice(v);
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows vector `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over all vectors.
    pub fn iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// Borrows the whole row-major buffer.
    pub fn flat(&self) -> &[f32] {
        &self.data
    }

    /// In-memory size of the raw vectors in bytes (4 bytes per element),
    /// used by the index-size comparisons of the evaluation.
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// The hot loop of every index. Kept as a re-export surface for
/// backwards compatibility; the implementation is the runtime-dispatched
/// kernel in [`crate::kernels`] (SIMD when the CPU supports it, the
/// unrolled scalar reference otherwise).
#[inline]
pub fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
    crate::kernels::sq_l2(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut vs = VectorSet::new(3);
        vs.push(&[1.0, 2.0, 3.0]);
        vs.push(&[4.0, 5.0, 6.0]);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.get(1), &[4.0, 5.0, 6.0]);
        assert_eq!(vs.nbytes(), 24);
    }

    #[test]
    #[should_panic(expected = "expected dim")]
    fn push_wrong_dim_panics() {
        let mut vs = VectorSet::new(3);
        vs.push(&[1.0]);
    }

    #[test]
    fn from_flat_validates() {
        let vs = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn sq_l2_known() {
        assert_eq!(sq_l2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_l2(&[1.0], &[1.0]), 0.0);
    }
}
