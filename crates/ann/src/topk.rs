//! Bounded top-k selection by distance.
// lint: hot-path

/// One search hit: index into the collection plus squared L2 distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the matched vector.
    pub index: usize,
    /// Squared Euclidean distance to the query.
    pub dist: f32,
}

/// Collects the `k` smallest-distance candidates seen so far.
///
/// Implemented as a bounded binary max-heap keyed on distance, so a stream
/// of `n` candidates costs `O(n log k)`. Ties broken by insertion order.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: Vec<Neighbor>, // max-heap on dist
}

impl TopK {
    /// Creates a collector for the `k` nearest candidates.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k with k = 0");
        TopK { k, heap: Vec::with_capacity(k + 1) }
    }

    /// The current worst (largest) accepted distance, or `f32::INFINITY`
    /// while fewer than `k` candidates are held. Useful for pruning.
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap[0].dist
        }
    }

    /// Offers a candidate; it is kept only if it beats the current top-k.
    pub fn push(&mut self, index: usize, dist: f32) {
        if self.heap.len() < self.k {
            self.heap.push(Neighbor { index, dist });
            self.sift_up(self.heap.len() - 1);
        } else if dist < self.heap[0].dist {
            self.heap[0] = Neighbor { index, dist };
            self.sift_down(0);
        }
    }

    /// Number of candidates currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the collector, returning hits sorted by ascending distance.
    pub fn into_sorted(mut self) -> Vec<Neighbor> {
        self.heap.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        self.heap
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].dist > self.heap[parent].dist {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.heap.len() && self.heap[l].dist > self.heap[largest].dist {
                largest = l;
            }
            if r < self.heap.len() && self.heap[r].dist > self.heap[largest].dist {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.heap.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut tk = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0, 0.5].iter().enumerate() {
            tk.push(i, *d);
        }
        let hits = tk.into_sorted();
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].dist, 0.5);
        assert_eq!(hits[1].dist, 1.0);
        assert_eq!(hits[2].dist, 2.0);
        assert_eq!(hits[0].index, 5);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut tk = TopK::new(10);
        tk.push(0, 1.0);
        tk.push(1, 0.5);
        let hits = tk.into_sorted();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].index, 1);
    }

    #[test]
    fn threshold_tracks_worst_kept() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), f32::INFINITY);
        tk.push(0, 3.0);
        assert_eq!(tk.threshold(), f32::INFINITY);
        tk.push(1, 1.0);
        assert_eq!(tk.threshold(), 3.0);
        tk.push(2, 0.5);
        assert_eq!(tk.threshold(), 1.0);
    }

    #[test]
    #[should_panic(expected = "k = 0")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }

    #[test]
    fn sorted_output_is_ascending() {
        let mut tk = TopK::new(5);
        for i in 0..100 {
            tk.push(i, ((i * 37) % 100) as f32);
        }
        let hits = tk.into_sorted();
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }
}
