//! IVF-PQ: inverted lists with product-quantized residual-free codes —
//! FAISS's "IVFADC without residual encoding" variant, combining the two
//! accelerations EmbLookup can plug in (§III-C/D): cluster pruning *and*
//! compressed distance evaluation.
// lint: hot-path

use crate::flat::batch_search;
use crate::kernels::sq_l2;
use crate::kmeans::{KMeans, KMeansConfig};
use crate::pq::{PqConfig, ProductQuantizer};
use crate::topk::{Neighbor, TopK};
use crate::vectors::VectorSet;

/// Configuration for [`IvfPqIndex::build`].
#[derive(Debug, Clone, Copy)]
pub struct IvfPqConfig {
    /// Coarse clusters.
    pub nlist: usize,
    /// Clusters probed per query.
    pub nprobe: usize,
    /// Product-quantizer settings for the stored codes.
    pub pq: PqConfig,
    /// k-means iterations for the coarse quantizer.
    pub kmeans_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IvfPqConfig {
    fn default() -> Self {
        IvfPqConfig {
            nlist: 64,
            nprobe: 8,
            pq: PqConfig::default(),
            kmeans_iters: 15,
            seed: 0,
        }
    }
}

/// Inverted-file index storing PQ codes per list.
pub struct IvfPqIndex {
    coarse: KMeans,
    quantizer: ProductQuantizer,
    /// Per list: (original index, code) pairs, codes stored contiguously.
    list_ids: Vec<Vec<u32>>,
    list_codes: Vec<Vec<u8>>,
    nprobe: usize,
    n: usize,
}

impl IvfPqIndex {
    /// Builds the index: trains the coarse quantizer and the PQ codebooks
    /// on the data, then encodes every vector into its list.
    ///
    /// # Panics
    /// Panics on empty data or invalid configuration.
    pub fn build(vectors: &VectorSet, config: IvfPqConfig) -> Self {
        assert!(!vectors.is_empty(), "IVF-PQ over empty data");
        assert!(config.nprobe > 0, "nprobe must be positive");
        let nlist = config.nlist.min(vectors.len()).max(1);
        let coarse = KMeans::fit(
            vectors,
            KMeansConfig { k: nlist, max_iters: config.kmeans_iters, seed: config.seed },
        );
        let quantizer = ProductQuantizer::train(vectors, config.pq);
        let m = quantizer.m();
        let mut list_ids = vec![Vec::new(); nlist];
        let mut list_codes = vec![Vec::new(); nlist];
        for (i, v) in vectors.iter().enumerate() {
            let (c, _) = coarse.assign(v);
            list_ids[c].push(i as u32);
            list_codes[c].extend_from_slice(&quantizer.encode(v));
        }
        debug_assert!(list_ids
            .iter()
            .zip(&list_codes)
            .all(|(ids, codes)| codes.len() == ids.len() * m));
        IvfPqIndex {
            coarse,
            quantizer,
            list_ids,
            list_codes,
            nprobe: config.nprobe.min(nlist),
            n: vectors.len(),
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Total bytes of codes plus codebooks (coarse centroids excluded,
    /// they are `nlist × dim` floats).
    pub fn nbytes(&self) -> usize {
        self.list_codes.iter().map(Vec::len).sum::<usize>() + self.quantizer.codebook_nbytes()
    }

    /// Approximate `k` nearest neighbours via ADC over `nprobe` lists.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_counted(query, k).0
    }

    /// Traced twin of [`IvfPqIndex::search`]: identical results, plus
    /// `backend`/`visited` annotations on `span`.
    pub fn search_traced(
        &self,
        query: &[f32],
        k: usize,
        span: &emblookup_obs::TraceSpan,
    ) -> Vec<Neighbor> {
        let (hits, visited) = self.search_counted(query, k);
        span.annotate("backend", "ivfpq");
        span.annotate("visited", visited);
        hits
    }

    /// The search body, also returning how many codes were scanned.
    fn search_counted(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, u64) {
        if self.n == 0 || k == 0 {
            return (Vec::new(), 0);
        }
        let mut order: Vec<(usize, f32)> = self
            .coarse
            .centroids()
            .iter()
            .enumerate()
            .map(|(c, cent)| (c, sq_l2(query, cent)))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1));

        let table = self.quantizer.distance_table(query);
        let m = self.quantizer.m();
        let mut tk = TopK::new(k);
        let mut visited = 0u64;
        for &(list, _) in order.iter().take(self.nprobe) {
            let ids = &self.list_ids[list];
            let codes = &self.list_codes[list];
            visited += ids.len() as u64;
            // contiguous per-list codes score four at a time through the
            // batched ADC kernel; the tail lanes are bit-exact with it
            let mut quads = codes.chunks_exact(4 * m);
            let mut slot = 0;
            for quad in &mut quads {
                let d = self.quantizer.adc4(
                    &table,
                    [&quad[..m], &quad[m..2 * m], &quad[2 * m..3 * m], &quad[3 * m..]],
                );
                for (l, &dl) in d.iter().enumerate() {
                    tk.push(ids[slot + l] as usize, dl);
                }
                slot += 4;
            }
            for code in quads.remainder().chunks_exact(m) {
                tk.push(ids[slot] as usize, self.quantizer.adc(&table, code));
                slot += 1;
            }
        }
        crate::metrics::ivfpq_searches().inc();
        crate::metrics::ivfpq_visited().add(visited);
        (tk.into_sorted(), visited)
    }

    /// Batch search across `threads` threads.
    pub fn search_batch(&self, queries: &VectorSet, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        batch_search(queries, k, threads, |q, k| self.search(q, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        vs
    }

    fn config_small() -> IvfPqConfig {
        IvfPqConfig {
            nlist: 16,
            nprobe: 8,
            pq: PqConfig { m: 4, ks: 32, kmeans_iters: 8, seed: 0 },
            kmeans_iters: 8,
            seed: 0,
        }
    }

    #[test]
    fn every_vector_is_reachable() {
        let data = random_set(400, 16, 1);
        let idx = IvfPqIndex::build(&data, config_small());
        let total: usize = idx.list_ids.iter().map(Vec::len).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn recall_against_flat_is_reasonable() {
        let data = random_set(600, 16, 2);
        let flat = FlatIndex::new(data.clone());
        let idx = IvfPqIndex::build(&data, config_small());
        let queries = random_set(20, 16, 3);
        let mut recall = 0.0;
        for q in queries.iter() {
            let truth: Vec<usize> = flat.search(q, 20).iter().map(|n| n.index).collect();
            let got: Vec<usize> = idx.search(q, 20).iter().map(|n| n.index).collect();
            recall += truth.iter().filter(|i| got.contains(i)).count() as f64 / 20.0;
        }
        recall /= 20.0;
        assert!(recall > 0.5, "IVF-PQ recall@20 too low: {recall}");
    }

    #[test]
    fn codes_are_much_smaller_than_raw() {
        let data = random_set(500, 64, 4);
        let idx = IvfPqIndex::build(
            &data,
            IvfPqConfig { pq: PqConfig { m: 8, ks: 256, kmeans_iters: 4, seed: 0 }, ..config_small() },
        );
        // per-vector storage: 8 B codes vs 256 B floats (codebooks are a
        // fixed overhead that amortizes at scale)
        let code_bytes: usize = idx.list_codes.iter().map(Vec::len).sum();
        assert_eq!(code_bytes, 500 * 8);
        assert!(code_bytes * 30 < data.nbytes());
    }

    #[test]
    fn k_zero_and_sorted_contract() {
        let data = random_set(100, 8, 5);
        let idx = IvfPqIndex::build(
            &data,
            IvfPqConfig { pq: PqConfig { m: 2, ks: 16, kmeans_iters: 4, seed: 0 }, ..config_small() },
        );
        assert!(idx.search(data.get(0), 0).is_empty());
        let hits = idx.search(data.get(0), 10);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }
}
