//! Scalar quantization (SQ8): each dimension compressed to one byte with
//! per-dimension min/max calibration — the simplest FAISS compression tier
//! (4× smaller than f32), included as a middle point between the flat
//! index and product quantization.
// lint: hot-path

use crate::flat::batch_search;
use crate::topk::{Neighbor, TopK};
use crate::vectors::VectorSet;

/// Per-dimension affine quantizer to `u8`.
#[derive(Debug, Clone)]
pub struct ScalarQuantizer {
    mins: Vec<f32>,
    scales: Vec<f32>, // (max - min) / 255, zero-safe
}

impl ScalarQuantizer {
    /// Calibrates min/max per dimension from `data`.
    ///
    /// # Panics
    /// Panics on an empty collection.
    pub fn train(data: &VectorSet) -> Self {
        assert!(!data.is_empty(), "SQ8 training data is empty");
        let dim = data.dim();
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for v in data.iter() {
            for j in 0..dim {
                mins[j] = mins[j].min(v[j]);
                maxs[j] = maxs[j].max(v[j]);
            }
        }
        let scales = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| ((hi - lo) / 255.0).max(1e-12))
            .collect();
        ScalarQuantizer { mins, scales }
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Encodes one vector to `dim` bytes (values clamped to the calibrated
    /// range).
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim(), "encode dim {} != {}", v.len(), self.dim());
        v.iter()
            .zip(self.mins.iter().zip(&self.scales))
            .map(|(&x, (&lo, &s))| (((x - lo) / s).round().clamp(0.0, 255.0)) as u8)
            .collect()
    }

    /// Reconstructs the approximate vector for a code.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.dim(), "code len {} != {}", code.len(), self.dim());
        code.iter()
            .zip(self.mins.iter().zip(&self.scales))
            .map(|(&c, (&lo, &s))| lo + c as f32 * s)
            .collect()
    }

    /// Squared distance between a raw query and a code, computed by
    /// on-the-fly dequantization (asymmetric). Dispatches through the
    /// kernel layer (AVX2 widens 8 code bytes per step).
    #[inline]
    pub fn asym_sq_dist(&self, query: &[f32], code: &[u8]) -> f32 {
        crate::kernels::sq8_asym(query, code, &self.mins, &self.scales)
    }
}

/// Flat index over SQ8 codes.
pub struct SqIndex {
    quantizer: ScalarQuantizer,
    codes: Vec<u8>,
    n: usize,
}

impl SqIndex {
    /// Calibrates the quantizer on `data` and encodes every vector.
    pub fn build(data: &VectorSet) -> Self {
        let quantizer = ScalarQuantizer::train(data);
        let mut codes = Vec::with_capacity(data.len() * data.dim());
        for v in data.iter() {
            codes.extend_from_slice(&quantizer.encode(v));
        }
        SqIndex { quantizer, codes, n: data.len() }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code bytes (1 byte per dimension per vector).
    pub fn nbytes(&self) -> usize {
        self.codes.len() + self.quantizer.dim() * 8
    }

    /// Approximate `k` nearest neighbours, ascending by distance.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if self.n == 0 || k == 0 {
            return Vec::new();
        }
        let dim = self.quantizer.dim();
        let mut tk = TopK::new(k);
        for i in 0..self.n {
            let code = &self.codes[i * dim..(i + 1) * dim];
            tk.push(i, self.quantizer.asym_sq_dist(query, code));
        }
        tk.into_sorted()
    }

    /// Batch search across `threads` threads.
    pub fn search_batch(&self, queries: &VectorSet, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        batch_search(queries, k, threads, |q, k| self.search(q, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::vectors::sq_l2;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            vs.push(&v);
        }
        vs
    }

    #[test]
    fn quantization_error_is_small() {
        let data = random_set(200, 16, 1);
        let sq = ScalarQuantizer::train(&data);
        for v in data.iter().take(20) {
            let rec = sq.decode(&sq.encode(v));
            let err = sq_l2(v, &rec);
            // 8 bits over a 4-unit range: step ~0.016, sq err per dim ~6e-5
            assert!(err < 0.01, "reconstruction error {err}");
        }
    }

    #[test]
    fn search_nearly_matches_flat() {
        let data = random_set(500, 16, 2);
        let flat = FlatIndex::new(data.clone());
        let idx = SqIndex::build(&data);
        let queries = random_set(20, 16, 3);
        let mut recall = 0.0;
        for q in queries.iter() {
            let truth: Vec<usize> = flat.search(q, 10).iter().map(|n| n.index).collect();
            let got: Vec<usize> = idx.search(q, 10).iter().map(|n| n.index).collect();
            recall += truth.iter().filter(|i| got.contains(i)).count() as f64 / 10.0;
        }
        recall /= 20.0;
        assert!(recall > 0.95, "SQ8 recall@10 too low: {recall}");
    }

    #[test]
    fn four_times_smaller_than_raw() {
        let data = random_set(400, 64, 4);
        let idx = SqIndex::build(&data);
        assert!(idx.nbytes() < data.nbytes() / 3);
    }

    #[test]
    fn constant_dimension_is_safe() {
        let mut vs = VectorSet::new(2);
        for i in 0..10 {
            vs.push(&[5.0, i as f32]); // dim 0 constant
        }
        let sq = ScalarQuantizer::train(&vs);
        let rec = sq.decode(&sq.encode(&[5.0, 3.0]));
        assert!((rec[0] - 5.0).abs() < 1e-4);
        assert!((rec[1] - 3.0).abs() < 0.05);
    }

    #[test]
    fn asym_dist_matches_decode_dist() {
        let data = random_set(50, 8, 5);
        let sq = ScalarQuantizer::train(&data);
        let q = data.get(0);
        for v in data.iter().take(10) {
            let code = sq.encode(v);
            let a = sq.asym_sq_dist(q, &code);
            let b = sq_l2(q, &sq.decode(&code));
            assert!((a - b).abs() < 1e-4);
        }
    }
}
