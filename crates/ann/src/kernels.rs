//! Runtime-dispatched SIMD distance kernels — the single home for every
//! hot distance loop in the workspace (all ANN backends plus, via
//! `emblookup-tensor`, the blocked-matmul inner product).
//!
//! # Dispatch
//!
//! The first distance call resolves a kernel *variant* once per process
//! and caches it in an [`AtomicU8`]:
//!
//! | variant    | when                                                        |
//! |------------|-------------------------------------------------------------|
//! | `scalar`   | `EMBLOOKUP_KERNEL=scalar`, or no SIMD path for this CPU     |
//! | `avx2fma`  | x86_64 with AVX2 **and** FMA detected at runtime            |
//! | `neon`     | aarch64 (NEON is baseline on AArch64)                       |
//!
//! `EMBLOOKUP_KERNEL=scalar|auto` is resolved once, mirroring how
//! `EMBLOOKUP_THREADS` pins the pool width; any value other than
//! `scalar` means auto-detect. [`active`] reports the resolved name so
//! benchmarks can record it next to their numbers.
//!
//! # Determinism contract
//!
//! For a *fixed* variant, every kernel is a pure function of its inputs:
//! results are bit-identical across calls, threads, and pool widths.
//! Scalar and SIMD variants of `sq_l2`/`dot`/`sq8_asym` may differ in
//! float rounding (different add order, FMA contraction); tests bound
//! the divergence at 1e-5 relative error. The ADC kernels are stricter:
//! [`adc`] sums in ascending sub-quantizer order in every variant, and
//! [`adc4`] accumulates each lane in that same order, so batched and
//! per-code ADC agree **bit-exactly** under every variant.
//!
//! # Adding an ISA path
//!
//! Add a `#[target_feature]`-gated module here (L002 rejects
//! `target_feature` in any other lib file), a variant constant, a
//! detection arm in `detect()`, and a dispatch arm in each public
//! wrapper. Every `unsafe` token needs an `// lint: allow(L002)`
//! justification naming the dispatch-time feature check that makes it
//! sound.
// lint: hot-path

use std::sync::atomic::{AtomicU8, Ordering};

/// Variant value before first resolution.
const V_UNRESOLVED: u8 = 0;
/// Unrolled scalar fallback (also the forced `EMBLOOKUP_KERNEL=scalar`).
const V_SCALAR: u8 = 1;
/// x86_64 AVX2 + FMA path.
const V_AVX2: u8 = 2;
/// aarch64 NEON path.
const V_NEON: u8 = 3;

// One-shot publication of the resolved kernel variant: init() detects CPU
// features / reads EMBLOOKUP_KERNEL once and store(Release)s; hot-path
// readers load(Acquire) and treat 0 as "unresolved". A benign race between
// first callers only repeats the cheap, idempotent detection.
// lint: atomic(flag) one-shot publish of the detected kernel variant
static KERNEL: AtomicU8 = AtomicU8::new(V_UNRESOLVED);

/// Resolved kernel variant, resolving it on first use.
#[inline]
fn variant() -> u8 {
    match KERNEL.load(Ordering::Acquire) {
        V_UNRESOLVED => init(),
        v => v,
    }
}

/// Cold path of [`variant`]: resolves `EMBLOOKUP_KERNEL` and CPU
/// detection once, publishes the result.
#[cold]
fn init() -> u8 {
    let forced_scalar = std::env::var("EMBLOOKUP_KERNEL")
        .is_ok_and(|v| v.trim().eq_ignore_ascii_case("scalar"));
    let v = if forced_scalar { V_SCALAR } else { detect() };
    KERNEL.store(v, Ordering::Release);
    v
}

/// CPU-feature detection (the `auto` policy).
fn detect() -> u8 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        return V_AVX2;
    }
    if cfg!(target_arch = "aarch64") {
        return V_NEON;
    }
    V_SCALAR
}

/// Name of the dispatched kernel variant (`"scalar"`, `"avx2fma"`, or
/// `"neon"`), for benchmark records and diagnostics.
pub fn active() -> &'static str {
    match variant() {
        V_AVX2 => "avx2fma",
        V_NEON => "neon",
        _ => "scalar",
    }
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if variant() == V_AVX2 {
        // lint: allow(L002) gated by dispatch: V_AVX2 is published only after is_x86_feature_detected verified avx2+fma
        return unsafe { x86::sq_l2_avx2(a, b) };
    }
    #[cfg(target_arch = "aarch64")]
    if variant() == V_NEON {
        // lint: allow(L002) gated by dispatch: V_NEON implies NEON, which is baseline on aarch64
        return unsafe { neon::sq_l2_neon(a, b) };
    }
    scalar::sq_l2(a, b)
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    if variant() == V_AVX2 {
        // lint: allow(L002) gated by dispatch: V_AVX2 is published only after is_x86_feature_detected verified avx2+fma
        return unsafe { x86::dot_avx2(a, b) };
    }
    #[cfg(target_arch = "aarch64")]
    if variant() == V_NEON {
        // lint: allow(L002) gated by dispatch: V_NEON implies NEON, which is baseline on aarch64
        return unsafe { neon::dot_neon(a, b) };
    }
    scalar::dot(a, b)
}

/// ADC distance of one PQ code against a distance table laid out as
/// `table[j * ks + c]`.
///
/// Deliberately scalar in every variant: for a single code the `m`
/// dependent table loads don't amortize a gather, and the strict
/// ascending-`j` summation is what makes [`adc4`] lanes bit-exact
/// against this function.
#[inline]
pub fn adc(table: &[f32], ks: usize, code: &[u8]) -> f32 {
    scalar::adc(table, ks, code)
}

/// Batched ADC: four codes scored against one distance table per call.
///
/// Each output lane equals `adc(table, ks, codes[lane])` bit-exactly:
/// the SIMD path gathers one `j` row across all four lanes and adds in
/// ascending `j`, the same order the single-code kernel uses.
#[inline]
pub fn adc4(table: &[f32], ks: usize, codes: [&[u8]; 4]) -> [f32; 4] {
    #[cfg(target_arch = "x86_64")]
    if variant() == V_AVX2 {
        // lint: allow(L002) gated by dispatch: V_AVX2 is published only after is_x86_feature_detected verified avx2+fma
        return unsafe { x86::adc4_avx2(table, ks, codes) };
    }
    scalar::adc4(table, ks, codes)
}

/// Block ADC: scores `out.len()` contiguous `m`-byte codes against one
/// distance table in a single dispatched call.
///
/// `out[i]` equals `adc(table, ks, &codes[i * m..][..m])` **bit-exactly**
/// under every variant: full quads go through the four-lane body (whose
/// lanes add in ascending `j`) and the remainder uses the single-code
/// order. One dispatch + one call per *block* is what lets the SIMD win
/// survive — per-quad calls into a `#[target_feature]` function cannot
/// inline, and the call overhead eats the kernel's gain.
#[inline]
pub fn adc_block(table: &[f32], ks: usize, m: usize, codes: &[u8], out: &mut [f32]) {
    debug_assert!(m > 0 && out.len() * m <= codes.len());
    debug_assert!(m * ks <= table.len());
    #[cfg(target_arch = "x86_64")]
    if variant() == V_AVX2 {
        // lint: allow(L002) gated by dispatch: V_AVX2 is published only after is_x86_feature_detected verified avx2+fma
        return unsafe { x86::adc_block_avx2(table, ks, m, codes, out) };
    }
    scalar::adc_block(table, ks, m, codes, out);
}

/// Block squared-L2: distances from `query` to `out.len()` contiguous
/// rows of `query.len()` floats each, in a single dispatched call — the
/// ADC table-build shape (one sub-query against a whole codebook).
/// Same rounding contract as [`sq_l2`]: SIMD variants may differ from
/// scalar within the tested 1e-5 relative bound.
#[inline]
pub fn sq_l2_block(query: &[f32], rows: &[f32], out: &mut [f32]) {
    debug_assert!(out.len() * query.len() <= rows.len());
    #[cfg(target_arch = "x86_64")]
    if variant() == V_AVX2 {
        // lint: allow(L002) gated by dispatch: V_AVX2 is published only after is_x86_feature_detected verified avx2+fma
        return unsafe { x86::sq_l2_block_avx2(query, rows, out) };
    }
    #[cfg(target_arch = "aarch64")]
    if variant() == V_NEON {
        // lint: allow(L002) gated by dispatch: V_NEON implies NEON, which is baseline on aarch64
        return unsafe { neon::sq_l2_block_neon(query, rows, out) };
    }
    scalar::sq_l2_block(query, rows, out);
}

/// Asymmetric SQ8 squared distance: raw query vs per-dimension affine
/// code `mins[j] + code[j] * scales[j]`.
#[inline]
pub fn sq8_asym(query: &[f32], code: &[u8], mins: &[f32], scales: &[f32]) -> f32 {
    debug_assert_eq!(query.len(), code.len());
    #[cfg(target_arch = "x86_64")]
    if variant() == V_AVX2 {
        // lint: allow(L002) gated by dispatch: V_AVX2 is published only after is_x86_feature_detected verified avx2+fma
        return unsafe { x86::sq8_asym_avx2(query, code, mins, scales) };
    }
    #[cfg(target_arch = "aarch64")]
    if variant() == V_NEON {
        // lint: allow(L002) gated by dispatch: V_NEON implies NEON, which is baseline on aarch64
        return unsafe { neon::sq8_asym_neon(query, code, mins, scales) };
    }
    scalar::sq8_asym(query, code, mins, scales)
}

/// Unrolled scalar reference kernels — the fallback variant and the
/// ground truth the SIMD paths are tested against. Four independent
/// accumulators break the serial float dependency chain (the compiler
/// cannot reassociate float adds itself), which both saturates the FMA
/// pipes and gives the autovectorizer a clean reduction shape.
pub mod scalar {
    /// Squared Euclidean distance (reference).
    #[inline]
    pub fn sq_l2(a: &[f32], b: &[f32]) -> f32 {
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (ka, kb) in (&mut ca).zip(&mut cb) {
            let d0 = ka[0] - kb[0];
            let d1 = ka[1] - kb[1];
            let d2 = ka[2] - kb[2];
            let d3 = ka[3] - kb[3];
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
            s3 += d3 * d3;
        }
        let rest: f32 = ca
            .remainder()
            .iter()
            .zip(cb.remainder())
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum();
        (s0 + s1) + (s2 + s3) + rest
    }

    /// Dot product (reference).
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut ca = a.chunks_exact(4);
        let mut cb = b.chunks_exact(4);
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        for (ka, kb) in (&mut ca).zip(&mut cb) {
            s0 += ka[0] * kb[0];
            s1 += ka[1] * kb[1];
            s2 += ka[2] * kb[2];
            s3 += ka[3] * kb[3];
        }
        let rest: f32 = ca
            .remainder()
            .iter()
            .zip(cb.remainder())
            .map(|(&x, &y)| x * y)
            .sum();
        (s0 + s1) + (s2 + s3) + rest
    }

    /// Single-code ADC (reference). Strict ascending-`j` summation —
    /// the order contract shared with [`adc4`].
    #[inline]
    pub fn adc(table: &[f32], ks: usize, code: &[u8]) -> f32 {
        let mut acc = 0.0f32;
        for (j, &c) in code.iter().enumerate() {
            acc += table[j * ks + c as usize];
        }
        acc
    }

    /// Four-lane ADC (reference): each lane sums in ascending `j`, so
    /// lane `l` equals `adc(table, ks, codes[l])` bit-exactly.
    #[inline]
    pub fn adc4(table: &[f32], ks: usize, codes: [&[u8]; 4]) -> [f32; 4] {
        let m = codes[0].len();
        let mut out = [0.0f32; 4];
        for j in 0..m {
            let row = j * ks;
            out[0] += table[row + codes[0][j] as usize];
            out[1] += table[row + codes[1][j] as usize];
            out[2] += table[row + codes[2][j] as usize];
            out[3] += table[row + codes[3][j] as usize];
        }
        out
    }

    /// Block ADC (reference): one single-code ADC per output slot, so
    /// the block form is bit-exact against the per-code form by
    /// construction.
    #[inline]
    pub fn adc_block(table: &[f32], ks: usize, m: usize, codes: &[u8], out: &mut [f32]) {
        for (o, code) in out.iter_mut().zip(codes.chunks_exact(m)) {
            *o = adc(table, ks, code);
        }
    }

    /// Block squared-L2 (reference): one row at a time.
    #[inline]
    pub fn sq_l2_block(query: &[f32], rows: &[f32], out: &mut [f32]) {
        let dim = query.len();
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(dim)) {
            *o = sq_l2(query, row);
        }
    }

    /// Asymmetric SQ8 distance (reference).
    #[inline]
    pub fn sq8_asym(query: &[f32], code: &[u8], mins: &[f32], scales: &[f32]) -> f32 {
        let n = code.len();
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let mut j = 0;
        while j + 4 <= n {
            let d0 = query[j] - (mins[j] + code[j] as f32 * scales[j]);
            let d1 = query[j + 1] - (mins[j + 1] + code[j + 1] as f32 * scales[j + 1]);
            let d2 = query[j + 2] - (mins[j + 2] + code[j + 2] as f32 * scales[j + 2]);
            let d3 = query[j + 3] - (mins[j + 3] + code[j + 3] as f32 * scales[j + 3]);
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
            s3 += d3 * d3;
            j += 4;
        }
        let mut rest = 0.0f32;
        while j < n {
            let d = query[j] - (mins[j] + code[j] as f32 * scales[j]);
            rest += d * d;
            j += 1;
        }
        (s0 + s1) + (s2 + s3) + rest
    }
}

/// AVX2 + FMA kernels. Every function here is sound only after
/// dispatch-time detection; nothing outside [`variant`]-guarded arms
/// may call in.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// Horizontal sum of one 256-bit register.
    ///
    /// # Safety
    /// Requires AVX2 (guaranteed by the caller's dispatch check).
    #[target_feature(enable = "avx2")]
    // lint: allow(L002) target_feature helper, reached only from dispatch-gated kernels in this module
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0b01));
        _mm_cvtss_f32(s)
    }

    /// Squared Euclidean distance, two FMA chains of 8 lanes.
    ///
    /// # Safety
    /// Requires AVX2+FMA; called only when `variant() == V_AVX2`.
    #[target_feature(enable = "avx2", enable = "fma")]
    // lint: allow(L002) sound under dispatch: V_AVX2 is published only after runtime avx2+fma detection
    pub unsafe fn sq_l2_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            let d0 = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
            );
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(i + 8)),
                _mm256_loadu_ps(b.as_ptr().add(i + 8)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        if i + 8 <= n {
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
            );
            acc0 = _mm256_fmadd_ps(d, d, acc0);
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            let d = a[i] - b[i];
            sum += d * d;
            i += 1;
        }
        sum
    }

    /// Dot product, two FMA chains of 8 lanes.
    ///
    /// # Safety
    /// Requires AVX2+FMA; called only when `variant() == V_AVX2`.
    #[target_feature(enable = "avx2", enable = "fma")]
    // lint: allow(L002) sound under dispatch: V_AVX2 is published only after runtime avx2+fma detection
    pub unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
                acc0,
            );
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(i + 8)),
                _mm256_loadu_ps(b.as_ptr().add(i + 8)),
                acc1,
            );
            i += 16;
        }
        if i + 8 <= n {
            acc0 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.as_ptr().add(i)),
                _mm256_loadu_ps(b.as_ptr().add(i)),
                acc0,
            );
            i += 8;
        }
        let mut sum = hsum256(_mm256_add_ps(acc0, acc1));
        while i < n {
            sum += a[i] * b[i];
            i += 1;
        }
        sum
    }

    /// Four-lane ADC: per sub-quantizer, four unchecked table loads
    /// packed into one 128-bit lane add. Lane adds happen in ascending
    /// `j`, matching the scalar single-code order, so each lane is
    /// bit-exact against `scalar::adc`. Deliberately NOT gather-based:
    /// `vgatherdps` is microcoded (and Downfall-mitigated hosts make it
    /// slower than four plain loads), while ADC is load-bound — the win
    /// here is eliding the per-element bounds checks the safe scalar
    /// path pays.
    ///
    /// # Safety
    /// Requires AVX2; called only when `variant() == V_AVX2`. The table
    /// loads stay in-bounds because every code byte `c` satisfies
    /// `j * ks + c < table.len()` (codes are produced against the same
    /// `m × ks` table layout).
    #[target_feature(enable = "avx2")]
    // lint: allow(L002) sound under dispatch: V_AVX2 is published only after runtime avx2+fma detection
    pub unsafe fn adc4_avx2(table: &[f32], ks: usize, codes: [&[u8]; 4]) -> [f32; 4] {
        let m = codes[0].len();
        debug_assert!(m * ks <= table.len());
        let base = table.as_ptr();
        let (c0, c1, c2, c3) = (
            codes[0].as_ptr(),
            codes[1].as_ptr(),
            codes[2].as_ptr(),
            codes[3].as_ptr(),
        );
        let mut acc = _mm_setzero_ps();
        let mut row = 0usize;
        for j in 0..m {
            let v = _mm_set_ps(
                *base.add(row + *c3.add(j) as usize),
                *base.add(row + *c2.add(j) as usize),
                *base.add(row + *c1.add(j) as usize),
                *base.add(row + *c0.add(j) as usize),
            );
            acc = _mm_add_ps(acc, v);
            row += ks;
        }
        let mut out = [0.0f32; 4];
        _mm_storeu_ps(out.as_mut_ptr(), acc);
        out
    }

    /// Block ADC: full quads through the four-lane body, remainder in
    /// single-code order — both with unchecked loads and ascending-`j`
    /// scalar adds per lane, so every output slot is bit-exact against
    /// `scalar::adc`. Looping *inside* the `target_feature` boundary
    /// amortizes the uninlinable dispatch call over the whole block.
    ///
    /// # Safety
    /// Requires AVX2; called only when `variant() == V_AVX2`. Caller
    /// guarantees `out.len() * m <= codes.len()`, `m * ks <= table.len()`
    /// and that every code byte is `< ks` (codes are produced against
    /// the same `m × ks` table layout).
    #[target_feature(enable = "avx2")]
    // lint: allow(L002) sound under dispatch: V_AVX2 is published only after runtime avx2+fma detection
    pub unsafe fn adc_block_avx2(table: &[f32], ks: usize, m: usize, codes: &[u8], out: &mut [f32]) {
        let n = out.len();
        let base = table.as_ptr();
        let cp = codes.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let c0 = cp.add(i * m);
            let c1 = cp.add((i + 1) * m);
            let c2 = cp.add((i + 2) * m);
            let c3 = cp.add((i + 3) * m);
            let mut acc = _mm_setzero_ps();
            let mut row = 0usize;
            for j in 0..m {
                let v = _mm_set_ps(
                    *base.add(row + *c3.add(j) as usize),
                    *base.add(row + *c2.add(j) as usize),
                    *base.add(row + *c1.add(j) as usize),
                    *base.add(row + *c0.add(j) as usize),
                );
                acc = _mm_add_ps(acc, v);
                row += ks;
            }
            _mm_storeu_ps(op.add(i), acc);
            i += 4;
        }
        while i < n {
            let c = cp.add(i * m);
            let mut s = 0.0f32;
            let mut row = 0usize;
            for j in 0..m {
                s += *base.add(row + *c.add(j) as usize);
                row += ks;
            }
            *op.add(i) = s;
            i += 1;
        }
    }

    /// Block squared-L2: the row loop lives inside the feature boundary
    /// so the per-row kernel inlines into it.
    ///
    /// # Safety
    /// Requires AVX2+FMA; called only when `variant() == V_AVX2`. Caller
    /// guarantees `out.len() * query.len() <= rows.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    // lint: allow(L002) sound under dispatch: V_AVX2 is published only after runtime avx2+fma detection
    pub unsafe fn sq_l2_block_avx2(query: &[f32], rows: &[f32], out: &mut [f32]) {
        let dim = query.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = sq_l2_avx2(query, rows.get_unchecked(i * dim..(i + 1) * dim));
        }
    }

    /// Asymmetric SQ8 distance: widen 8 code bytes, dequantize with one
    /// FMA, accumulate the squared diff with another.
    ///
    /// # Safety
    /// Requires AVX2+FMA; called only when `variant() == V_AVX2`.
    #[target_feature(enable = "avx2", enable = "fma")]
    // lint: allow(L002) sound under dispatch: V_AVX2 is published only after runtime avx2+fma detection
    pub unsafe fn sq8_asym_avx2(query: &[f32], code: &[u8], mins: &[f32], scales: &[f32]) -> f32 {
        let n = code.len().min(query.len());
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i + 8 <= n {
            let c = _mm_loadl_epi64(code.as_ptr().add(i) as *const __m128i);
            let cf = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(c));
            let x = _mm256_fmadd_ps(
                cf,
                _mm256_loadu_ps(scales.as_ptr().add(i)),
                _mm256_loadu_ps(mins.as_ptr().add(i)),
            );
            let d = _mm256_sub_ps(_mm256_loadu_ps(query.as_ptr().add(i)), x);
            acc = _mm256_fmadd_ps(d, d, acc);
            i += 8;
        }
        let mut sum = hsum256(acc);
        while i < n {
            let d = query[i] - (mins[i] + code[i] as f32 * scales[i]);
            sum += d * d;
            i += 1;
        }
        sum
    }
}

/// NEON kernels (aarch64; NEON is architecturally baseline there, so
/// dispatch needs no feature probe beyond the arch gate).
#[cfg(target_arch = "aarch64")]
mod neon {
    use core::arch::aarch64::*;

    /// Squared Euclidean distance, two FMA chains of 4 lanes.
    ///
    /// # Safety
    /// Requires NEON; called only when `variant() == V_NEON`.
    #[target_feature(enable = "neon")]
    // lint: allow(L002) sound under dispatch: V_NEON is published only on aarch64 where NEON is baseline
    pub unsafe fn sq_l2_neon(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 8 <= n {
            let d0 = vsubq_f32(vld1q_f32(a.as_ptr().add(i)), vld1q_f32(b.as_ptr().add(i)));
            let d1 = vsubq_f32(
                vld1q_f32(a.as_ptr().add(i + 4)),
                vld1q_f32(b.as_ptr().add(i + 4)),
            );
            acc0 = vfmaq_f32(acc0, d0, d0);
            acc1 = vfmaq_f32(acc1, d1, d1);
            i += 8;
        }
        if i + 4 <= n {
            let d = vsubq_f32(vld1q_f32(a.as_ptr().add(i)), vld1q_f32(b.as_ptr().add(i)));
            acc0 = vfmaq_f32(acc0, d, d);
            i += 4;
        }
        let mut sum = vaddvq_f32(vaddq_f32(acc0, acc1));
        while i < n {
            let d = a[i] - b[i];
            sum += d * d;
            i += 1;
        }
        sum
    }

    /// Dot product, two FMA chains of 4 lanes.
    ///
    /// # Safety
    /// Requires NEON; called only when `variant() == V_NEON`.
    #[target_feature(enable = "neon")]
    // lint: allow(L002) sound under dispatch: V_NEON is published only on aarch64 where NEON is baseline
    pub unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0;
        while i + 8 <= n {
            acc0 = vfmaq_f32(
                acc0,
                vld1q_f32(a.as_ptr().add(i)),
                vld1q_f32(b.as_ptr().add(i)),
            );
            acc1 = vfmaq_f32(
                acc1,
                vld1q_f32(a.as_ptr().add(i + 4)),
                vld1q_f32(b.as_ptr().add(i + 4)),
            );
            i += 8;
        }
        if i + 4 <= n {
            acc0 = vfmaq_f32(
                acc0,
                vld1q_f32(a.as_ptr().add(i)),
                vld1q_f32(b.as_ptr().add(i)),
            );
            i += 4;
        }
        let mut sum = vaddvq_f32(vaddq_f32(acc0, acc1));
        while i < n {
            sum += a[i] * b[i];
            i += 1;
        }
        sum
    }

    /// Block squared-L2: the row loop lives inside the feature boundary
    /// so the per-row kernel inlines into it.
    ///
    /// # Safety
    /// Requires NEON; called only when `variant() == V_NEON`. Caller
    /// guarantees `out.len() * query.len() <= rows.len()`.
    #[target_feature(enable = "neon")]
    // lint: allow(L002) sound under dispatch: V_NEON is published only on aarch64 where NEON is baseline
    pub unsafe fn sq_l2_block_neon(query: &[f32], rows: &[f32], out: &mut [f32]) {
        let dim = query.len();
        for (i, o) in out.iter_mut().enumerate() {
            *o = sq_l2_neon(query, rows.get_unchecked(i * dim..(i + 1) * dim));
        }
    }

    /// Asymmetric SQ8 distance: widen 4 code bytes per step, dequantize
    /// and accumulate with FMA.
    ///
    /// # Safety
    /// Requires NEON; called only when `variant() == V_NEON`.
    #[target_feature(enable = "neon")]
    // lint: allow(L002) sound under dispatch: V_NEON is published only on aarch64 where NEON is baseline
    pub unsafe fn sq8_asym_neon(query: &[f32], code: &[u8], mins: &[f32], scales: &[f32]) -> f32 {
        let n = code.len().min(query.len());
        let mut acc = vdupq_n_f32(0.0);
        let mut i = 0;
        let mut widened = [0.0f32; 4];
        while i + 4 <= n {
            for (w, &c) in widened.iter_mut().zip(&code[i..i + 4]) {
                *w = c as f32;
            }
            let cf = vld1q_f32(widened.as_ptr());
            let x = vfmaq_f32(vld1q_f32(mins.as_ptr().add(i)), cf, vld1q_f32(scales.as_ptr().add(i)));
            let d = vsubq_f32(vld1q_f32(query.as_ptr().add(i)), x);
            acc = vfmaq_f32(acc, d, d);
            i += 4;
        }
        let mut sum = vaddvq_f32(acc);
        while i < n {
            let d = query[i] - (mins[i] + code[i] as f32 * scales[i]);
            sum += d * d;
            i += 1;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect()
    }

    fn rel_err(got: f32, want: f32) -> f32 {
        (got - want).abs() / want.abs().max(1.0)
    }

    #[test]
    fn active_names_a_known_variant() {
        assert!(matches!(active(), "scalar" | "avx2fma" | "neon"));
    }

    #[test]
    fn scalar_env_override_forces_scalar() {
        // ci.sh runs the suite under EMBLOOKUP_KERNEL=scalar and =auto;
        // when the override is set it must win over detection.
        if std::env::var("EMBLOOKUP_KERNEL").is_ok_and(|v| v.trim() == "scalar") {
            assert_eq!(active(), "scalar");
        }
    }

    #[test]
    fn dispatched_matches_scalar_reference_across_tail_dims() {
        // odd dims exercise every remainder tail: 1 (all tail), 7
        // (sub-register), 63 (one short of two full AVX2 steps), 100
        let mut rng = StdRng::seed_from_u64(7);
        for &dim in &[1usize, 7, 63, 100] {
            let a = random_vec(dim, &mut rng);
            let b = random_vec(dim, &mut rng);
            let e = rel_err(sq_l2(&a, &b), scalar::sq_l2(&a, &b));
            assert!(e < 1e-5, "sq_l2 dim {dim}: rel err {e}");
            let e = rel_err(dot(&a, &b), scalar::dot(&a, &b));
            assert!(e < 1e-5, "dot dim {dim}: rel err {e}");
            let mins = random_vec(dim, &mut rng);
            let scales: Vec<f32> = (0..dim).map(|_| rng.gen_range(0.001..0.1)).collect();
            let code: Vec<u8> = (0..dim).map(|_| rng.gen_range(0..=255u16) as u8).collect();
            let e = rel_err(
                sq8_asym(&a, &code, &mins, &scales),
                scalar::sq8_asym(&a, &code, &mins, &scales),
            );
            assert!(e < 1e-5, "sq8_asym dim {dim}: rel err {e}");
        }
    }

    #[test]
    fn batched_adc_is_bit_exact_against_single_code() {
        // odd m leaves no alignment escape hatch; both kernels must sum
        // in ascending j so lanes match to the bit, per the module
        // determinism contract.
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, ks) in &[(1usize, 4usize), (5, 16), (8, 256)] {
            let table = random_vec(m * ks, &mut rng);
            let codes: Vec<Vec<u8>> = (0..4)
                .map(|_| (0..m).map(|_| rng.gen_range(0..ks as u16) as u8).collect())
                .collect();
            let lanes = [&codes[0][..], &codes[1][..], &codes[2][..], &codes[3][..]];
            let batched = adc4(&table, ks, lanes);
            let reference = scalar::adc4(&table, ks, lanes);
            for l in 0..4 {
                let single = adc(&table, ks, &codes[l]);
                assert_eq!(
                    batched[l].to_bits(),
                    single.to_bits(),
                    "m={m} ks={ks} lane {l}: batched != single"
                );
                assert_eq!(batched[l].to_bits(), reference[l].to_bits());
            }
        }
    }

    #[test]
    fn block_adc_is_bit_exact_against_single_code() {
        // 7 codes: one full quad plus a 3-code remainder, so both block
        // paths are exercised; both must match per-code ADC to the bit.
        let mut rng = StdRng::seed_from_u64(17);
        for &(m, ks) in &[(1usize, 4usize), (5, 16), (8, 256)] {
            let table = random_vec(m * ks, &mut rng);
            let n = 7;
            let codes: Vec<u8> = (0..n * m).map(|_| rng.gen_range(0..ks as u16) as u8).collect();
            let mut out = vec![0.0f32; n];
            adc_block(&table, ks, m, &codes, &mut out);
            for i in 0..n {
                let single = adc(&table, ks, &codes[i * m..(i + 1) * m]);
                assert_eq!(
                    out[i].to_bits(),
                    single.to_bits(),
                    "m={m} ks={ks} code {i}: block != single"
                );
            }
        }
    }

    #[test]
    fn block_sq_l2_matches_per_row() {
        let mut rng = StdRng::seed_from_u64(19);
        for &dim in &[7usize, 8, 64] {
            let q = random_vec(dim, &mut rng);
            let n = 9;
            let rows = random_vec(n * dim, &mut rng);
            let mut out = vec![0.0f32; n];
            sq_l2_block(&q, &rows, &mut out);
            for i in 0..n {
                let want = sq_l2(&q, &rows[i * dim..(i + 1) * dim]);
                let e = rel_err(out[i], want);
                assert!(e < 1e-5, "dim {dim} row {i}: rel err {e}");
            }
        }
    }

    #[test]
    fn adc_matches_naive_sum() {
        let mut rng = StdRng::seed_from_u64(13);
        let (m, ks) = (6, 16);
        let table = random_vec(m * ks, &mut rng);
        let code: Vec<u8> = (0..m).map(|_| rng.gen_range(0..ks as u16) as u8).collect();
        let naive: f32 = code
            .iter()
            .enumerate()
            .map(|(j, &c)| table[j * ks + c as usize])
            .sum();
        assert!(rel_err(adc(&table, ks, &code), naive) < 1e-6);
    }

    #[test]
    fn kernels_agree_on_known_values() {
        assert_eq!(sq_l2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }
}
