//! IVF-Flat: inverted-file index with a k-means coarse quantizer.
//!
//! FAISS's workhorse accelerator: vectors are bucketed by nearest coarse
//! centroid; a query scans only the `nprobe` closest buckets. EmbLookup is
//! "modular and could accommodate either exact or approximate similarity
//! search" (§III-C); this is the approximate non-compressed option.
// lint: hot-path

use crate::flat::batch_search;
use crate::kernels::sq_l2;
use crate::kmeans::{KMeans, KMeansConfig};
use crate::topk::{Neighbor, TopK};
use crate::vectors::VectorSet;

/// Configuration for [`IvfIndex::build`].
#[derive(Debug, Clone, Copy)]
pub struct IvfConfig {
    /// Number of coarse clusters (inverted lists).
    pub nlist: usize,
    /// Number of lists scanned per query.
    pub nprobe: usize,
    /// k-means iterations for the coarse quantizer.
    pub kmeans_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig { nlist: 64, nprobe: 8, kmeans_iters: 15, seed: 0 }
    }
}

/// Inverted-file index over full-precision vectors.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    coarse: KMeans,
    /// For each list: the original indices of its member vectors.
    lists: Vec<Vec<u32>>,
    vectors: VectorSet,
    nprobe: usize,
}

impl IvfIndex {
    /// Builds the index, training the coarse quantizer on the data itself.
    ///
    /// # Panics
    /// Panics on empty data or `nprobe == 0`.
    pub fn build(vectors: VectorSet, config: IvfConfig) -> Self {
        assert!(!vectors.is_empty(), "IVF over empty data");
        assert!(config.nprobe > 0, "nprobe must be positive");
        let nlist = config.nlist.min(vectors.len()).max(1);
        let coarse = KMeans::fit(
            &vectors,
            KMeansConfig {
                k: nlist,
                max_iters: config.kmeans_iters,
                seed: config.seed,
            },
        );
        let mut lists = vec![Vec::new(); nlist];
        for (i, v) in vectors.iter().enumerate() {
            let (c, _) = coarse.assign(v);
            lists[c].push(i as u32);
        }
        IvfIndex {
            coarse,
            lists,
            vectors,
            nprobe: config.nprobe.min(nlist),
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Exact byte size of the stored index: the full-precision vectors
    /// plus the coarse centroids and the inverted-list postings (`u32`
    /// row ids).
    pub fn nbytes(&self) -> usize {
        let postings: usize =
            self.lists.iter().map(Vec::len).sum::<usize>() * std::mem::size_of::<u32>();
        self.vectors.nbytes() + self.coarse.centroids().nbytes() + postings
    }

    /// Approximate `k` nearest neighbours scanning `nprobe` lists.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_counted(query, k).0
    }

    /// Traced twin of [`IvfIndex::search`]: identical results, plus
    /// `backend`/`visited` annotations on `span`.
    pub fn search_traced(
        &self,
        query: &[f32],
        k: usize,
        span: &emblookup_obs::TraceSpan,
    ) -> Vec<Neighbor> {
        let (hits, visited) = self.search_counted(query, k);
        span.annotate("backend", "ivf");
        span.annotate("visited", visited);
        hits
    }

    /// The search body, also returning how many vectors were scanned.
    fn search_counted(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, u64) {
        if self.vectors.is_empty() || k == 0 {
            return (Vec::new(), 0);
        }
        // rank lists by centroid distance
        let mut order: Vec<(usize, f32)> = self
            .coarse
            .centroids()
            .iter()
            .enumerate()
            .map(|(c, cent)| (c, sq_l2(query, cent)))
            .collect();
        order.sort_by(|a, b| a.1.total_cmp(&b.1));

        let mut tk = TopK::new(k);
        let mut visited = 0u64;
        for &(list, _) in order.iter().take(self.nprobe) {
            visited += self.lists[list].len() as u64;
            for &i in &self.lists[list] {
                tk.push(i as usize, sq_l2(query, self.vectors.get(i as usize)));
            }
        }
        crate::metrics::ivf_searches().inc();
        crate::metrics::ivf_visited().add(visited);
        (tk.into_sorted(), visited)
    }

    /// Batch search across `threads` threads.
    pub fn search_batch(&self, queries: &VectorSet, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        batch_search(queries, k, threads, |q, k| self.search(q, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        vs
    }

    #[test]
    fn probing_all_lists_is_exact() {
        let data = random_set(300, 8, 1);
        let flat = FlatIndex::new(data.clone());
        let ivf = IvfIndex::build(
            data.clone(),
            IvfConfig { nlist: 10, nprobe: 10, kmeans_iters: 10, seed: 0 },
        );
        for q in random_set(10, 8, 2).iter() {
            let truth: Vec<usize> = flat.search(q, 5).iter().map(|n| n.index).collect();
            let got: Vec<usize> = ivf.search(q, 5).iter().map(|n| n.index).collect();
            assert_eq!(truth, got);
        }
    }

    #[test]
    fn partial_probe_has_reasonable_recall() {
        let data = random_set(500, 8, 3);
        let flat = FlatIndex::new(data.clone());
        let ivf = IvfIndex::build(
            data.clone(),
            IvfConfig { nlist: 20, nprobe: 5, kmeans_iters: 10, seed: 0 },
        );
        let queries = random_set(20, 8, 4);
        let mut recall = 0.0;
        for q in queries.iter() {
            let truth: Vec<usize> = flat.search(q, 10).iter().map(|n| n.index).collect();
            let got: Vec<usize> = ivf.search(q, 10).iter().map(|n| n.index).collect();
            recall += truth.iter().filter(|i| got.contains(i)).count() as f64 / 10.0;
        }
        recall /= 20.0;
        assert!(recall > 0.5, "recall@10 with nprobe 5/20 too low: {recall}");
    }

    #[test]
    fn every_vector_lands_in_exactly_one_list() {
        let data = random_set(100, 4, 5);
        let ivf = IvfIndex::build(data, IvfConfig::default());
        let total: usize = ivf.lists.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn tiny_input_clamps_nlist() {
        let data = random_set(3, 4, 6);
        let ivf = IvfIndex::build(
            data,
            IvfConfig { nlist: 64, nprobe: 8, kmeans_iters: 5, seed: 0 },
        );
        assert!(ivf.nlist() <= 3);
        assert_eq!(ivf.search(&[0.0; 4], 3).len(), 3);
    }
}
