//! Product quantization (§III-D of the paper).
//!
//! A `D`-dimensional embedding is split into `m` contiguous sub-vectors;
//! each sub-vector is quantized to the nearest of `ks` centroids learned by
//! k-means, so a vector is stored as `m` small integers (8 bytes for the
//! paper's default `D = 64`, `m = 8`, `ks = 256`). Queries use asymmetric
//! distance computation (ADC): a per-query table of query-to-centroid
//! distances turns each distance evaluation into `m` table lookups.
// lint: hot-path

use crate::kernels::{self, sq_l2};
use crate::kmeans::{KMeans, KMeansConfig};
use crate::topk::{Neighbor, TopK};
use crate::vectors::VectorSet;

/// Configuration for [`ProductQuantizer::train`].
#[derive(Debug, Clone, Copy)]
pub struct PqConfig {
    /// Number of sub-quantizers (`m`); must divide the vector dimension.
    pub m: usize,
    /// Centroids per sub-quantizer (`ks`, ≤ 256 so codes fit in a byte).
    pub ks: usize,
    /// k-means iterations per sub-quantizer.
    pub kmeans_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PqConfig {
    /// The paper's default: 8 sub-quantizers × 256 centroids = 8 B/vector.
    fn default() -> Self {
        PqConfig { m: 8, ks: 256, kmeans_iters: 15, seed: 0 }
    }
}

/// Trained product quantizer: `m` codebooks of `ks` sub-centroids each.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    m: usize,
    dsub: usize,
    ks: usize,
    /// Codebook `j` holds `ks` centroids of dimension `dsub`.
    codebooks: Vec<VectorSet>,
}

impl ProductQuantizer {
    /// Trains the quantizer on `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty, `config.m` does not divide the dimension,
    /// or `config.ks` exceeds 256.
    pub fn train(data: &VectorSet, config: PqConfig) -> Self {
        assert!(!data.is_empty(), "PQ training data is empty");
        assert!(config.ks >= 1 && config.ks <= 256, "ks must be 1..=256, got {}", config.ks);
        let dim = data.dim();
        assert_eq!(
            dim % config.m,
            0,
            "m = {} does not divide dimension {}",
            config.m,
            dim
        );
        let dsub = dim / config.m;
        let mut codebooks = Vec::with_capacity(config.m);
        for j in 0..config.m {
            let mut sub = VectorSet::new(dsub);
            for v in data.iter() {
                sub.push(&v[j * dsub..(j + 1) * dsub]);
            }
            let km = KMeans::fit(
                &sub,
                KMeansConfig {
                    k: config.ks,
                    max_iters: config.kmeans_iters,
                    seed: config.seed.wrapping_add(j as u64),
                },
            );
            codebooks.push(km.centroids().clone());
        }
        ProductQuantizer { m: config.m, dsub, ks: config.ks, codebooks }
    }

    /// Number of sub-quantizers.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Centroids per sub-quantizer.
    pub fn ks(&self) -> usize {
        self.ks
    }

    /// Dimension handled by the quantizer.
    pub fn dim(&self) -> usize {
        self.m * self.dsub
    }

    /// Size of the codebooks in bytes.
    pub fn codebook_nbytes(&self) -> usize {
        self.codebooks.iter().map(VectorSet::nbytes).sum()
    }

    /// Encodes one vector into `m` bytes.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim(), "encode dim {} != {}", v.len(), self.dim());
        let mut code = Vec::with_capacity(self.m);
        for j in 0..self.m {
            let sub = &v[j * self.dsub..(j + 1) * self.dsub];
            let mut best = (0usize, f32::INFINITY);
            for (c, cent) in self.codebooks[j].iter().enumerate() {
                let d = sq_l2(sub, cent);
                if d < best.1 {
                    best = (c, d);
                }
            }
            code.push(best.0 as u8);
        }
        code
    }

    /// Reconstructs the approximate vector for a code.
    ///
    /// # Panics
    /// Panics if the code length differs from `m`.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.m, "code length {} != m {}", code.len(), self.m);
        let mut out = Vec::with_capacity(self.dim());
        for (j, &c) in code.iter().enumerate() {
            out.extend_from_slice(self.codebooks[j].get(c as usize));
        }
        out
    }

    /// ADC lookup table for `query`: entry `[j * ks + c]` holds the squared
    /// distance between the query's `j`-th sub-vector and centroid `c`.
    pub fn distance_table(&self, query: &[f32]) -> Vec<f32> {
        let mut table = Vec::new();
        self.distance_table_into(query, &mut table);
        table
    }

    /// Fills `table` with the ADC lookup table for `query`, reusing its
    /// allocation — the batched-search path calls this once per query on
    /// a single buffer per query block instead of allocating `m * ks`
    /// floats every time.
    pub fn distance_table_into(&self, query: &[f32], table: &mut Vec<f32>) {
        assert_eq!(query.len(), self.dim(), "query dim {} != {}", query.len(), self.dim());
        table.clear();
        table.resize(self.m * self.ks, 0.0);
        for j in 0..self.m {
            let sub = &query[j * self.dsub..(j + 1) * self.dsub];
            // one dispatched call per codebook row, not per centroid —
            // at small dsub the per-call dispatch would otherwise cost
            // more than the arithmetic
            let ncent = self.codebooks[j].len();
            kernels::sq_l2_block(
                sub,
                self.codebooks[j].flat(),
                &mut table[j * self.ks..j * self.ks + ncent],
            );
        }
    }

    /// Approximate squared distance via the ADC table.
    ///
    /// Delegates to the dispatched kernel layer, which sums in strict
    /// ascending sub-quantizer order — the order contract that makes
    /// [`ProductQuantizer::adc4`] lanes bit-exact against this function,
    /// so batched and per-code scans always agree exactly.
    #[inline]
    pub fn adc(&self, table: &[f32], code: &[u8]) -> f32 {
        kernels::adc(table, self.ks, code)
    }

    /// Batched ADC: four codes against one table per call (one row
    /// gather per sub-quantizer on SIMD targets). Lane `l` equals
    /// `self.adc(table, codes[l])` bit-exactly.
    #[inline]
    pub fn adc4(&self, table: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
        kernels::adc4(table, self.ks, codes)
    }
}

/// Compressed index: one `m`-byte code per vector plus the codebooks — the
/// paper's EL configuration (8 B/entity instead of 256 B).
///
/// ```
/// use emblookup_ann::{PqConfig, PqIndex, VectorSet};
/// let mut data = VectorSet::new(8);
/// for i in 0..100 {
///     data.push(&[i as f32, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// }
/// let index = PqIndex::build(&data, PqConfig { m: 2, ks: 16, kmeans_iters: 5, seed: 0 });
/// let hits = index.search(data.get(42), 3);
/// assert_eq!(hits.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PqIndex {
    quantizer: ProductQuantizer,
    codes: Vec<u8>,
    n: usize,
}

impl PqIndex {
    /// Trains a quantizer on `data` and encodes every vector.
    pub fn build(data: &VectorSet, config: PqConfig) -> Self {
        let quantizer = ProductQuantizer::train(data, config);
        Self::from_quantizer(quantizer, data)
    }

    /// Encodes `data` under an already-trained quantizer.
    pub fn from_quantizer(quantizer: ProductQuantizer, data: &VectorSet) -> Self {
        let mut codes = Vec::with_capacity(data.len() * quantizer.m());
        for v in data.iter() {
            codes.extend_from_slice(&quantizer.encode(v));
        }
        PqIndex { n: data.len(), quantizer, codes }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The trained quantizer.
    pub fn quantizer(&self) -> &ProductQuantizer {
        &self.quantizer
    }

    /// Size of the stored codes in bytes (8 B/vector at paper defaults).
    pub fn code_nbytes(&self) -> usize {
        self.codes.len()
    }

    /// Total index size: codes plus codebooks.
    pub fn nbytes(&self) -> usize {
        self.code_nbytes() + self.quantizer.codebook_nbytes()
    }

    /// Approximate `k` nearest neighbours of `query` via ADC, ascending.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if self.n == 0 || k == 0 {
            return Vec::new();
        }
        let table = self.quantizer.distance_table(query);
        self.search_with_table(&table, k)
    }

    /// Traced twin of [`PqIndex::search`]: identical results, plus
    /// `backend`/`visited` annotations on `span` (an ADC scan always
    /// visits every stored code).
    pub fn search_traced(
        &self,
        query: &[f32],
        k: usize,
        span: &emblookup_obs::TraceSpan,
    ) -> Vec<Neighbor> {
        span.annotate("backend", "pq");
        span.annotate("visited", self.n as u64);
        self.search(query, k)
    }

    /// Scan under an already-built ADC table — the shared tail of the
    /// single-query and batched paths. Codes are scored in fixed-size
    /// blocks through [`kernels::adc_block`], which is bit-exact against
    /// the per-code kernel, so results equal a per-code scan exactly.
    fn search_with_table(&self, table: &[f32], k: usize) -> Vec<Neighbor> {
        crate::metrics::pq_searches().inc();
        crate::metrics::pq_visited().add(self.n as u64);
        let m = self.quantizer.m();
        let ks = self.quantizer.ks();
        let mut tk = TopK::new(k);
        // stack block: one dispatched kernel call per 256 codes
        let mut dists = [0.0f32; 256];
        let mut i = 0;
        for chunk in self.codes.chunks(256 * m) {
            let cn = chunk.len() / m;
            kernels::adc_block(table, ks, m, chunk, &mut dists[..cn]);
            for (l, &dl) in dists[..cn].iter().enumerate() {
                tk.push(i + l, dl);
            }
            i += cn;
        }
        tk.into_sorted()
    }

    /// Batch search; `threads > 1` fans the queries out over the
    /// persistent compute pool. Either way, one distance-table buffer is
    /// reused across each query block (per chunk when parallel) instead
    /// of being reallocated per query, and the scan itself goes through
    /// the same [`ProductQuantizer::adc`] as [`PqIndex::search`], so
    /// results are exactly equal to the single-query path.
    pub fn search_batch(&self, queries: &VectorSet, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        if self.n == 0 || k == 0 {
            return vec![Vec::new(); n];
        }
        let threads = threads.max(1).min(n);
        let run = |table: &mut Vec<f32>, i: usize| {
            self.quantizer.distance_table_into(queries.get(i), table);
            self.search_with_table(table, k)
        };
        if threads == 1 {
            let mut table = Vec::new();
            return (0..n).map(|i| run(&mut table, i)).collect();
        }
        let grain = n.div_ceil(threads * 2).max(1);
        emblookup_pool::Pool::global().parallel_map_with(n, grain, Vec::new, run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        vs
    }

    fn small_config() -> PqConfig {
        PqConfig { m: 4, ks: 16, kmeans_iters: 10, seed: 0 }
    }

    #[test]
    fn encode_decode_reduces_error_vs_random() {
        let data = random_set(300, 16, 1);
        let pq = ProductQuantizer::train(&data, small_config());
        let mut total = 0.0f32;
        for v in data.iter() {
            let rec = pq.decode(&pq.encode(v));
            total += sq_l2(v, &rec);
        }
        let avg = total / data.len() as f32;
        // a random 16-d vector pair in [-1,1] has expected sq dist ~ 16 * 2/3
        assert!(avg < 3.0, "quantization error too high: {avg}");
    }

    #[test]
    fn adc_equals_decoded_distance() {
        let data = random_set(100, 8, 2);
        let pq = ProductQuantizer::train(&data, PqConfig { m: 2, ks: 8, kmeans_iters: 10, seed: 3 });
        let q: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let table = pq.distance_table(&q);
        for v in data.iter().take(10) {
            let code = pq.encode(v);
            let adc = pq.adc(&table, &code);
            let exact = sq_l2(&q, &pq.decode(&code));
            assert!((adc - exact).abs() < 1e-4, "adc {adc} vs exact {exact}");
        }
        // the reusable-buffer table fill must match the allocating one
        let mut reused = vec![9.0f32; 3]; // wrong size and stale content
        pq.distance_table_into(&q, &mut reused);
        assert_eq!(table, reused);
    }

    #[test]
    fn batched_adc_matches_single_query_search() {
        // the batched path (shared table buffer, pool fan-out) must be
        // exactly equal to per-query search, ids and distances both
        let data = random_set(400, 16, 9);
        let idx = PqIndex::build(&data, small_config());
        let queries = random_set(33, 16, 10);
        for threads in [1, 4] {
            let batched = idx.search_batch(&queries, 7, threads);
            assert_eq!(batched.len(), queries.len());
            for (q, hits) in queries.iter().zip(&batched) {
                let single = idx.search(q, 7);
                assert_eq!(hits, &single, "threads={threads}");
            }
        }
    }

    #[test]
    fn code_size_matches_paper_math() {
        // 64-d vectors, m=8, ks=256 -> 8 bytes per vector (vs 256 raw)
        let data = random_set(300, 64, 4);
        let idx = PqIndex::build(&data, PqConfig { m: 8, ks: 256, kmeans_iters: 3, seed: 0 });
        assert_eq!(idx.code_nbytes(), 300 * 8);
        assert_eq!(data.nbytes(), 300 * 256);
    }

    #[test]
    fn recall_at_large_k_is_high() {
        // Figure 4's premise: PQ recall improves with k
        let data = random_set(500, 16, 5);
        let flat = FlatIndex::new(data.clone());
        let idx = PqIndex::build(&data, small_config());
        let queries = random_set(20, 16, 6);
        let mut recall_small = 0.0;
        let mut recall_large = 0.0;
        for q in queries.iter() {
            let truth_small: Vec<usize> = flat.search(q, 2).iter().map(|n| n.index).collect();
            let got_small: Vec<usize> = idx.search(q, 2).iter().map(|n| n.index).collect();
            recall_small += truth_small.iter().filter(|i| got_small.contains(i)).count() as f64 / 2.0;

            let truth_large: Vec<usize> = flat.search(q, 50).iter().map(|n| n.index).collect();
            let got_large: Vec<usize> = idx.search(q, 50).iter().map(|n| n.index).collect();
            recall_large += truth_large.iter().filter(|i| got_large.contains(i)).count() as f64 / 50.0;
        }
        recall_small /= 20.0;
        recall_large /= 20.0;
        assert!(recall_large > 0.5, "recall@50 too low: {recall_large}");
        assert!(recall_large >= recall_small - 0.05, "recall did not improve with k");
    }

    #[test]
    fn search_is_sorted_and_sized() {
        let data = random_set(100, 8, 7);
        let idx = PqIndex::build(&data, PqConfig { m: 2, ks: 8, kmeans_iters: 5, seed: 0 });
        let hits = idx.search(data.get(0), 10);
        assert_eq!(hits.len(), 10);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn bad_m_panics() {
        let data = random_set(10, 10, 8);
        let _ = ProductQuantizer::train(&data, PqConfig { m: 3, ks: 4, kmeans_iters: 2, seed: 0 });
    }

    #[test]
    fn duplicate_vectors_encode_identically() {
        let mut vs = VectorSet::new(4);
        for _ in 0..50 {
            vs.push(&[1.0, 2.0, 3.0, 4.0]);
        }
        let pq = ProductQuantizer::train(&vs, PqConfig { m: 2, ks: 4, kmeans_iters: 5, seed: 0 });
        let c1 = pq.encode(vs.get(0));
        let c2 = pq.encode(vs.get(49));
        assert_eq!(c1, c2);
        let rec = pq.decode(&c1);
        assert!(sq_l2(&rec, vs.get(0)) < 1e-6);
    }
}
