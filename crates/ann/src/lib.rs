//! # emblookup-ann
//!
//! Similarity search and vector compression for the EmbLookup reproduction
//! — the FAISS stand-in. Provides the exact flat index (EL-NC), product
//! quantization (EL, §III-D), IVF-Flat, PCA (the Figure 5 compression
//! baseline), k-means, and a MinHash LSH used by the Table V baseline.

#![warn(missing_docs)]

pub mod flat;
pub mod hnsw;
pub mod hnsw_pq;
pub mod ivf;
pub mod ivfpq;
pub mod kernels;
pub mod kmeans;
pub mod lsh;
mod metrics;
pub mod pca;
pub mod pq;
pub mod refine;
pub mod sq;
pub mod topk;
pub mod vectors;

pub use flat::FlatIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use hnsw_pq::{HnswPqConfig, HnswPqIndex};
pub use ivf::{IvfConfig, IvfIndex};
pub use ivfpq::{IvfPqConfig, IvfPqIndex};
pub use kmeans::{KMeans, KMeansConfig};
pub use lsh::{LshConfig, MinHashLsh};
pub use pca::Pca;
pub use pq::{PqConfig, PqIndex, ProductQuantizer};
pub use refine::RefinedPqIndex;
pub use sq::{ScalarQuantizer, SqIndex};
pub use topk::{Neighbor, TopK};
pub use vectors::{sq_l2, VectorSet};

// Property tests need the external `proptest` crate, unavailable in
// offline builds; enable with `--features proptest-tests` when vendored.
#[cfg(all(test, feature = "proptest-tests"))]
mod proptests {
    use crate::flat::FlatIndex;
    use crate::pq::{PqConfig, ProductQuantizer};
    use crate::topk::TopK;
    use crate::vectors::{sq_l2, VectorSet};
    use proptest::prelude::*;

    fn vec_set(n: usize, dim: usize) -> impl Strategy<Value = VectorSet> {
        proptest::collection::vec(-10.0f32..10.0, n * dim)
            .prop_map(move |data| VectorSet::from_flat(dim, data))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn flat_search_first_hit_is_global_min(set in vec_set(30, 4), q in proptest::collection::vec(-10.0f32..10.0, 4)) {
            let idx = FlatIndex::new(set.clone());
            let hits = idx.search(&q, 1);
            let best = hits[0].dist;
            for v in set.iter() {
                prop_assert!(sq_l2(&q, v) >= best - 1e-4);
            }
        }

        #[test]
        fn flat_search_results_are_distinct(set in vec_set(25, 3), q in proptest::collection::vec(-10.0f32..10.0, 3)) {
            let idx = FlatIndex::new(set);
            let hits = idx.search(&q, 10);
            let mut indices: Vec<usize> = hits.iter().map(|h| h.index).collect();
            indices.sort_unstable();
            indices.dedup();
            prop_assert_eq!(indices.len(), hits.len());
        }

        #[test]
        fn topk_keeps_true_minimum(dists in proptest::collection::vec(0.0f32..100.0, 1..50), k in 1usize..10) {
            let mut tk = TopK::new(k);
            for (i, &d) in dists.iter().enumerate() {
                tk.push(i, d);
            }
            let hits = tk.into_sorted();
            let true_min = dists.iter().cloned().fold(f32::INFINITY, f32::min);
            prop_assert_eq!(hits[0].dist, true_min);
            prop_assert_eq!(hits.len(), k.min(dists.len()));
        }

        #[test]
        fn pq_codes_are_in_range(set in vec_set(40, 8)) {
            let pq = ProductQuantizer::train(&set, PqConfig { m: 2, ks: 8, kmeans_iters: 4, seed: 0 });
            for v in set.iter() {
                let code = pq.encode(v);
                prop_assert_eq!(code.len(), 2);
                for &c in &code {
                    prop_assert!((c as usize) < 8);
                }
            }
        }

        #[test]
        fn pq_decode_encode_is_idempotent(set in vec_set(40, 8)) {
            // encoding a decoded (centroid) vector must return the same code
            let pq = ProductQuantizer::train(&set, PqConfig { m: 2, ks: 8, kmeans_iters: 4, seed: 0 });
            let code = pq.encode(set.get(0));
            let rec = pq.decode(&code);
            prop_assert_eq!(pq.encode(&rec), code);
        }
    }
}
