//! Hierarchical Navigable Small World graphs (Malkov & Yashunin) — the
//! index behind nmslib, one of the approximate-search libraries the paper
//! evaluates against FAISS (§III-C).
//!
//! Standard construction: every vector gets a random level from a
//! geometric distribution; search descends greedily from the top layer and
//! runs a beam search (`ef`) on layer 0. Neighbour lists are pruned to `m`
//! (2`m` on layer 0) with the paper's diversity heuristic (Algorithm 4):
//! a candidate is kept only if it is closer to the node than to every
//! already-kept neighbour, which preserves the inter-cluster bridges that
//! plain nearest-`m` pruning severs on clustered data.
// lint: hot-path

use crate::kernels::sq_l2;
use crate::topk::{Neighbor, TopK};
use crate::vectors::VectorSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Configuration for [`HnswIndex::build`].
#[derive(Debug, Clone, Copy)]
pub struct HnswConfig {
    /// Max neighbours per node per layer (layer 0 keeps `2m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search.
    pub ef_search: usize,
    /// RNG seed for level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig { m: 12, ef_construction: 64, ef_search: 48, seed: 0 }
    }
}

/// Max-heap entry ordered by distance (for result pruning).
#[derive(PartialEq)]
pub(crate) struct Far(pub(crate) f32, pub(crate) u32);
impl Eq for Far {}
impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Far {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Min-heap entry (via reversed ordering) for the candidate frontier.
#[derive(PartialEq)]
pub(crate) struct Near(pub(crate) f32, pub(crate) u32);
impl Eq for Near {}
impl PartialOrd for Near {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Near {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.total_cmp(&self.0)
    }
}

/// An HNSW graph over a vector collection.
pub struct HnswIndex {
    vectors: VectorSet,
    /// `links[node][layer]` = neighbour ids.
    links: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: usize,
    config: HnswConfig,
}

impl HnswIndex {
    /// Builds the graph by inserting every vector.
    ///
    /// # Panics
    /// Panics on an empty collection or zero `m`.
    pub fn build(vectors: VectorSet, config: HnswConfig) -> Self {
        assert!(!vectors.is_empty(), "HNSW over empty data");
        assert!(config.m >= 1, "HNSW m must be >= 1");
        let n = vectors.len();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let level_mult = 1.0 / (config.m as f64).ln().max(0.1);

        let mut index = HnswIndex {
            vectors,
            links: Vec::with_capacity(n),
            entry: 0,
            max_level: 0,
            config,
        };
        // node 0 seeds the graph at level 0
        index.links.push(vec![Vec::new()]);
        for node in 1..n as u32 {
            let level = ((-rng.gen_range(f64::EPSILON..1.0).ln()) * level_mult) as usize;
            index.insert(node, level);
        }
        index
    }

    fn insert(&mut self, node: u32, level: usize) {
        self.links.push(vec![Vec::new(); level + 1]);
        let query = self.vectors.get(node as usize).to_vec();
        let mut current = self.entry;

        // greedy descent through layers above the node's level
        let top = self.max_level;
        for layer in ((level + 1)..=top).rev() {
            current = self.greedy_step(&query, current, layer);
        }
        // beam search + connect on layers min(level, top)..=0
        for layer in (0..=level.min(top)).rev() {
            let (candidates, _) =
                self.search_layer(&query, current, layer, self.config.ef_construction);
            let max_links = self.layer_cap(layer);
            let scored: Vec<(f32, u32)> = candidates
                .iter()
                .map(|n| (n.dist, n.index as u32))
                .collect();
            let selected = self.select_diverse(scored, max_links);
            for &peer in &selected {
                self.links[node as usize][layer].push(peer);
                self.links[peer as usize][layer].push(node);
                self.prune(peer, layer);
            }
            if let Some(best) = candidates.first() {
                current = best.index as u32;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = node;
        }
    }

    fn layer_cap(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Re-prunes `node`'s neighbour list on `layer` to its cap with the
    /// diversity heuristic.
    fn prune(&mut self, node: u32, layer: usize) {
        let cap = self.layer_cap(layer);
        if self.links[node as usize][layer].len() <= cap {
            return;
        }
        let base = self.vectors.get(node as usize).to_vec();
        let scored: Vec<(f32, u32)> = self.links[node as usize][layer]
            .iter()
            .map(|&p| (sq_l2(&base, self.vectors.get(p as usize)), p))
            .collect();
        self.links[node as usize][layer] = self.select_diverse(scored, cap);
    }

    /// Neighbour-selection heuristic (Malkov & Yashunin, Algorithm 4):
    /// candidates arrive scored by distance to the base point, are taken
    /// in ascending order, and are kept only when closer to the base
    /// than to every already-kept neighbour, so each kept edge covers a
    /// distinct direction. Skipped candidates backfill remaining
    /// capacity (`keepPrunedConnections`), keeping degree — and
    /// therefore graph connectivity — high.
    fn select_diverse(&self, mut scored: Vec<(f32, u32)>, cap: usize) -> Vec<u32> {
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored.dedup_by_key(|&mut (_, p)| p);
        let mut kept: Vec<u32> = Vec::with_capacity(cap);
        let mut skipped: Vec<u32> = Vec::new();
        for &(d, c) in &scored {
            if kept.len() >= cap {
                break;
            }
            let cv = self.vectors.get(c as usize);
            let dominated = kept
                .iter()
                .any(|&k| sq_l2(cv, self.vectors.get(k as usize)) < d);
            if dominated {
                skipped.push(c);
            } else {
                kept.push(c);
            }
        }
        for c in skipped {
            if kept.len() >= cap {
                break;
            }
            kept.push(c);
        }
        kept
    }

    /// One greedy hop-to-local-minimum pass on a layer.
    fn greedy_step(&self, query: &[f32], start: u32, layer: usize) -> u32 {
        let mut current = start;
        let mut best = sq_l2(query, self.vectors.get(current as usize));
        loop {
            let mut improved = false;
            for &peer in self
                .links[current as usize]
                .get(layer)
                .map(Vec::as_slice)
                .unwrap_or(&[])
            {
                let d = sq_l2(query, self.vectors.get(peer as usize));
                if d < best {
                    best = d;
                    current = peer;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Beam search on one layer; returns up to `ef` nearest (ascending)
    /// plus the number of distinct nodes visited.
    fn search_layer(
        &self,
        query: &[f32],
        start: u32,
        layer: usize,
        ef: usize,
    ) -> (Vec<Neighbor>, usize) {
        let d0 = sq_l2(query, self.vectors.get(start as usize));
        let mut visited: HashSet<u32> = HashSet::from([start]);
        let mut frontier: BinaryHeap<Near> = BinaryHeap::from([Near(d0, start)]);
        let mut results: BinaryHeap<Far> = BinaryHeap::from([Far(d0, start)]);

        while let Some(Near(d, node)) = frontier.pop() {
            let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
            if d > worst && results.len() >= ef {
                break;
            }
            for &peer in self
                .links[node as usize]
                .get(layer)
                .map(Vec::as_slice)
                .unwrap_or(&[])
            {
                if !visited.insert(peer) {
                    continue;
                }
                let dp = sq_l2(query, self.vectors.get(peer as usize));
                let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
                if results.len() < ef || dp < worst {
                    frontier.push(Near(dp, peer));
                    results.push(Far(dp, peer));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Neighbor> = results
            .into_iter()
            .map(|Far(d, n)| Neighbor { index: n as usize, dist: d })
            .collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        (out, visited.len())
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// True index size in bytes: the raw vectors plus the graph
    /// adjacency payload (neighbour ids across every layer).
    pub fn nbytes(&self) -> usize {
        self.vectors.nbytes() + self.links_nbytes()
    }

    /// Adjacency payload alone (u32 neighbour ids, all layers).
    pub fn links_nbytes(&self) -> usize {
        self.links
            .iter()
            .flat_map(|layers| layers.iter())
            .map(|l| l.len() * std::mem::size_of::<u32>())
            .sum()
    }

    /// Decomposes the graph for reuse by the PQ-fused variant:
    /// `(vectors, links, entry, max_level, config)`.
    pub(crate) fn into_parts(
        self,
    ) -> (VectorSet, Vec<Vec<Vec<u32>>>, u32, usize, HnswConfig) {
        (self.vectors, self.links, self.entry, self.max_level, self.config)
    }

    /// Searches many queries, optionally in parallel across the pool.
    pub fn search_batch(&self, queries: &VectorSet, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        crate::flat::batch_search(queries, k, threads, |q, k| self.search(q, k))
    }

    /// Approximate `k` nearest neighbours, ascending by distance.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_counted(query, k).0
    }

    /// Traced twin of [`HnswIndex::search`]: identical results, plus
    /// `backend`/`visited` annotations on `span`.
    pub fn search_traced(
        &self,
        query: &[f32],
        k: usize,
        span: &emblookup_obs::TraceSpan,
    ) -> Vec<Neighbor> {
        let (hits, visited) = self.search_counted(query, k);
        span.annotate("backend", "hnsw");
        span.annotate("visited", visited);
        hits
    }

    /// The search body, also returning how many graph nodes were
    /// visited on the base layer.
    fn search_counted(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, u64) {
        if k == 0 {
            return (Vec::new(), 0);
        }
        let mut current = self.entry;
        for layer in (1..=self.max_level).rev() {
            current = self.greedy_step(query, current, layer);
        }
        let ef = self.config.ef_search.max(k);
        let (mut found, visited) = self.search_layer(query, current, 0, ef);
        crate::metrics::hnsw_searches().inc();
        crate::metrics::hnsw_visited().add(visited as u64);
        found.truncate(k);
        // found may contain duplicates only if links were inconsistent;
        // TopK re-validation keeps the contract tight
        let mut tk = TopK::new(k);
        for n in found {
            tk.push(n.index, n.dist);
        }
        (tk.into_sorted(), visited as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        vs
    }

    #[test]
    fn finds_self_as_nearest() {
        let data = random_set(500, 8, 1);
        let hnsw = HnswIndex::build(data.clone(), HnswConfig::default());
        for i in (0..500).step_by(37) {
            let hits = hnsw.search(data.get(i), 1);
            assert_eq!(hits[0].dist, 0.0, "vector {i} did not find itself");
        }
    }

    #[test]
    fn recall_at_10_is_high() {
        let data = random_set(1000, 8, 2);
        let flat = FlatIndex::new(data.clone());
        let hnsw = HnswIndex::build(data.clone(), HnswConfig::default());
        let queries = random_set(30, 8, 3);
        let mut recall = 0.0;
        for q in queries.iter() {
            let truth: Vec<usize> = flat.search(q, 10).iter().map(|n| n.index).collect();
            let got: Vec<usize> = hnsw.search(q, 10).iter().map(|n| n.index).collect();
            recall += truth.iter().filter(|i| got.contains(i)).count() as f64 / 10.0;
        }
        recall /= 30.0;
        assert!(recall > 0.85, "HNSW recall@10 too low: {recall}");
    }

    #[test]
    fn results_are_sorted_and_distinct() {
        let data = random_set(300, 4, 4);
        let hnsw = HnswIndex::build(data.clone(), HnswConfig::default());
        let hits = hnsw.search(data.get(0), 20);
        assert!(hits.len() <= 20);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        let mut ids: Vec<usize> = hits.iter().map(|n| n.index).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), hits.len());
    }

    #[test]
    fn single_vector_graph() {
        let mut vs = VectorSet::new(3);
        vs.push(&[1.0, 2.0, 3.0]);
        let hnsw = HnswIndex::build(vs, HnswConfig::default());
        let hits = hnsw.search(&[1.0, 2.0, 3.0], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = random_set(200, 6, 5);
        let a = HnswIndex::build(data.clone(), HnswConfig::default());
        let b = HnswIndex::build(data.clone(), HnswConfig::default());
        let q = data.get(17);
        let ia: Vec<usize> = a.search(q, 5).iter().map(|n| n.index).collect();
        let ib: Vec<usize> = b.search(q, 5).iter().map(|n| n.index).collect();
        assert_eq!(ia, ib);
    }

    #[test]
    fn k_zero_is_empty() {
        let data = random_set(50, 4, 6);
        let hnsw = HnswIndex::build(data.clone(), HnswConfig::default());
        assert!(hnsw.search(data.get(0), 0).is_empty());
    }
}
