//! MinHash LSH over feature sets — the locality-sensitive-hashing baseline
//! of Table V (the paper cites an LSH variant optimized for Levenshtein
//! distance; q-gram MinHash is the standard such construction).
//!
//! Items are arbitrary `u64` feature sets (the baselines crate feeds hashed
//! character q-grams). Signatures of `bands × rows` min-hashes are banded;
//! items sharing any band bucket with the query become candidates.
// lint: hot-path

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Configuration for [`MinHashLsh`].
#[derive(Debug, Clone, Copy)]
pub struct LshConfig {
    /// Number of bands.
    pub bands: usize,
    /// Hash rows per band (signature length = `bands * rows`).
    pub rows: usize,
    /// RNG seed for the hash family.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig { bands: 16, rows: 4, seed: 0 }
    }
}

/// MinHash LSH index over `u64` feature sets.
///
/// Plain data, no interior locking: inserts take `&mut self` (the index
/// is built once, single-threaded), and the query path is a lock-free
/// shared read — any number of threads can call [`MinHashLsh::candidates`]
/// concurrently through `&self`.
pub struct MinHashLsh {
    config: LshConfig,
    /// (a, b) coefficients of the universal hash family.
    coeffs: Vec<(u64, u64)>,
    /// One bucket map per band: band-hash → item ids.
    tables: Vec<HashMap<u64, Vec<u32>>>,
    len: usize,
}

impl MinHashLsh {
    /// Creates an empty index.
    ///
    /// # Panics
    /// Panics when `bands` or `rows` is zero.
    pub fn new(config: LshConfig) -> Self {
        assert!(config.bands > 0 && config.rows > 0, "bands/rows must be positive");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let coeffs = (0..config.bands * config.rows)
            .map(|_| (rng.gen::<u64>() | 1, rng.gen::<u64>()))
            .collect();
        MinHashLsh {
            config,
            coeffs,
            tables: vec![HashMap::new(); config.bands],
            len: 0,
        }
    }

    /// Number of inserted items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// MinHash signature of a feature set. Empty sets get a fixed sentinel
    /// signature so they collide only with other empty sets.
    pub fn signature(&self, features: &[u64]) -> Vec<u64> {
        let n = self.config.bands * self.config.rows;
        if features.is_empty() {
            return vec![u64::MAX; n];
        }
        self.coeffs
            .iter()
            .map(|&(a, b)| {
                features
                    .iter()
                    .map(|&f| a.wrapping_mul(f).wrapping_add(b))
                    .min()
                    .unwrap_or(u64::MAX) // unreachable: features checked non-empty above
            })
            .collect()
    }

    /// Inserts an item with identifier `id` and its feature set.
    pub fn insert(&mut self, id: u32, features: &[u64]) {
        let sig = self.signature(features);
        for (band, table) in self.tables.iter_mut().enumerate() {
            let h = band_hash(&sig[band * self.config.rows..(band + 1) * self.config.rows]);
            table.entry(h).or_default().push(id);
        }
        self.len += 1;
    }

    /// Candidate items sharing at least one band bucket with the query
    /// features, deduplicated, in ascending id order.
    pub fn candidates(&self, features: &[u64]) -> Vec<u32> {
        let sig = self.signature(features);
        let mut out = Vec::new();
        for (band, table) in self.tables.iter().enumerate() {
            let h = band_hash(&sig[band * self.config.rows..(band + 1) * self.config.rows]);
            if let Some(bucket) = table.get(&h) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn band_hash(rows: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    rows.hash(&mut h);
    h.finish()
}

/// Hashes a string feature (e.g. a q-gram) to `u64` for use as an LSH
/// feature.
pub fn hash_feature(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emblookup_text::distance::qgrams;

    fn features(s: &str) -> Vec<u64> {
        qgrams(s, 3).iter().map(|g| hash_feature(g)).collect()
    }

    #[test]
    fn similar_strings_collide() {
        let mut lsh = MinHashLsh::new(LshConfig { bands: 16, rows: 2, seed: 1 });
        let names = ["germany", "germani", "france", "japan", "germny"];
        for (i, n) in names.iter().enumerate() {
            lsh.insert(i as u32, &features(n));
        }
        let cands = lsh.candidates(&features("germany"));
        assert!(cands.contains(&0), "exact match missing");
        assert!(cands.contains(&1) || cands.contains(&4), "no typo variant found");
    }

    #[test]
    fn dissimilar_strings_rarely_collide() {
        let mut lsh = MinHashLsh::new(LshConfig { bands: 8, rows: 6, seed: 2 });
        lsh.insert(0, &features("completely different"));
        let cands = lsh.candidates(&features("zzzqqqxxx"));
        assert!(cands.is_empty(), "unexpected candidates {cands:?}");
    }

    #[test]
    fn identical_sets_always_collide() {
        let mut lsh = MinHashLsh::new(LshConfig::default());
        lsh.insert(7, &features("knowledge graph"));
        let cands = lsh.candidates(&features("knowledge graph"));
        assert_eq!(cands, vec![7]);
    }

    #[test]
    fn empty_features_dont_crash() {
        let mut lsh = MinHashLsh::new(LshConfig::default());
        lsh.insert(0, &[]);
        let cands = lsh.candidates(&[]);
        assert_eq!(cands, vec![0]);
        // an empty query does not match non-empty items
        lsh.insert(1, &features("abc"));
        let cands = lsh.candidates(&[]);
        assert!(!cands.contains(&1));
    }

    #[test]
    fn signature_is_deterministic() {
        let lsh = MinHashLsh::new(LshConfig { bands: 4, rows: 4, seed: 9 });
        assert_eq!(lsh.signature(&[1, 2, 3]), lsh.signature(&[3, 2, 1]));
    }

    #[test]
    fn len_counts_inserts() {
        let mut lsh = MinHashLsh::new(LshConfig::default());
        assert!(lsh.is_empty());
        lsh.insert(0, &features("a"));
        lsh.insert(1, &features("b"));
        assert_eq!(lsh.len(), 2);
    }
}
