//! Lloyd's k-means with k-means++ seeding — the clustering engine behind
//! product quantization (§III-D) and the IVF coarse quantizer.

use crate::kernels::sq_l2;
use crate::vectors::VectorSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run: `k` centroids of the input dimension.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: VectorSet,
}

/// Parameters for [`KMeans::fit`].
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for the k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 256, max_iters: 20, seed: 0 }
    }
}

impl KMeans {
    /// Runs k-means over `data`.
    ///
    /// When `data.len() <= k`, every point becomes its own centroid and the
    /// remaining centroids are duplicates of the first point, so encoding
    /// degenerates gracefully on tiny inputs.
    ///
    /// # Panics
    /// Panics if `data` is empty or `config.k` is zero.
    pub fn fit(data: &VectorSet, config: KMeansConfig) -> Self {
        assert!(config.k > 0, "k-means with k = 0");
        assert!(!data.is_empty(), "k-means over empty data");
        let dim = data.dim();
        let n = data.len();
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut centroids = Self::plus_plus_init(data, config.k, &mut rng);
        let mut assignment = vec![0usize; n];

        for _ in 0..config.max_iters {
            // assignment step: pure per-point, so it fans out over the
            // pool on large inputs (deterministic — disjoint slots)
            let next_assign: Vec<usize> = if n >= 2048 {
                emblookup_pool::Pool::global()
                    .parallel_map(n, 256, |i| nearest_centroid(&centroids, data.get(i)).0)
            } else {
                data.iter().map(|v| nearest_centroid(&centroids, v).0).collect()
            };
            let changed = next_assign != assignment;
            assignment = next_assign;
            if !changed {
                break;
            }
            // update step
            let mut sums = vec![0.0f32; config.k * dim];
            let mut counts = vec![0usize; config.k];
            for (i, v) in data.iter().enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(v) {
                    *s += x;
                }
            }
            let mut next = VectorSet::new(dim);
            for c in 0..config.k {
                if counts[c] == 0 {
                    // dead centroid: reseed on a random point
                    next.push(data.get(rng.gen_range(0..n)));
                } else {
                    let inv = 1.0 / counts[c] as f32;
                    let row: Vec<f32> =
                        sums[c * dim..(c + 1) * dim].iter().map(|s| s * inv).collect();
                    next.push(&row);
                }
            }
            centroids = next;
        }
        KMeans { centroids }
    }

    fn plus_plus_init(data: &VectorSet, k: usize, rng: &mut StdRng) -> VectorSet {
        let n = data.len();
        let mut centroids = VectorSet::new(data.dim());
        centroids.push(data.get(rng.gen_range(0..n)));
        let mut dist2: Vec<f32> = data
            .iter()
            .map(|v| sq_l2(v, centroids.get(0)))
            .collect();
        while centroids.len() < k {
            let total: f32 = dist2.iter().sum();
            let next = if total <= f32::EPSILON {
                rng.gen_range(0..n)
            } else {
                // sample proportional to squared distance
                let mut r = rng.gen_range(0.0..total);
                let mut chosen = n - 1;
                for (i, &d) in dist2.iter().enumerate() {
                    if r < d {
                        chosen = i;
                        break;
                    }
                    r -= d;
                }
                chosen
            };
            centroids.push(data.get(next));
            let newest = centroids.len() - 1;
            for (i, v) in data.iter().enumerate() {
                let d = sq_l2(v, centroids.get(newest));
                if d < dist2[i] {
                    dist2[i] = d;
                }
            }
        }
        centroids
    }

    /// The learned centroids.
    pub fn centroids(&self) -> &VectorSet {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Index and squared distance of the centroid nearest to `v`.
    pub fn assign(&self, v: &[f32]) -> (usize, f32) {
        nearest_centroid(&self.centroids, v)
    }

    /// Mean squared quantization error of `data` under this codebook.
    pub fn distortion(&self, data: &VectorSet) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        data.iter().map(|v| self.assign(v).1).sum::<f32>() / data.len() as f32
    }
}

fn nearest_centroid(centroids: &VectorSet, v: &[f32]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (c, cv) in centroids.iter().enumerate() {
        let d = sq_l2(v, cv);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> VectorSet {
        let mut vs = VectorSet::new(2);
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut rng = StdRng::seed_from_u64(3);
        for &(cx, cy) in &centers {
            for _ in 0..30 {
                vs.push(&[cx + rng.gen_range(-0.5..0.5), cy + rng.gen_range(-0.5..0.5)]);
            }
        }
        vs
    }

    #[test]
    fn recovers_three_blobs() {
        let data = three_blobs();
        let km = KMeans::fit(&data, KMeansConfig { k: 3, max_iters: 50, seed: 1 });
        // every centroid should be within 1.0 of a true blob center
        let truth = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        for c in km.centroids().iter() {
            let close = truth
                .iter()
                .any(|&(x, y)| sq_l2(c, &[x, y]) < 1.0);
            assert!(close, "centroid {c:?} far from all blobs");
        }
        assert!(km.distortion(&data) < 0.5);
    }

    #[test]
    fn assignment_is_nearest() {
        let data = three_blobs();
        let km = KMeans::fit(&data, KMeansConfig { k: 3, max_iters: 50, seed: 2 });
        let (c, d) = km.assign(&[10.0, 10.0]);
        assert!(d < 1.0);
        assert!(c < 3);
    }

    #[test]
    fn fewer_points_than_k_degenerates_gracefully() {
        let mut vs = VectorSet::new(2);
        vs.push(&[1.0, 1.0]);
        vs.push(&[2.0, 2.0]);
        let km = KMeans::fit(&vs, KMeansConfig { k: 8, max_iters: 5, seed: 0 });
        assert_eq!(km.k(), 8);
        // quantizing the training points is exact
        assert_eq!(km.assign(&[1.0, 1.0]).1, 0.0);
        assert_eq!(km.assign(&[2.0, 2.0]).1, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = three_blobs();
        let a = KMeans::fit(&data, KMeansConfig { k: 3, max_iters: 20, seed: 7 });
        let b = KMeans::fit(&data, KMeansConfig { k: 3, max_iters: 20, seed: 7 });
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn identical_points_dont_crash() {
        let mut vs = VectorSet::new(3);
        for _ in 0..20 {
            vs.push(&[1.0, 2.0, 3.0]);
        }
        let km = KMeans::fit(&vs, KMeansConfig { k: 4, max_iters: 10, seed: 0 });
        assert_eq!(km.assign(&[1.0, 2.0, 3.0]).1, 0.0);
    }
}
