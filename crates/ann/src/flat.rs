//! Exact brute-force nearest-neighbour index ("IndexFlatL2" in FAISS
//! terms) — the EL-NC configuration of the paper, and the ground truth for
//! the recall experiments of Figure 4.
// lint: hot-path

use crate::topk::{Neighbor, TopK};
use crate::vectors::{sq_l2, VectorSet};

/// Exact L2 index scanning every stored vector per query.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    vectors: VectorSet,
}

impl FlatIndex {
    /// Builds the index by taking ownership of the vectors.
    pub fn new(vectors: VectorSet) -> Self {
        FlatIndex { vectors }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when the index holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.vectors.dim()
    }

    /// Index size in bytes (the full-precision 256 B/vector of the paper
    /// for 64-d embeddings).
    pub fn nbytes(&self) -> usize {
        self.vectors.nbytes()
    }

    /// Borrows the underlying vectors (used as recall ground truth).
    pub fn vectors(&self) -> &VectorSet {
        &self.vectors
    }

    /// Exact `k` nearest neighbours of `query` by squared L2 distance,
    /// sorted ascending. Returns fewer than `k` hits only when the index
    /// holds fewer than `k` vectors.
    ///
    /// # Panics
    /// Panics if `query.len()` differs from the index dimension.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.vectors.dim(),
            "query dim {} != index dim {}",
            query.len(),
            self.vectors.dim()
        );
        if self.vectors.is_empty() || k == 0 {
            return Vec::new();
        }
        crate::metrics::flat_searches().inc();
        crate::metrics::flat_visited().add(self.vectors.len() as u64);
        let mut tk = TopK::new(k);
        for (i, v) in self.vectors.iter().enumerate() {
            tk.push(i, sq_l2(query, v));
        }
        tk.into_sorted()
    }

    /// Traced twin of [`FlatIndex::search`]: identical results, plus
    /// `backend`/`visited` annotations on `span`.
    pub fn search_traced(
        &self,
        query: &[f32],
        k: usize,
        span: &emblookup_obs::TraceSpan,
    ) -> Vec<Neighbor> {
        span.annotate("backend", "flat");
        span.annotate("visited", self.vectors.len() as u64);
        self.search(query, k)
    }

    /// Searches many queries, optionally in parallel across the pool.
    ///
    /// `threads == 1` runs sequentially; larger values fan the query
    /// batch out over the persistent compute pool. This is the
    /// GPU-surrogate bulk path of the speedup tables.
    pub fn search_batch(&self, queries: &VectorSet, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        batch_search(queries, k, threads, |q, k| self.search(q, k))
    }
}

/// Applies `search` to every query, preserving order. `threads == 1`
/// stays on the calling thread; otherwise the batch runs on the
/// persistent work-stealing pool ([`emblookup_pool::Pool::global`]) in
/// chunks, with each result written to its own slot — output is
/// bit-identical across thread counts. Shared by every index type in
/// this crate.
pub fn batch_search<F>(
    queries: &VectorSet,
    k: usize,
    threads: usize,
    search: F,
) -> Vec<Vec<Neighbor>>
where
    F: Fn(&[f32], usize) -> Vec<Neighbor> + Sync,
{
    let n = queries.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return queries.iter().map(|q| search(q, k)).collect();
    }
    let grain = n.div_ceil(threads * 2).max(1);
    emblookup_pool::Pool::global().parallel_map(n, grain, |i| search(queries.get(i), k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_index() -> FlatIndex {
        let mut vs = VectorSet::new(2);
        for x in 0..4 {
            for y in 0..4 {
                vs.push(&[x as f32, y as f32]);
            }
        }
        FlatIndex::new(vs)
    }

    #[test]
    fn nearest_is_self() {
        let idx = grid_index();
        let hits = idx.search(&[2.0, 3.0], 1);
        assert_eq!(hits[0].dist, 0.0);
        assert_eq!(idx.vectors().get(hits[0].index), &[2.0, 3.0]);
    }

    #[test]
    fn returns_sorted_k() {
        let idx = grid_index();
        let hits = idx.search(&[0.1, 0.1], 5);
        assert_eq!(hits.len(), 5);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert_eq!(idx.vectors().get(hits[0].index), &[0.0, 0.0]);
    }

    #[test]
    fn k_larger_than_index() {
        let idx = grid_index();
        let hits = idx.search(&[0.0, 0.0], 100);
        assert_eq!(hits.len(), 16);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = FlatIndex::new(VectorSet::new(2));
        assert!(idx.search(&[0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn batch_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut vs = VectorSet::new(8);
        for _ in 0..200 {
            let v: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        let idx = FlatIndex::new(vs);
        let mut queries = VectorSet::new(8);
        for _ in 0..17 {
            let v: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            queries.push(&v);
        }
        let seq = idx.search_batch(&queries, 5, 1);
        for threads in [1usize, 4] {
            let par = idx.search_batch(&queries, 5, threads);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(par.iter()) {
                let ia: Vec<usize> = a.iter().map(|n| n.index).collect();
                let ib: Vec<usize> = b.iter().map(|n| n.index).collect();
                assert_eq!(ia, ib, "ids differ at {threads} threads");
                // distances must be bit-identical, not just close: every
                // thread count runs the same kernel on the same slots
                let da: Vec<u32> = a.iter().map(|n| n.dist.to_bits()).collect();
                let db: Vec<u32> = b.iter().map(|n| n.dist.to_bits()).collect();
                assert_eq!(da, db, "dists differ at {threads} threads");
            }
        }
    }

    #[test]
    #[should_panic(expected = "query dim")]
    fn dim_mismatch_panics() {
        grid_index().search(&[1.0], 1);
    }
}
