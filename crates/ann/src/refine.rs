//! Refined search: approximate candidate generation + exact re-ranking
//! (FAISS's `IndexRefineFlat`). The compressed index over-fetches `r × k`
//! candidates cheaply; exact distances on the raw vectors then fix the
//! final order — recovering most of the recall PQ loses at small `k`
//! (the Figure 4 effect) at a fraction of the flat-scan cost.
// lint: hot-path

use crate::kernels::sq_l2;
use crate::pq::PqIndex;
use crate::topk::{Neighbor, TopK};
use crate::vectors::VectorSet;

/// Exact re-ranking tail shared by every refined search: scores each
/// candidate id against the raw vectors with the dispatched kernel and
/// keeps the `k` nearest. Candidates may arrive in any order; ties and
/// final order are fixed by [`TopK`].
pub(crate) fn exact_rerank<I>(raw: &VectorSet, query: &[f32], candidates: I, k: usize) -> Vec<Neighbor>
where
    I: IntoIterator<Item = usize>,
{
    let mut tk = TopK::new(k);
    for i in candidates {
        tk.push(i, sq_l2(query, raw.get(i)));
    }
    tk.into_sorted()
}

/// PQ candidate generation with exact re-ranking against the raw vectors.
pub struct RefinedPqIndex {
    pq: PqIndex,
    raw: VectorSet,
    /// Over-fetch factor: the PQ stage retrieves `refine_factor * k`.
    pub refine_factor: usize,
}

impl RefinedPqIndex {
    /// Wraps a PQ index together with the raw vectors it was built from.
    ///
    /// # Panics
    /// Panics if the vector count differs from the index size or
    /// `refine_factor` is zero.
    pub fn new(pq: PqIndex, raw: VectorSet, refine_factor: usize) -> Self {
        assert_eq!(pq.len(), raw.len(), "PQ index and raw vectors disagree in size");
        assert!(refine_factor >= 1, "refine_factor must be >= 1");
        RefinedPqIndex { pq, raw, refine_factor }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when the index is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// `k` nearest neighbours: PQ over-fetch, then exact re-rank.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.raw.is_empty() {
            return Vec::new();
        }
        let fetch = k.saturating_mul(self.refine_factor);
        let candidates = self.pq.search(query, fetch);
        exact_rerank(&self.raw, query, candidates.into_iter().map(|c| c.index), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::pq::PqConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        vs
    }

    #[test]
    fn refinement_beats_raw_pq_at_small_k() {
        let data = random_set(800, 16, 1);
        let flat = FlatIndex::new(data.clone());
        let cfg = PqConfig { m: 4, ks: 16, kmeans_iters: 20, seed: 0 };
        let pq = PqIndex::build(&data, cfg);
        let refined = RefinedPqIndex::new(PqIndex::build(&data, cfg), data.clone(), 16);
        let queries = random_set(25, 16, 2);

        let recall = |search: &dyn Fn(&[f32]) -> Vec<Neighbor>| -> f64 {
            let mut acc = 0.0;
            for q in queries.iter() {
                let truth: Vec<usize> = flat.search(q, 3).iter().map(|n| n.index).collect();
                let got: Vec<usize> = search(q).iter().map(|n| n.index).collect();
                acc += truth.iter().filter(|i| got.contains(i)).count() as f64 / 3.0;
            }
            acc / queries.len() as f64
        };
        let r_pq = recall(&|q| pq.search(q, 3));
        let r_ref = recall(&|q| refined.search(q, 3));
        assert!(
            r_ref >= r_pq,
            "refinement did not help: {r_ref} < {r_pq}"
        );
        assert!(r_ref > 0.9, "refined recall@3 too low: {r_ref}");
    }

    #[test]
    fn exact_distances_in_output() {
        let data = random_set(100, 8, 3);
        let cfg = PqConfig { m: 2, ks: 8, kmeans_iters: 5, seed: 0 };
        let refined = RefinedPqIndex::new(PqIndex::build(&data, cfg), data.clone(), 4);
        let hits = refined.search(data.get(7), 1);
        assert_eq!(hits[0].index, 7);
        assert_eq!(hits[0].dist, 0.0); // exact distance, not ADC estimate
    }

    #[test]
    #[should_panic(expected = "disagree in size")]
    fn size_mismatch_panics() {
        let data = random_set(50, 8, 4);
        let cfg = PqConfig { m: 2, ks: 8, kmeans_iters: 3, seed: 0 };
        let pq = PqIndex::build(&data, cfg);
        let _ = RefinedPqIndex::new(pq, random_set(10, 8, 5), 4);
    }
}
