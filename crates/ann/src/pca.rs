//! Principal component analysis — the alternate compression scheme the
//! paper compares against product quantization in Figure 5.
//!
//! Components are extracted by power iteration with deflation on the
//! covariance matrix; embedding dimensions are ≤ 256, so the dense
//! covariance is cheap.

use crate::vectors::VectorSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted PCA projection to `k` components.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f32>,
    /// `k` orthonormal component rows of length `dim`.
    components: Vec<Vec<f32>>,
}

impl Pca {
    /// Fits `k` principal components to `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty or `k` exceeds the dimension.
    pub fn fit(data: &VectorSet, k: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "PCA over empty data");
        let dim = data.dim();
        assert!(k >= 1 && k <= dim, "k = {k} out of range 1..={dim}");
        let n = data.len() as f32;

        let mut mean = vec![0.0f32; dim];
        for v in data.iter() {
            for (m, &x) in mean.iter_mut().zip(v) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }

        // covariance (dim × dim)
        let mut cov = vec![0.0f32; dim * dim];
        for v in data.iter() {
            for i in 0..dim {
                let di = v[i] - mean[i];
                for j in i..dim {
                    cov[i * dim + j] += di * (v[j] - mean[j]);
                }
            }
        }
        for i in 0..dim {
            for j in i..dim {
                let c = cov[i * dim + j] / n;
                cov[i * dim + j] = c;
                cov[j * dim + i] = c;
            }
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
        for _ in 0..k {
            let mut v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            normalize(&mut v);
            for _ in 0..60 {
                // w = Cov * v
                let mut w = vec![0.0f32; dim];
                for i in 0..dim {
                    let row = &cov[i * dim..(i + 1) * dim];
                    w[i] = row.iter().zip(&v).map(|(&c, &x)| c * x).sum();
                }
                // orthogonalize against previous components
                for comp in &components {
                    let dot: f32 = w.iter().zip(comp).map(|(&a, &b)| a * b).sum();
                    for (wi, &ci) in w.iter_mut().zip(comp) {
                        *wi -= dot * ci;
                    }
                }
                if normalize(&mut w) < 1e-12 {
                    // degenerate direction (rank-deficient data): keep random
                    break;
                }
                v = w;
            }
            components.push(v);
        }
        Pca { mean, components }
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Size of the projection itself in bytes: the mean vector plus the
    /// `k × dim` component rows (what an index must retain to project
    /// queries, on top of its projected vectors).
    pub fn nbytes(&self) -> usize {
        let f32s = std::mem::size_of::<f32>();
        self.mean.len() * f32s
            + self.components.iter().map(|c| c.len() * f32s).sum::<usize>()
    }

    /// Projects one vector to `k` dimensions.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn project(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim(), "project dim {} != {}", v.len(), self.dim());
        // center once, then one dispatched dot kernel per component
        let centered: Vec<f32> = v.iter().zip(&self.mean).map(|(&xi, &mi)| xi - mi).collect();
        self.components
            .iter()
            .map(|c| crate::kernels::dot(c, &centered))
            .collect()
    }

    /// Projects a whole collection.
    pub fn project_set(&self, data: &VectorSet) -> VectorSet {
        let mut out = VectorSet::new(self.k());
        for v in data.iter() {
            out.push(&self.project(v));
        }
        out
    }

    /// Reconstructs an approximation of the original vector from its
    /// projection.
    pub fn reconstruct(&self, proj: &[f32]) -> Vec<f32> {
        assert_eq!(proj.len(), self.k(), "reconstruct k {} != {}", proj.len(), self.k());
        let mut out = self.mean.clone();
        for (comp, &p) in self.components.iter().zip(proj) {
            for (o, &c) in out.iter_mut().zip(comp) {
                *o += p * c;
            }
        }
        out
    }
}

fn normalize(v: &mut [f32]) -> f32 {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::sq_l2;

    /// Data on a noisy 1-D line embedded in 3-D.
    fn line_data() -> VectorSet {
        let mut vs = VectorSet::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..200 {
            let t = i as f32 / 10.0;
            vs.push(&[
                t + rng.gen_range(-0.01..0.01),
                2.0 * t + rng.gen_range(-0.01..0.01),
                -t + rng.gen_range(-0.01..0.01),
            ]);
        }
        vs
    }

    #[test]
    fn first_component_captures_line() {
        let data = line_data();
        let pca = Pca::fit(&data, 1, 0);
        // reconstruction error with one component should be tiny
        let mut err = 0.0f32;
        for v in data.iter() {
            let rec = pca.reconstruct(&pca.project(v));
            err += sq_l2(v, &rec);
        }
        err /= data.len() as f32;
        assert!(err < 0.01, "line not captured: err {err}");
    }

    #[test]
    fn components_are_orthonormal() {
        let data = line_data();
        let pca = Pca::fit(&data, 3, 0);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f32 = pca.components[i]
                    .iter()
                    .zip(&pca.components[j])
                    .map(|(&a, &b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 0.05, "c{i}·c{j} = {dot}");
            }
        }
    }

    #[test]
    fn full_rank_projection_preserves_distances() {
        let data = line_data();
        let pca = Pca::fit(&data, 3, 0);
        let a = data.get(0);
        let b = data.get(50);
        let pa = pca.project(a);
        let pb = pca.project(b);
        let orig = sq_l2(a, b);
        let proj = sq_l2(&pa, &pb);
        assert!((orig - proj).abs() / orig.max(1e-6) < 0.05);
    }

    #[test]
    fn project_set_shapes() {
        let data = line_data();
        let pca = Pca::fit(&data, 2, 0);
        let p = pca.project_set(&data);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.len(), data.len());
    }

    #[test]
    fn constant_data_is_handled() {
        let mut vs = VectorSet::new(2);
        for _ in 0..10 {
            vs.push(&[3.0, 4.0]);
        }
        let pca = Pca::fit(&vs, 1, 0);
        let p = pca.project(&[3.0, 4.0]);
        assert!(p[0].abs() < 1e-4);
        let rec = pca.reconstruct(&p);
        assert!(sq_l2(&rec, &[3.0, 4.0]) < 1e-6);
    }
}
