//! PQ-fused HNSW traversal (kANNolo-style, arXiv:2501.06121).
//!
//! The plain [`HnswIndex`](crate::hnsw::HnswIndex) scores every beam
//! candidate with an exact `sq_l2` against full-precision vectors. This
//! variant fuses product quantization into the traversal instead:
//!
//! 1. **Build**: construct the standard HNSW graph, then re-number all
//!    nodes in BFS order from the entry point over layer 0 and store the
//!    PQ codes in that graph-adjacency order, so a beam expansion reads
//!    codes that are adjacent in memory.
//! 2. **Search**: one ADC distance table per query; greedy descent is
//!    scored with [`crate::kernels::adc`] and the layer-0 beam stages
//!    each node's unvisited peers contiguously and scores them with one
//!    [`crate::kernels::adc_block`] call against the shared table.
//! 3. **Re-rank**: the final `ef` frontier goes through the exact
//!    re-ranking tail shared with [`crate::refine`], so reported
//!    distances are true squared L2, not ADC estimates.
//!
//! Determinism matches the rest of the crate: for a fixed kernel
//! variant, a search is a pure function of `(index, query, k)` — the
//! batched path and any pool width return bit-identical results.
// lint: hot-path

use crate::hnsw::{Far, HnswConfig, HnswIndex, Near};
use crate::kernels;
use crate::pq::{PqConfig, ProductQuantizer};
use crate::refine::exact_rerank;
use crate::topk::Neighbor;
use crate::vectors::VectorSet;
use std::collections::BinaryHeap;

/// Configuration for [`HnswPqIndex::build`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HnswPqConfig {
    /// Graph parameters (construction and `ef_search`).
    pub hnsw: HnswConfig,
    /// Quantizer parameters for the traversal codes.
    pub pq: PqConfig,
}

/// Per-search scratch reused across queries: the ADC table, the visited
/// bitset, the unvisited-peer staging buffer for four-lane ADC scoring,
/// and the two beam heaps. Contents never survive a query (everything is
/// cleared or overwritten), so reuse cannot affect results — it only
/// removes the per-query allocations.
#[derive(Default)]
struct Scratch {
    table: Vec<f32>,
    visited: Vec<u64>,
    peers: Vec<u32>,
    peer_codes: Vec<u8>,
    peer_dists: Vec<f32>,
    frontier: BinaryHeap<Near>,
    results: BinaryHeap<Far>,
    pool: BinaryHeap<Far>,
}

std::thread_local! {
    /// Single-query searches reuse one scratch per thread; batch search
    /// threads its own per-chunk scratch through the pool instead.
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
}

/// HNSW graph whose traversal is scored with batched ADC over PQ codes
/// stored in graph-adjacency (BFS) order.
pub struct HnswPqIndex {
    quantizer: ProductQuantizer,
    /// Raw vectors in BFS order, kept for the exact re-rank tail.
    raw: VectorSet,
    /// PQ codes in BFS order, `m` bytes per node.
    codes: Vec<u8>,
    /// Layer-0 adjacency as CSR over BFS ids: neighbours of node `i`
    /// are `edges[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    edges: Vec<u32>,
    /// Upper-layer links for the few nodes that have them, sorted by
    /// BFS id: `(node, links-per-layer starting at layer 1)`.
    upper: Vec<(u32, Vec<Vec<u32>>)>,
    /// BFS id → original vector id.
    orig: Vec<u32>,
    max_level: usize,
    ef_search: usize,
}

impl HnswPqIndex {
    /// Cap on PQ training sample size; beyond it every `stride`-th
    /// vector trains the codebooks (deterministic, order-preserving).
    const MAX_TRAIN: usize = 16_384;

    /// Builds the graph on `data`, trains the quantizer, and lays codes
    /// out in graph-adjacency order.
    ///
    /// # Panics
    /// Panics on empty data, zero `m`, or PQ parameters that do not
    /// divide the dimension (see [`ProductQuantizer::train`]).
    pub fn build(data: &VectorSet, config: HnswPqConfig) -> Self {
        let graph = HnswIndex::build(data.clone(), config.hnsw);
        let (vectors, links, entry, max_level, hnsw_cfg) = graph.into_parts();
        let n = vectors.len();

        // BFS from the entry point over layer 0 defines the new id
        // order; unreachable nodes (possible in degenerate graphs)
        // append in original-id order to keep the permutation total.
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut newid: Vec<u32> = vec![u32::MAX; n];
        order.push(entry);
        newid[entry as usize] = 0;
        let mut head = 0;
        while head < order.len() {
            let node = order[head] as usize;
            head += 1;
            for &p in &links[node][0] {
                if newid[p as usize] == u32::MAX {
                    newid[p as usize] = order.len() as u32;
                    order.push(p);
                }
            }
        }
        for v in 0..n as u32 {
            if newid[v as usize] == u32::MAX {
                newid[v as usize] = order.len() as u32;
                order.push(v);
            }
        }

        let quantizer = if n <= Self::MAX_TRAIN {
            ProductQuantizer::train(&vectors, config.pq)
        } else {
            let stride = n.div_ceil(Self::MAX_TRAIN);
            let mut sample = VectorSet::new(vectors.dim());
            for i in (0..n).step_by(stride) {
                sample.push(vectors.get(i));
            }
            ProductQuantizer::train(&sample, config.pq)
        };

        let mut raw = VectorSet::new(vectors.dim());
        let mut codes = Vec::with_capacity(n * quantizer.m());
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::new();
        let mut upper: Vec<(u32, Vec<Vec<u32>>)> = Vec::new();
        offsets.push(0u32);
        for (pos, &old) in order.iter().enumerate() {
            let v = vectors.get(old as usize);
            raw.push(v);
            codes.extend_from_slice(&quantizer.encode(v));
            for &p in &links[old as usize][0] {
                edges.push(newid[p as usize]);
            }
            offsets.push(edges.len() as u32);
            if links[old as usize].len() > 1 {
                let layers: Vec<Vec<u32>> = links[old as usize][1..]
                    .iter()
                    .map(|l| l.iter().map(|&p| newid[p as usize]).collect())
                    .collect();
                upper.push((pos as u32, layers));
            }
        }

        HnswPqIndex {
            quantizer,
            raw,
            codes,
            offsets,
            edges,
            upper,
            orig: order,
            max_level,
            ef_search: hnsw_cfg.ef_search,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// True when no vectors are indexed.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// The trained quantizer.
    pub fn quantizer(&self) -> &ProductQuantizer {
        &self.quantizer
    }

    /// True index size in bytes: PQ codes + codebooks + graph adjacency
    /// (layer-0 CSR and upper links) + id map + the raw vectors the
    /// exact re-rank tail retains.
    pub fn nbytes(&self) -> usize {
        let u32s = std::mem::size_of::<u32>();
        let upper_payload: usize = self
            .upper
            .iter()
            .map(|(_, layers)| layers.iter().map(|l| l.len() * u32s).sum::<usize>())
            .sum();
        self.codes.len()
            + self.quantizer.codebook_nbytes()
            + (self.offsets.len() + self.edges.len() + self.orig.len()) * u32s
            + upper_payload
            + self.raw.nbytes()
    }

    /// Graph-plus-codes footprint without the re-rank vectors — the
    /// part the compressed traversal actually touches.
    pub fn traversal_nbytes(&self) -> usize {
        self.nbytes() - self.raw.nbytes()
    }

    #[inline]
    fn code(&self, node: usize) -> &[u8] {
        let m = self.quantizer.m();
        &self.codes[node * m..(node + 1) * m]
    }

    /// Upper-layer neighbours of `node` at `layer` (≥ 1), empty when
    /// the node does not reach that layer.
    fn upper_links(&self, node: u32, layer: usize) -> &[u32] {
        match self.upper.binary_search_by_key(&node, |&(id, _)| id) {
            Ok(i) => self.upper[i]
                .1
                .get(layer - 1)
                .map(Vec::as_slice)
                .unwrap_or(&[]),
            Err(_) => &[],
        }
    }

    /// Approximate `k` nearest neighbours, ascending by exact distance
    /// (the frontier is re-ranked against the raw vectors).
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        SCRATCH.with(|s| self.search_with_scratch(query, k, &mut s.borrow_mut()).0)
    }

    /// Traced twin of [`HnswPqIndex::search`]: identical results, plus
    /// `backend`/`visited` annotations on `span`.
    pub fn search_traced(
        &self,
        query: &[f32],
        k: usize,
        span: &emblookup_obs::TraceSpan,
    ) -> Vec<Neighbor> {
        let (hits, visited) =
            SCRATCH.with(|s| self.search_with_scratch(query, k, &mut s.borrow_mut()));
        span.annotate("backend", "hnswpq");
        span.annotate("visited", visited);
        hits
    }

    /// Batch search; `threads > 1` fans queries out over the persistent
    /// pool with one scratch (ADC table + bitset) per chunk. Results are
    /// bit-identical to the single-query path at any width.
    pub fn search_batch(&self, queries: &VectorSet, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = threads.max(1).min(n);
        let run = |scratch: &mut Scratch, i: usize| {
            self.search_with_scratch(queries.get(i), k, scratch).0
        };
        if threads == 1 {
            let mut scratch = Scratch::default();
            return (0..n).map(|i| run(&mut scratch, i)).collect();
        }
        let grain = n.div_ceil(threads * 2).max(1);
        emblookup_pool::Pool::global().parallel_map_with(n, grain, Scratch::default, run)
    }

    /// The search body: ADC-scored descent + beam, exact re-rank tail.
    /// Returns the hits (original ids) and the visited-node count.
    fn search_with_scratch(&self, query: &[f32], k: usize, scratch: &mut Scratch) -> (Vec<Neighbor>, u64) {
        if k == 0 || self.raw.is_empty() {
            return (Vec::new(), 0);
        }
        crate::metrics::hnswpq_searches().inc();
        let ks = self.quantizer.ks();
        let m = self.quantizer.m();
        self.quantizer.distance_table_into(query, &mut scratch.table);
        let table = scratch.table.as_slice();

        // greedy ADC descent through the upper layers
        let mut current: u32 = 0; // BFS renumbering puts the entry at 0
        let mut dcur = kernels::adc(table, ks, self.code(0));
        for layer in (1..=self.max_level).rev() {
            loop {
                let mut improved = false;
                for &p in self.upper_links(current, layer) {
                    let d = kernels::adc(table, ks, self.code(p as usize));
                    if d < dcur {
                        dcur = d;
                        current = p;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }

        // layer-0 beam, unvisited peers scored four codes per ADC call
        let n = self.raw.len();
        scratch.visited.clear();
        scratch.visited.resize(n.div_ceil(64), 0);
        let mut visited_count: u64 = 1;
        scratch.visited[current as usize / 64] |= 1 << (current as usize % 64);
        let ef = self.ef_search.max(k);
        // The re-rank pool is wider than the beam: ADC mis-ranking can
        // push a true neighbour past the beam's `ef` cutoff, but every
        // node the beam *scores* is remembered in an ADC top-`R` pool
        // for the exact re-rank tail (kANNolo's re-rank factor). The
        // extra pool pushes cost ~nothing — those nodes were scored
        // anyway — and decouple traversal width from re-rank width.
        let pool_cap = ef.max(4 * k);
        let mut frontier = std::mem::take(&mut scratch.frontier);
        let mut results = std::mem::take(&mut scratch.results);
        let mut pool = std::mem::take(&mut scratch.pool);
        frontier.clear();
        results.clear();
        pool.clear();
        frontier.push(Near(dcur, current));
        results.push(Far(dcur, current));
        pool.push(Far(dcur, current));

        while let Some(Near(d, node)) = frontier.pop() {
            let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
            if d > worst && results.len() >= ef {
                break;
            }
            let (lo, hi) = (self.offsets[node as usize] as usize, self.offsets[node as usize + 1] as usize);
            scratch.peers.clear();
            scratch.peer_codes.clear();
            for &p in &self.edges[lo..hi] {
                let (w, b) = (p as usize / 64, 1u64 << (p as usize % 64));
                if scratch.visited[w] & b == 0 {
                    scratch.visited[w] |= b;
                    scratch.peers.push(p);
                    scratch.peer_codes.extend_from_slice(self.code(p as usize));
                }
            }
            visited_count += scratch.peers.len() as u64;
            // one block-ADC kernel call scores every unvisited peer of
            // this node; staging the codes contiguously costs an m-byte
            // copy per peer and amortizes the dispatch over the block
            scratch.peer_dists.clear();
            scratch.peer_dists.resize(scratch.peers.len(), 0.0);
            kernels::adc_block(table, ks, m, &scratch.peer_codes, &mut scratch.peer_dists);
            for (&peer, &dp) in scratch.peers.iter().zip(&scratch.peer_dists) {
                if pool.len() < pool_cap {
                    pool.push(Far(dp, peer));
                } else if dp < pool.peek().map(|f| f.0).unwrap_or(f32::INFINITY) {
                    pool.push(Far(dp, peer));
                    pool.pop();
                }
                let worst = results.peek().map(|f| f.0).unwrap_or(f32::INFINITY);
                if results.len() < ef || dp < worst {
                    frontier.push(Near(dp, peer));
                    results.push(Far(dp, peer));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        crate::metrics::hnswpq_visited().add(visited_count);

        // exact re-rank of the ADC top-`R` pool through the shared
        // tail, then map BFS ids back to original vector ids
        let pool_ids = pool.drain().map(|Far(_, id)| id as usize);
        let mut hits = exact_rerank(&self.raw, query, pool_ids, k);
        for h in &mut hits {
            h.index = self.orig[h.index] as usize;
        }
        // return the heap storage to the scratch for the next query
        scratch.frontier = frontier;
        scratch.results = results;
        scratch.pool = pool;
        (hits, visited_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        vs
    }

    fn fixture_config() -> HnswPqConfig {
        // quantized traversal needs a wider beam than exact HNSW: the
        // ADC estimate mis-ranks near-ties, and the exact re-rank can
        // only fix what the frontier contains
        HnswPqConfig {
            hnsw: HnswConfig { ef_search: 96, ..HnswConfig::default() },
            pq: PqConfig { m: 4, ks: 16, kmeans_iters: 10, seed: 0 },
        }
    }

    #[test]
    fn finds_self_as_nearest_with_exact_distance() {
        let data = random_set(600, 16, 1);
        let idx = HnswPqIndex::build(&data, fixture_config());
        for i in (0..600).step_by(53) {
            let hits = idx.search(data.get(i), 1);
            assert_eq!(hits[0].index, i, "vector {i} did not find itself");
            assert_eq!(hits[0].dist, 0.0, "re-ranked distance must be exact");
        }
    }

    #[test]
    fn recall_at_10_regression_on_600_entity_fixture() {
        // the seeded 600-entity fixture of the acceptance criteria:
        // ADC-guided traversal + exact re-rank must stay close to flat
        let data = random_set(600, 16, 2);
        let flat = FlatIndex::new(data.clone());
        let idx = HnswPqIndex::build(&data, fixture_config());
        let queries = random_set(30, 16, 3);
        let mut recall = 0.0;
        for q in queries.iter() {
            let truth: Vec<usize> = flat.search(q, 10).iter().map(|n| n.index).collect();
            let got: Vec<usize> = idx.search(q, 10).iter().map(|n| n.index).collect();
            recall += truth.iter().filter(|i| got.contains(i)).count() as f64 / 10.0;
        }
        recall /= 30.0;
        assert!(recall > 0.85, "HnswPq recall@10 too low: {recall}");
    }

    #[test]
    fn batch_is_bit_identical_across_widths() {
        let data = random_set(500, 16, 4);
        let idx = HnswPqIndex::build(&data, fixture_config());
        let queries = random_set(23, 16, 5);
        let seq = idx.search_batch(&queries, 7, 1);
        for threads in [1usize, 4] {
            let par = idx.search_batch(&queries, 7, threads);
            for (a, b) in seq.iter().zip(&par) {
                let ia: Vec<usize> = a.iter().map(|n| n.index).collect();
                let ib: Vec<usize> = b.iter().map(|n| n.index).collect();
                assert_eq!(ia, ib, "ids differ at {threads} threads");
                let da: Vec<u32> = a.iter().map(|n| n.dist.to_bits()).collect();
                let db: Vec<u32> = b.iter().map(|n| n.dist.to_bits()).collect();
                assert_eq!(da, db, "dists differ at {threads} threads");
            }
        }
        // batch must also equal the single-query path exactly
        for (q, hits) in queries.iter().zip(&seq) {
            assert_eq!(hits, &idx.search(q, 7));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = random_set(300, 16, 6);
        let a = HnswPqIndex::build(&data, fixture_config());
        let b = HnswPqIndex::build(&data, fixture_config());
        let q = data.get(17);
        assert_eq!(a.search(q, 5), b.search(q, 5));
    }

    #[test]
    fn single_vector_graph() {
        let mut vs = VectorSet::new(4);
        vs.push(&[1.0, 2.0, 3.0, 4.0]);
        let idx = HnswPqIndex::build(
            &vs,
            HnswPqConfig {
                hnsw: HnswConfig::default(),
                pq: PqConfig { m: 2, ks: 1, kmeans_iters: 2, seed: 0 },
            },
        );
        let hits = idx.search(&[1.0, 2.0, 3.0, 4.0], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn k_zero_is_empty() {
        let data = random_set(50, 8, 7);
        let idx = HnswPqIndex::build(
            &data,
            HnswPqConfig {
                hnsw: HnswConfig::default(),
                pq: PqConfig { m: 2, ks: 8, kmeans_iters: 3, seed: 0 },
            },
        );
        assert!(idx.search(data.get(0), 0).is_empty());
    }

    #[test]
    fn nbytes_accounts_for_codes_graph_and_rerank_vectors() {
        let data = random_set(400, 16, 8);
        let idx = HnswPqIndex::build(&data, fixture_config());
        // raw re-rank vectors alone are a strict lower bound, and the
        // traversal footprint (codes + graph) must be non-trivial
        assert!(idx.nbytes() > data.nbytes());
        assert!(idx.traversal_nbytes() >= 400 * 4, "codes missing from accounting");
        assert_eq!(idx.nbytes() - idx.traversal_nbytes(), data.nbytes());
    }
}
