//! Per-backend search counters, recorded into the global obs registry.
//!
//! Handles are resolved once per process through `OnceLock`, so the hot
//! search paths only ever touch a relaxed atomic — never the registry
//! lock. Counters follow the `ann.<backend>.<what>` naming scheme:
//! `searches` counts queries, `visited_nodes` counts how many stored
//! vectors/codes a query actually examined (the work metric behind the
//! flat-vs-ANN comparisons).

use emblookup_obs::names;
use emblookup_obs::{global, Counter};
use std::sync::{Arc, OnceLock};

macro_rules! static_counter {
    ($(#[$doc:meta])* $name:ident, $metric:expr) => {
        $(#[$doc])*
        pub(crate) fn $name() -> &'static Counter {
            static C: OnceLock<Arc<Counter>> = OnceLock::new();
            C.get_or_init(|| global().counter($metric))
        }
    };
}

static_counter!(flat_searches, names::ANN_FLAT_SEARCHES);
static_counter!(flat_visited, names::ANN_FLAT_VISITED);
static_counter!(hnsw_searches, names::ANN_HNSW_SEARCHES);
static_counter!(hnsw_visited, names::ANN_HNSW_VISITED);
static_counter!(ivf_searches, names::ANN_IVF_SEARCHES);
static_counter!(ivf_visited, names::ANN_IVF_VISITED);
static_counter!(pq_searches, names::ANN_PQ_SEARCHES);
static_counter!(pq_visited, names::ANN_PQ_VISITED);
static_counter!(ivfpq_searches, names::ANN_IVFPQ_SEARCHES);
static_counter!(ivfpq_visited, names::ANN_IVFPQ_VISITED);
static_counter!(hnswpq_searches, names::ANN_HNSWPQ_SEARCHES);
static_counter!(hnswpq_visited, names::ANN_HNSWPQ_VISITED);
