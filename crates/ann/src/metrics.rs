//! Per-backend search counters, recorded into the global obs registry.
//!
//! Handles are resolved once per process through `OnceLock`, so the hot
//! search paths only ever touch a relaxed atomic — never the registry
//! lock. Counters follow the `ann.<backend>.<what>` naming scheme:
//! `searches` counts queries, `visited_nodes` counts how many stored
//! vectors/codes a query actually examined (the work metric behind the
//! flat-vs-ANN comparisons).

use emblookup_obs::{global, Counter};
use std::sync::{Arc, OnceLock};

macro_rules! static_counter {
    ($(#[$doc:meta])* $name:ident, $metric:expr) => {
        $(#[$doc])*
        pub(crate) fn $name() -> &'static Counter {
            static C: OnceLock<Arc<Counter>> = OnceLock::new();
            C.get_or_init(|| global().counter($metric))
        }
    };
}

static_counter!(flat_searches, "ann.flat.searches");
static_counter!(flat_visited, "ann.flat.visited_nodes");
static_counter!(hnsw_searches, "ann.hnsw.searches");
static_counter!(hnsw_visited, "ann.hnsw.visited_nodes");
static_counter!(ivf_searches, "ann.ivf.searches");
static_counter!(ivf_visited, "ann.ivf.visited_nodes");
static_counter!(pq_searches, "ann.pq.searches");
static_counter!(pq_visited, "ann.pq.visited_nodes");
static_counter!(ivfpq_searches, "ann.ivfpq.searches");
static_counter!(ivfpq_visited, "ann.ivfpq.visited_nodes");
