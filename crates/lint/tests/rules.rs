//! Fixture tests: one violating snippet per rule, plus the suppression
//! and misuse paths of the `// lint: allow(Lxxx) reason` escape hatch.
//! Each fixture is linted in memory through [`emblookup_lint::lint_source`]
//! under a realistic library path so file classification applies.

use emblookup_lint::lint_source;

const LIB: &str = "crates/demo/src/lib.rs";

fn rules_at(path: &str, src: &str) -> Vec<(String, u32)> {
    lint_source(path, src)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

// ----------------------------------------------------------------- L001

#[test]
fn l001_unwrap_in_library_code_fires() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(rules_at(LIB, src), vec![("L001".to_string(), 2)]);
}

#[test]
fn l001_expect_panic_unreachable_fire() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    if x.is_none() { panic!(\"no\") }\n    x.expect(\"some\")\n}\npub fn g() { unreachable!() }\n";
    let got = rules_at(LIB, src);
    assert_eq!(
        got,
        vec![
            ("L001".to_string(), 2),
            ("L001".to_string(), 3),
            ("L001".to_string(), 5)
        ]
    );
}

#[test]
fn l001_allow_with_reason_suppresses() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // lint: allow(L001) invariant: caller checked is_some\n    x.unwrap()\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l001_allow_without_reason_is_an_error() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // lint: allow(L001)\n    x.unwrap()\n}\n";
    let got = rules_at(LIB, src);
    // the bare allow is rejected (L000) and therefore does NOT suppress
    assert!(got.contains(&("L000".to_string(), 2)), "got {got:?}");
    assert!(got.contains(&("L001".to_string(), 3)), "got {got:?}");
}

#[test]
fn l001_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l001_binaries_are_exempt() {
    let src = "fn main() { std::env::args().next().unwrap(); }\n";
    assert_eq!(rules_at("crates/demo/src/main.rs", src), vec![]);
}

// ----------------------------------------------------------------- L002

#[test]
fn l002_lock_in_hot_path_module_fires() {
    let src = "// lint: hot-path\nuse std::sync::Mutex;\npub struct S { m: Mutex<u32> }\n";
    let got = rules_at(LIB, src);
    assert!(
        got.iter().any(|(r, _)| r == "L002"),
        "expected L002, got {got:?}"
    );
}

#[test]
fn l002_allocation_in_hot_path_module_fires() {
    let src = "// lint: hot-path\npub fn f(n: u32) -> String {\n    format!(\"q{n}\")\n}\n";
    assert_eq!(rules_at(LIB, src), vec![("L002".to_string(), 3)]);
}

#[test]
fn l002_same_code_without_hot_path_is_clean() {
    let src = "pub fn f(n: u32) -> String {\n    format!(\"q{n}\")\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l002_allow_with_reason_suppresses() {
    let src = "// lint: hot-path\npub fn f(n: u32) -> String {\n    // lint: allow(L002) error path only, never taken per lookup\n    format!(\"q{n}\")\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

// ----------------------------------------------------------------- L003

#[test]
fn l003_raw_literal_of_registered_name_fires_with_suggestion() {
    let src = "pub fn f() {\n    emblookup_obs::global().histogram(\"lookup.latency\");\n}\n";
    let vs = lint_source(LIB, src);
    assert_eq!(vs.len(), 1, "got {vs:?}");
    assert_eq!(vs[0].rule, "L003");
    assert_eq!(vs[0].line, 2);
    let sug = vs[0].suggestion.as_deref().unwrap_or("");
    assert!(sug.contains("LOOKUP_LATENCY"), "suggestion was {sug:?}");
}

#[test]
fn l003_unregistered_name_in_metric_position_fires() {
    let src = "pub fn f() {\n    emblookup_obs::global().counter(\"my.adhoc.metric\");\n}\n";
    let got = rules_at(LIB, src);
    assert_eq!(got, vec![("L003".to_string(), 2)]);
}

#[test]
fn l003_names_constant_usage_is_clean() {
    let src = "use emblookup_obs::names;\npub fn f() {\n    emblookup_obs::global().counter(names::TRAIN_EPOCHS);\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l003_obs_crate_is_exempt() {
    let src = "pub fn f() {\n    emblookup_obs::global().counter(\"my.adhoc.metric\");\n}\n";
    assert_eq!(rules_at("crates/obs/src/registry.rs", src), vec![]);
}

// ----------------------------------------------------------------- L004

#[test]
fn l004_bare_todo_fires_even_in_binaries() {
    let src = "// TODO tighten this bound\nfn main() {}\n";
    assert_eq!(
        rules_at("crates/demo/src/main.rs", src),
        vec![("L004".to_string(), 1)]
    );
}

#[test]
fn l004_todo_with_issue_reference_is_clean() {
    let src = "// TODO(#42): tighten this bound\npub fn f() {}\n// FIXME https://github.com/x/y/issues/7 — precision loss\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

// ------------------------------------------------- lexer adversaries

#[test]
fn banned_tokens_inside_strings_and_comments_do_not_fire() {
    let src = concat!(
        "// .unwrap() discussed in a comment is fine\n",
        "/* panic!(\"in a block comment\") */\n",
        "pub fn f() -> &'static str {\n",
        "    \"calls .unwrap() and panic!()\"\n",
        "}\n",
        "pub fn g() -> &'static str {\n",
        "    r#\"raw with \".unwrap()\" inside\"#\n",
        "}\n",
    );
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn metric_literal_in_raw_string_still_detected() {
    // L003's drift check is lexical over string tokens, raw or not
    let src = "pub fn f() {\n    emblookup_obs::global().counter(r\"lookup.latency\");\n}\n";
    let got = rules_at(LIB, src);
    assert_eq!(got, vec![("L003".to_string(), 2)]);
}

#[test]
fn lifetimes_and_char_literals_do_not_confuse_the_lexer() {
    let src = "pub fn f<'a>(x: &'a [char]) -> bool {\n    x.first() == Some(&'\\'')\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn unterminated_string_does_not_hang_or_panic() {
    let src = "pub fn f() { let _ = \"never closed...\n";
    let _ = lint_source(LIB, src);
}

#[test]
fn cfg_not_test_is_still_linted() {
    let src = "#[cfg(not(test))]\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules_at(LIB, src), vec![("L001".to_string(), 2)]);
}
