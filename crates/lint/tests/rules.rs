//! Fixture tests: one violating snippet per rule, plus the suppression
//! and misuse paths of the `// lint: allow(Lxxx) reason` escape hatch.
//! Each fixture is linted in memory through [`emblookup_lint::lint_source`]
//! under a realistic library path so file classification applies.

use emblookup_lint::lint_source;

const LIB: &str = "crates/demo/src/lib.rs";

fn rules_at(path: &str, src: &str) -> Vec<(String, u32)> {
    lint_source(path, src)
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

// ----------------------------------------------------------------- L001

#[test]
fn l001_unwrap_in_library_code_fires() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(rules_at(LIB, src), vec![("L001".to_string(), 2)]);
}

#[test]
fn l001_expect_panic_unreachable_fire() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    if x.is_none() { panic!(\"no\") }\n    x.expect(\"some\")\n}\npub fn g() { unreachable!() }\n";
    let got = rules_at(LIB, src);
    assert_eq!(
        got,
        vec![
            ("L001".to_string(), 2),
            ("L001".to_string(), 3),
            ("L001".to_string(), 5)
        ]
    );
}

#[test]
fn l001_allow_with_reason_suppresses() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // lint: allow(L001) invariant: caller checked is_some\n    x.unwrap()\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l001_allow_without_reason_is_an_error() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    // lint: allow(L001)\n    x.unwrap()\n}\n";
    let got = rules_at(LIB, src);
    // the bare allow is rejected (L000) and therefore does NOT suppress
    assert!(got.contains(&("L000".to_string(), 2)), "got {got:?}");
    assert!(got.contains(&("L001".to_string(), 3)), "got {got:?}");
}

#[test]
fn l001_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l001_binaries_are_exempt() {
    let src = "fn main() { std::env::args().next().unwrap(); }\n";
    assert_eq!(rules_at("crates/demo/src/main.rs", src), vec![]);
}

// ----------------------------------------------------------------- L002

#[test]
fn l002_lock_in_hot_path_module_fires() {
    let src = "// lint: hot-path\nuse std::sync::Mutex;\npub struct S { m: Mutex<u32> }\n";
    let got = rules_at(LIB, src);
    assert!(
        got.iter().any(|(r, _)| r == "L002"),
        "expected L002, got {got:?}"
    );
}

#[test]
fn l002_allocation_in_hot_path_module_fires() {
    let src = "// lint: hot-path\npub fn f(n: u32) -> String {\n    format!(\"q{n}\")\n}\n";
    assert_eq!(rules_at(LIB, src), vec![("L002".to_string(), 3)]);
}

#[test]
fn l002_same_code_without_hot_path_is_clean() {
    let src = "pub fn f(n: u32) -> String {\n    format!(\"q{n}\")\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l002_allow_with_reason_suppresses() {
    let src = "// lint: hot-path\npub fn f(n: u32) -> String {\n    // lint: allow(L002) error path only, never taken per lookup\n    format!(\"q{n}\")\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l002_unjustified_unsafe_in_hot_path_fires() {
    let src = "// lint: hot-path\npub fn f(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules_at(LIB, src), vec![("L002".to_string(), 3)]);
}

#[test]
fn l002_justified_unsafe_in_hot_path_is_clean() {
    let src = "// lint: hot-path\npub fn f(p: *const f32) -> f32 {\n    // lint: allow(L002) caller guarantees p is valid for reads\n    unsafe { *p }\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l002_unsafe_off_hot_path_is_clean() {
    let src = "pub fn f(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l002_target_feature_outside_kernels_fires_even_without_hot_path() {
    let src = "#[target_feature(enable = \"avx2\")]\npub unsafe fn f() {}\n";
    let got = rules_at(LIB, src);
    assert!(
        got.contains(&("L002".to_string(), 1)),
        "expected target_feature L002, got {got:?}"
    );
}

#[test]
fn l002_target_feature_inside_kernels_module_is_exempt() {
    let src = "// lint: hot-path\n#[target_feature(enable = \"avx2\")]\n// lint: allow(L002) dispatch-gated: caller verified avx2\nunsafe fn f() {}\npub fn g() {}\n";
    assert_eq!(rules_at("crates/demo/src/kernels.rs", src), vec![]);
}

// ----------------------------------------------------------------- L003

#[test]
fn l003_raw_literal_of_registered_name_fires_with_suggestion() {
    let src = "pub fn f() {\n    emblookup_obs::global().histogram(\"lookup.latency\");\n}\n";
    let vs = lint_source(LIB, src);
    assert_eq!(vs.len(), 1, "got {vs:?}");
    assert_eq!(vs[0].rule, "L003");
    assert_eq!(vs[0].line, 2);
    let sug = vs[0].suggestion.as_deref().unwrap_or("");
    assert!(sug.contains("LOOKUP_LATENCY"), "suggestion was {sug:?}");
}

#[test]
fn l003_unregistered_name_in_metric_position_fires() {
    let src = "pub fn f() {\n    emblookup_obs::global().counter(\"my.adhoc.metric\");\n}\n";
    let got = rules_at(LIB, src);
    assert_eq!(got, vec![("L003".to_string(), 2)]);
}

#[test]
fn l003_names_constant_usage_is_clean() {
    let src = "use emblookup_obs::names;\npub fn f() {\n    emblookup_obs::global().counter(names::TRAIN_EPOCHS);\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l003_span_name_literal_in_trace_position_fires() {
    let src = "pub fn f(trace: &std::sync::Arc<emblookup_obs::Trace>) {\n    let root = trace.root(\"my.adhoc.span\");\n    let child = root.child(\"another.span\");\n    child.finish();\n}\n";
    let got = rules_at(LIB, src);
    assert_eq!(got, vec![("L003".to_string(), 2), ("L003".to_string(), 3)]);
}

#[test]
fn l003_span_names_from_constants_are_clean() {
    let src = "use emblookup_obs::names;\npub fn f(trace: &std::sync::Arc<emblookup_obs::Trace>) {\n    let root = trace.root(names::SPAN_SERVE_REQUEST);\n    let chunk = root.child_deferred(names::SPAN_POOL_CHUNK);\n    chunk.finish();\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l003_obs_crate_is_exempt() {
    let src = "pub fn f() {\n    emblookup_obs::global().counter(\"my.adhoc.metric\");\n}\n";
    assert_eq!(rules_at("crates/obs/src/registry.rs", src), vec![]);
}

// ----------------------------------------------------------------- L004

#[test]
fn l004_bare_todo_fires_even_in_binaries() {
    let src = "// TODO tighten this bound\nfn main() {}\n";
    assert_eq!(
        rules_at("crates/demo/src/main.rs", src),
        vec![("L004".to_string(), 1)]
    );
}

#[test]
fn l004_todo_with_issue_reference_is_clean() {
    let src = "// TODO(#42): tighten this bound\npub fn f() {}\n// FIXME https://github.com/x/y/issues/7 — precision loss\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

// ------------------------------------------------- lexer adversaries

#[test]
fn banned_tokens_inside_strings_and_comments_do_not_fire() {
    let src = concat!(
        "// .unwrap() discussed in a comment is fine\n",
        "/* panic!(\"in a block comment\") */\n",
        "pub fn f() -> &'static str {\n",
        "    \"calls .unwrap() and panic!()\"\n",
        "}\n",
        "pub fn g() -> &'static str {\n",
        "    r#\"raw with \".unwrap()\" inside\"#\n",
        "}\n",
    );
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn metric_literal_in_raw_string_still_detected() {
    // L003's drift check is lexical over string tokens, raw or not
    let src = "pub fn f() {\n    emblookup_obs::global().counter(r\"lookup.latency\");\n}\n";
    let got = rules_at(LIB, src);
    assert_eq!(got, vec![("L003".to_string(), 2)]);
}

#[test]
fn lifetimes_and_char_literals_do_not_confuse_the_lexer() {
    let src = "pub fn f<'a>(x: &'a [char]) -> bool {\n    x.first() == Some(&'\\'')\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn unterminated_string_does_not_hang_or_panic() {
    let src = "pub fn f() { let _ = \"never closed...\n";
    let _ = lint_source(LIB, src);
}

#[test]
fn cfg_not_test_is_still_linted() {
    let src = "#[cfg(not(test))]\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules_at(LIB, src), vec![("L001".to_string(), 2)]);
}

// ----------------------------------------------------------------- L005

#[test]
fn l005_reversed_dep_in_tensor_fails_with_file_and_line() {
    // acceptance scenario: `use emblookup_core` inside crates/tensor
    let path = "crates/tensor/src/lib.rs";
    let src = "pub mod tensor;\nuse emblookup_core::EmbLookup;\n";
    let sf = emblookup_lint::SourceFile::parse(path, src);
    let refs = emblookup_lint::parser::crate_refs(&sf);
    let vs = emblookup_lint::layers::check_source(&sf, "emblookup-tensor", &refs);
    assert_eq!(vs.len(), 1, "got {vs:?}");
    assert_eq!(vs[0].rule, "L005");
    assert_eq!((vs[0].file.as_str(), vs[0].line), (path, 2));
    assert!(vs[0].message.contains("emblookup-core"), "{}", vs[0].message);
}

#[test]
fn l005_downward_dep_is_clean() {
    let path = "crates/core/src/service.rs";
    let src = "use emblookup_ann::FlatIndex;\nuse emblookup_embed::StringEncoder;\n";
    let sf = emblookup_lint::SourceFile::parse(path, src);
    let refs = emblookup_lint::parser::crate_refs(&sf);
    assert_eq!(
        emblookup_lint::layers::check_source(&sf, "emblookup-core", &refs),
        vec![]
    );
}

// ----------------------------------------------------------------- L006

#[test]
fn l006_deleting_a_pub_fn_without_bless_fails() {
    // acceptance scenario: a pub fn disappears but API.lock still lists it
    let before = "pub fn kept() {}\npub fn deleted() {}\n";
    let after = "pub fn kept() {}\n";
    let mut old = emblookup_lint::api::Snapshot::default();
    old.add_file(
        "emblookup-demo",
        "crates/demo/src/lib.rs",
        "lib.rs",
        &emblookup_lint::SourceFile::parse("crates/demo/src/lib.rs", before),
    );
    let lock = old.render();
    let mut new = emblookup_lint::api::Snapshot::default();
    new.add_file(
        "emblookup-demo",
        "crates/demo/src/lib.rs",
        "lib.rs",
        &emblookup_lint::SourceFile::parse("crates/demo/src/lib.rs", after),
    );
    let vs = emblookup_lint::api::diff(&lock, &new);
    assert_eq!(vs.len(), 1, "got {vs:?}");
    assert_eq!(vs[0].rule, "L006");
    assert_eq!(vs[0].file, emblookup_lint::api::LOCK_FILE);
    assert!(vs[0].line > 0, "removed item must point at the stale lock line");
    assert!(vs[0].message.contains("removed `. pub fn deleted()`"), "{}", vs[0].message);
    assert!(vs[0].message.contains("--api-bless"), "{}", vs[0].message);
}

// ----------------------------------------------------------------- L007

#[test]
fn l007_float_equality_in_ann_fires() {
    // acceptance scenario: adding `f32 ==` in crates/ann
    let src = "pub fn same(a: f32, b: f32) -> bool {\n    a == 0.0 || b != 1.5\n}\n";
    let got = rules_at("crates/ann/src/flat.rs", src);
    assert_eq!(
        got,
        vec![("L007".to_string(), 2), ("L007".to_string(), 2)]
    );
}

#[test]
fn l007_panicking_partial_cmp_chain_fires() {
    let src = "pub fn cmp(a: f32, b: f32) -> std::cmp::Ordering {\n    a.partial_cmp(&b).unwrap()\n}\n";
    // the chain is both a panic site (L001) and a NaN hazard (L007)
    assert_eq!(
        rules_at(LIB, src),
        vec![("L001".to_string(), 2), ("L007".to_string(), 2)]
    );
}

#[test]
fn l007_partial_cmp_comparator_fires_and_total_cmp_is_clean() {
    let bad = "pub fn s(v: &mut [f32]) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n}\n";
    assert_eq!(rules_at(LIB, bad), vec![("L007".to_string(), 2)]);
    let good = "pub fn s(v: &mut [f32]) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert_eq!(rules_at(LIB, good), vec![]);
}

#[test]
fn l007_allow_with_reason_and_test_code_are_exempt() {
    let src = "pub fn f(a: f32) -> bool {\n    // lint: allow(L007) exact-zero sparsity check\n    a == 0.0\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(super::f(0.0) == true); let x = 1.0; let _ = x == 1.0; }\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

#[test]
fn l007_integer_comparisons_are_clean() {
    let src = "pub fn f(a: usize, n: u32) -> bool {\n    a == 0 && n != 3 && a <= 4\n}\n";
    assert_eq!(rules_at(LIB, src), vec![]);
}

// ------------------------------------------------------- JSON golden

#[test]
fn json_report_is_golden_stable() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    emblookup_obs::global().counter(\"train.epochs\");\n    x.unwrap()\n}\n";
    let violations = lint_source("crates/demo/src/a \"b.rs", src);
    let got = emblookup_lint::report::render_json(&violations, &[], 1);
    let want = concat!(
        "{\"violations\":[",
        "{\"file\":\"crates/demo/src/a \\\"b.rs\",\"line\":2,\"rule\":\"L003\",",
        "\"message\":\"metric name literal \\\"train.epochs\\\"; use emblookup_obs::names::TRAIN_EPOCHS\",",
        "\"suggestion\":\"TRAIN_EPOCHS\"},",
        "{\"file\":\"crates/demo/src/a \\\"b.rs\",\"line\":3,\"rule\":\"L001\",",
        "\"message\":\".unwrap() can panic; propagate a Result or add `// lint: allow(L001) reason`\"}",
        "],\"warnings\":[],\"files_checked\":1,",
        "\"rule_counts\":{\"L000\":0,\"L001\":1,\"L002\":0,\"L003\":1,\"L004\":0,\"L005\":0,\"L006\":0,",
        "\"L007\":0,\"L008\":0,\"L009\":0,\"L010\":0,\"L011\":0,\"L012\":0,\"L013\":0}}"
    );
    assert_eq!(got, want);
}

// ------------------------------------------- --fix-metric-names --write

#[test]
fn fix_write_round_trips_and_relints_clean() {
    let src = "pub fn f() {\n    emblookup_obs::global().counter(\"train.epochs\").inc();\n    emblookup_obs::global().histogram(\"lookup.latency\");\n}\n";
    let registry = emblookup_lint::obs_name_registry();
    let fixed = emblookup_lint::fix::rewrite_source(LIB, src, &registry)
        .expect("two literals should be rewritten");
    assert!(fixed.contains("counter(emblookup_obs::names::TRAIN_EPOCHS)"), "{fixed}");
    assert!(fixed.contains("histogram(emblookup_obs::names::LOOKUP_LATENCY)"), "{fixed}");
    // idempotent: a second pass changes nothing
    assert!(emblookup_lint::fix::rewrite_source(LIB, &fixed, &registry).is_none());
    // and the result re-lints clean
    assert_eq!(rules_at(LIB, &fixed), vec![]);
}

// ---------------------------------------------------------------------
// incremental fact cache: a cached run must report exactly what a cold
// run reports

#[test]
fn cached_run_reports_identical_diagnostics_to_cold_run() {
    use emblookup_lint::engine::obs_name_registry;
    use emblookup_lint::workspace::Workspace;
    use std::fs;

    let root = std::env::temp_dir().join(format!("emblookup-lint-cache-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/kg/src")).expect("mkdir");
    fs::create_dir_all(root.join("crates/ann/src")).expect("mkdir");
    fs::write(
        root.join("Cargo.toml"),
        "[package]\nname = \"emblookup\"\n[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write");
    fs::create_dir_all(root.join("src")).expect("mkdir");
    fs::write(root.join("src/lib.rs"), "pub use emblookup_kg::describe;\n").expect("write");
    fs::write(
        root.join("crates/kg/Cargo.toml"),
        "[package]\nname = \"emblookup-kg\"\n",
    )
    .expect("write");
    fs::write(
        root.join("crates/kg/src/lib.rs"),
        "pub fn describe(n: u32) -> String { format!(\"node {n}\") }\n",
    )
    .expect("write");
    fs::write(
        root.join("crates/ann/Cargo.toml"),
        "[package]\nname = \"emblookup-ann\"\n[dependencies]\nemblookup-kg.workspace = true\n",
    )
    .expect("write");
    fs::write(
        root.join("crates/ann/src/flat.rs"),
        "// lint: hot-path\nuse emblookup_kg::describe;\n\
         // lint: allow(L005) fixture: stale on purpose\n\
         pub fn score(n: u32) -> usize { describe(n).len() }\n\
         pub fn dead(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .expect("write");
    // the concurrency-protocol facts (atomic decls/accesses, deadline
    // params/checks, write sites, Arc/static sharing roots) must
    // round-trip through the cache too: L011 + L012 + L013 findings
    fs::create_dir_all(root.join("crates/serve/src")).expect("mkdir");
    fs::write(
        root.join("crates/serve/Cargo.toml"),
        "[package]\nname = \"emblookup-serve\"\n",
    )
    .expect("write");
    fs::write(
        root.join("crates/serve/src/server.rs"),
        "pub struct St {\n\
         \x20   // lint: atomic(flag) fixture shutdown marker\n\
         \x20   stop: AtomicBool,\n\
         \x20   cursor: usize,\n\
         }\n\
         impl St {\n\
         \x20   pub fn raise(&self) { self.stop.store(true, Ordering::Relaxed); }\n\
         \x20   pub fn poke(&self) { self.cursor = 1; }\n\
         }\n\
         pub fn share(s: Arc<St>) {}\n\
         pub fn handle_lookup(req: u32) -> u32 { rx.recv(); req }\n",
    )
    .expect("write");

    let registry = obs_name_registry();
    let cold_ws = Workspace::load(&root, &registry, true).expect("cold load");
    assert_eq!(cold_ws.cache_hits, 0, "first run must be fully cold");
    let cold = cold_ws.check();

    let warm_ws = Workspace::load(&root, &registry, true).expect("warm load");
    assert!(warm_ws.cache_misses == 0, "second run must be fully cached");
    assert!(warm_ws.cache_hits > 0);
    let warm = warm_ws.check();

    // the fixture exercises raw per-file rules (L001), interprocedural
    // effects (L010), the concurrency-protocol family (L011–L013) and
    // the stale-allow audit — all must round-trip
    let key = |v: &emblookup_lint::engine::Violation| {
        (v.file.clone(), v.line, v.rule.clone(), v.message.clone())
    };
    assert!(!cold.violations.is_empty(), "fixture must produce diagnostics");
    assert!(!cold.warnings.is_empty(), "fixture must produce a stale-allow warning");
    for rule in ["L011", "L012", "L013"] {
        assert!(
            cold.violations.iter().any(|v| v.rule == rule),
            "fixture must produce a {rule} diagnostic: {:?}",
            cold.violations
        );
    }
    assert_eq!(
        cold.violations.iter().map(key).collect::<Vec<_>>(),
        warm.violations.iter().map(key).collect::<Vec<_>>()
    );
    assert_eq!(
        cold.warnings.iter().map(key).collect::<Vec<_>>(),
        warm.warnings.iter().map(key).collect::<Vec<_>>()
    );

    let _ = fs::remove_dir_all(&root);
}
