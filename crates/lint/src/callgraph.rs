//! Workspace call graph: per-function fact extraction and call
//! resolution — the substrate of the interprocedural rules
//! (L008–L010, [`crate::rules`]) and the effect lattice
//! ([`crate::effects`]).
//!
//! # Extraction ([`scan_fns`])
//!
//! A single forward pass over a file's significant tokens tracks the
//! `impl`/`trait`/`fn` context stack and records, per function:
//!
//! * **calls** — free calls (`helper(…)`), path calls
//!   (`emblookup_ann::flat::search(…)`, `Type::method(…)`) and method
//!   calls (`recv.method(…)`), each with the set of lock guards held at
//!   the call site;
//! * **effect seeds** — local sources of the effect bits in
//!   [`crate::effects`]: panic sites (the L001 set), allocation sites
//!   (the L002 set), lock acquisitions, blocking calls. A seed covered
//!   by a justified leaf allow (`allow(L001)` for panics,
//!   `allow(L002)` for allocations/locks) is *not* recorded: the allow
//!   asserts the effect is acceptable, and transitive callers inherit
//!   that acceptance;
//! * **lock acquisitions** — `x.lock()`, `lock(&x)` (the pool idiom)
//!   and `x.read()`/`x.write()` on names declared as `RwLock`, with
//!   guard lifetimes tracked by brace depth, statement end (temporary
//!   guards) and explicit `drop(g)`;
//! * **determinism sites** — `HashMap`/`HashSet` iteration whose order
//!   escapes (unsorted `collect`, float `fold`/`sum`, `for`-loop bodies
//!   pushing into ordered sinks or emitting metrics), plus float
//!   accumulation through atomic bit-casts.
//!
//! # Resolution ([`CallGraph::build`])
//!
//! Calls resolve to candidate nodes by name, narrowed by the L005
//! machinery: qualified `emblookup_x::…` paths go to that crate,
//! `Type::method` and bare names consult the file's
//! [`crate::parser::ImportMap`], `self.method()` resolves precisely via
//! the enclosing `impl` type, and unqualified method calls
//! over-approximate to *every* same-named method in the caller's crate
//! and its manifest dependency closure — except names in
//! [`STD_METHODS`], which are overwhelmingly `std` and would otherwise
//! drown the graph in false edges (they still resolve through the
//! precise paths). Operator overloads (`a + b`) are invisible to the
//! scanner; their effects must be seeded in named functions.

use crate::cargo::Manifest;
use crate::dataflow::{AtomicAccess, WriteSite, ATOMIC_METHODS, ORDERINGS};
use crate::engine::SourceFile;
use crate::facts::FileFacts;
use crate::lexer::TokenKind;
use std::collections::{BTreeSet, HashMap, HashSet};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallFact {
    /// Callee identifier (last path segment / method name).
    pub name: String,
    /// Leading path segment for path calls (`emblookup_ann::flat::f` →
    /// `emblookup_ann`; `Type::new` → `Type`); empty for bare and
    /// method calls.
    pub qual: String,
    /// Receiver identifier for method calls (`self`, a local, or the
    /// last field of a field chain); empty otherwise.
    pub recv: String,
    /// True for `.name(…)` method calls.
    pub is_method: bool,
    /// 1-based line of the call.
    pub line: u32,
    /// Lock keys (receiver idents) held at this call site.
    pub held: Vec<String>,
}

/// A local effect source (see the bit constants in [`crate::effects`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seed {
    /// Single effect bit.
    pub effect: u8,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description (`".unwrap()"`, "`format!`", …).
    pub what: String,
}

/// One lock acquisition, with the guards already held at that point —
/// the raw material of the L009 lock-order graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockAcq {
    /// File-local lock key: the receiver ident (`registry` for
    /// `self.registry.lock()`). Crate-qualified by the effect pass.
    pub key: String,
    /// 1-based line.
    pub line: u32,
    /// Keys already held when acquiring.
    pub held: Vec<String>,
}

/// One site where unordered-container iteration order (or thread-order
/// float accumulation) escapes — an L008 determinism hazard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetSite {
    /// 1-based line.
    pub line: u32,
    /// Description of the escaping order.
    pub what: String,
}

/// Everything the interprocedural passes need to know about one
/// function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFact {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, empty for free functions.
    pub self_ty: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the function sits in a test region.
    pub is_test: bool,
    /// Call sites in source order.
    pub calls: Vec<CallFact>,
    /// Local effect seeds.
    pub seeds: Vec<Seed>,
    /// Lock acquisitions.
    pub acquires: Vec<LockAcq>,
    /// Determinism hazards.
    pub det_sites: Vec<DetSite>,
    /// `(rule, decl line)` of allow directives consumed by seed
    /// suppression — the stale-allow audit must count these as used
    /// even though no central violation ever matches them.
    pub seed_allows: Vec<(String, u32)>,
    /// True for `&mut self` / `mut self` receivers (exclusive access:
    /// L013 never flags writes through them).
    pub mut_self: bool,
    /// True when the signature carries a deadline-bearing parameter or
    /// return (`DeadlineClock`, or a param named `clock`/`deadline`) —
    /// the L012 budget contract.
    pub deadline_param: bool,
    /// Lines of deadline checks/constructions in the body
    /// (`.expired()`, `.remaining_ms()`, `DeadlineClock::new`, …); a
    /// site at line L is deadline-dominated when a check precedes it.
    pub deadline_checks: Vec<u32>,
    /// Atomic access sites (method + `Ordering` arguments) — L011.
    pub atomic_accesses: Vec<AtomicAccess>,
    /// Assignments through `self` or a `static` root — L013.
    pub writes: Vec<WriteSite>,
}

/// Method names that resolve only through the precise paths
/// (`self.x()` with a matching impl, `Type::x(…)`), never by blind
/// name match across the dependency closure: they are ubiquitous `std`
/// vocabulary, and over-approximating them would connect every
/// container touch to every same-named workspace method.
pub const STD_METHODS: &[&str] = &[
    "all", "and_then", "any", "append", "as_bytes", "as_mut", "as_ref", "as_slice", "as_str",
    "binary_search", "binary_search_by", "borrow", "bytes", "chars", "checked_add", "checked_mul",
    "checked_sub", "chunks", "chunks_exact", "clear", "clone", "cloned", "cmp", "collect",
    "compare_exchange", "compare_exchange_weak", "contains", "contains_key", "copied", "count",
    "dedup", "drain", "drop", "ends_with", "entry", "enumerate", "eq", "err", "expect", "extend",
    "fetch_add", "fetch_max", "fetch_min", "fetch_or", "fetch_sub", "filter", "filter_map",
    "find", "find_map", "first", "flat_map", "flatten", "fmt", "fold", "for_each", "from_bits",
    "get", "get_mut", "get_or_insert_with", "hash", "insert", "into", "into_iter", "is_empty",
    "is_err", "is_finite", "is_nan", "is_none", "is_ok", "is_some", "iter", "iter_mut", "join",
    "keys", "last", "len", "lines", "load", "lock", "map", "map_err", "max", "max_by",
    "max_by_key", "min", "min_by", "min_by_key", "mul_add", "ne", "next", "notify_all",
    "notify_one", "ok", "or_default", "or_else", "or_insert", "or_insert_with", "parse",
    "partial_cmp", "position", "pop", "position_max", "powf", "powi", "product", "push",
    "push_str", "read", "recv", "recv_timeout", "remove", "replace", "reserve", "resize",
    "retain", "rev", "rposition", "saturating_add", "saturating_sub", "send", "skip",
    "skip_while", "sort", "sort_by", "sort_by_key", "sort_unstable", "sort_unstable_by",
    "sort_unstable_by_key", "split", "split_whitespace", "splitn", "starts_with", "step_by",
    "store", "strip_prefix", "strip_suffix", "sum", "swap", "take", "take_while", "to_bits",
    "to_lowercase", "to_owned", "to_string", "to_uppercase", "to_vec", "total_cmp", "trim",
    "try_into", "unwrap", "unwrap_or", "unwrap_or_default", "unwrap_or_else", "values",
    "values_mut", "wait", "wait_timeout", "windows", "wrapping_add", "write", "zip",
];

/// Pool fan-out entry points: a caller blocks until the parallel work
/// completes (the `POOLWAIT` effect).
pub const POOLWAIT_NAMES: &[&str] = &[
    "parallel_for",
    "try_parallel_for",
    "parallel_map",
    "try_parallel_map",
    "parallel_map_with",
    "try_parallel_map_with",
    "parallel_map_traced",
    "try_parallel_map_traced",
];

/// Pool submission entry points (the `SUBMITS` effect).
pub const SUBMIT_NAMES: &[&str] = &["submit", "try_submit"];

/// Method names that constitute a deadline check for L012: calling any
/// of these on a clock dominates the rest of the function body.
pub const DEADLINE_METHODS: &[&str] = &[
    "deterministic_remaining_ms",
    "elapsed_ms",
    "expired",
    "frac_remaining",
    "remaining_ms",
    "virtual_elapsed_ms",
];

const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain"];

const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "Some", "Ok", "Err", "assert",
    "debug_assert", "matches", "vec", "write", "writeln",
];

use crate::effects::{ALLOC, BLOCKS, LOCKS, PANICS};

struct Guard {
    binding: String,
    key: String,
    depth: i32,
    /// Temporary guard (no `let`): dies at the end of the statement.
    stmt_only: bool,
}

struct FnCtx {
    fact: FnFact,
    body_depth: i32,
    guards: Vec<Guard>,
    /// `(binding, det_sites index)` of unsorted collects pending
    /// sort-absorption resolution at function close.
    pending_collects: Vec<(String, DetSite)>,
    sorted_names: HashSet<String>,
    saw_float_bits: Option<u32>,
    saw_atomic_rmw: Option<u32>,
}

/// Scans one file into per-function facts. Test functions are included
/// (marked `is_test`) so callers can decide; the graph builder skips
/// them.
pub fn scan_fns(sf: &SourceFile) -> Vec<FnFact> {
    Scanner::new(sf).run()
}

struct Scanner<'a> {
    sf: &'a SourceFile,
    sig: Vec<usize>,
    rwlock_names: HashSet<String>,
    unordered: HashSet<String>,
    statics: HashSet<String>,
    out: Vec<FnFact>,
    fn_stack: Vec<FnCtx>,
    ty_stack: Vec<(String, i32)>,
    /// `(sig index of the opening brace, type name)` of impl/trait
    /// headers seen but not yet entered.
    pending_ty: Vec<(usize, String)>,
    depth: i32,
}

impl<'a> Scanner<'a> {
    fn new(sf: &'a SourceFile) -> Self {
        let toks = sf.tokens();
        let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let mut s = Scanner {
            sf,
            sig,
            rwlock_names: HashSet::new(),
            unordered: HashSet::new(),
            statics: HashSet::new(),
            out: Vec::new(),
            fn_stack: Vec::new(),
            ty_stack: Vec::new(),
            pending_ty: Vec::new(),
            depth: 0,
        };
        s.prescan_declared_names();
        s
    }

    fn txt(&self, s: usize) -> &str {
        match self.sig.get(s) {
            Some(&j) => &self.sf.tokens()[j].text,
            None => "",
        }
    }

    fn line(&self, s: usize) -> u32 {
        self.sig.get(s).map(|&j| self.sf.tokens()[j].line).unwrap_or(0)
    }

    fn is_ident(&self, s: usize) -> bool {
        self.sig.get(s).is_some_and(|&j| self.sf.tokens()[j].kind == TokenKind::Ident)
    }

    fn kind(&self, s: usize) -> Option<TokenKind> {
        self.sig.get(s).map(|&j| self.sf.tokens()[j].kind)
    }

    /// Collects idents declared as `RwLock` / `HashMap` / `HashSet`
    /// (`name: Ty<…>` annotations and `let name = Ty::new()` inits) in
    /// a backward walk bounded by expression-boundary tokens.
    fn prescan_declared_names(&mut self) {
        for s in 0..self.sig.len() {
            let t = self.txt(s);
            if t == "static" {
                // `static [mut] NAME :` — roots of L013's write check
                let n = if self.txt(s + 1) == "mut" { s + 2 } else { s + 1 };
                if self.is_ident(n) && self.txt(n + 1) == ":" {
                    self.statics.insert(self.txt(n).to_string());
                }
                continue;
            }
            let target = match t {
                "RwLock" => 0u8,
                "HashMap" | "HashSet" => 1u8,
                _ => continue,
            };
            let mut j = s;
            let mut name = None;
            for _ in 0..8 {
                if j == 0 {
                    break;
                }
                j -= 1;
                match self.txt(j) {
                    ")" | "(" | "{" | "}" | ";" | "," | "-" => break,
                    ":" | "=" => {
                        // `name: Ty` / `name = Ty::new()`; skip a second
                        // `:` of a `::` path (`x = foo::HashMap…` is not
                        // a declaration we model)
                        if j >= 1 && self.is_ident(j - 1) && self.txt(j.wrapping_sub(2)) != ":" {
                            name = Some(self.txt(j - 1).to_string());
                        }
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(n) = name {
                if target == 0 {
                    self.rwlock_names.insert(n);
                } else {
                    self.unordered.insert(n);
                }
            }
        }
    }

    fn held_keys(&self) -> Vec<String> {
        let Some(ctx) = self.fn_stack.last() else { return Vec::new() };
        let mut keys: Vec<String> = Vec::new();
        for g in &ctx.guards {
            if !keys.contains(&g.key) {
                keys.push(g.key.clone());
            }
        }
        keys
    }

    /// Start (sig index) of the receiver path ending at the ident just
    /// before the `.` of a method call at `s` (`self.a.b.method(` →
    /// index of `self`).
    fn path_start(&self, mut j: usize) -> usize {
        loop {
            if j >= 2 && self.txt(j - 1) == "." && self.is_ident(j - 2) {
                j -= 2;
            } else if j >= 3
                && self.txt(j - 1) == ":"
                && self.txt(j - 2) == ":"
                && self.is_ident(j - 3)
            {
                j -= 3;
            } else {
                return j;
            }
        }
    }

    /// `let [mut] b = <expr at j>` / `if let Ok(b) = <expr at j>` →
    /// the binding name, if the expression is directly let-bound.
    fn let_binding(&self, j: usize) -> String {
        if j < 2 || self.txt(j - 1) != "=" {
            return String::new();
        }
        let b = j - 2;
        if self.is_ident(b) && (self.txt(b.wrapping_sub(1)) == "let" || self.txt(b.wrapping_sub(1)) == "mut") {
            return self.txt(b).to_string();
        }
        // `Ok(g)` / `Some(g)` patterns
        if self.txt(b) == ")" && b >= 3 && self.is_ident(b - 1) && self.txt(b - 2) == "(" {
            return self.txt(b - 1).to_string();
        }
        String::new()
    }

    /// For an expression starting at sig index `j`, when the statement
    /// is `let [mut] name: Ty<…> = <expr>`, returns `(name, Ty)` — the
    /// binding and the head ident of its type annotation.
    fn let_annotation(&self, j: usize) -> Option<(String, String)> {
        if j == 0 || self.txt(j - 1) != "=" {
            return None;
        }
        let mut k = j - 1;
        for _ in 0..24 {
            if k == 0 {
                return None;
            }
            k -= 1;
            match self.txt(k) {
                "let" => {
                    let mut b = k + 1;
                    if self.txt(b) == "mut" {
                        b += 1;
                    }
                    if self.is_ident(b) && self.txt(b + 1) == ":" && self.is_ident(b + 2) {
                        return Some((self.txt(b).to_string(), self.txt(b + 2).to_string()));
                    }
                    return None;
                }
                ";" | "{" | "}" => return None,
                _ => {}
            }
        }
        None
    }

    /// Matching close of the group opened at sig index `open`.
    fn match_close(&self, open: usize, oc: &str, cc: &str) -> usize {
        let mut depth = 0i32;
        let mut k = open;
        while k < self.sig.len() {
            let t = self.txt(k);
            if t == oc {
                depth += 1;
            } else if t == cc {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            k += 1;
        }
        self.sig.len().saturating_sub(1)
    }

    fn seed(&mut self, effect: u8, line: u32, what: &str) {
        // a justified leaf allow (L001 for panics, L002 for
        // allocations/locks) also absolves transitive callers
        let gate = match effect {
            PANICS => "L001",
            ALLOC | LOCKS => "L002",
            _ => "",
        };
        if !gate.is_empty() && self.sf.allowed(gate, line) {
            let decl =
                self.sf.allow_decls().iter().find(|d| d.covers(gate, line)).map(|d| d.line);
            if let (Some(decl_line), Some(ctx)) = (decl, self.fn_stack.last_mut()) {
                let entry = (gate.to_string(), decl_line);
                if !ctx.fact.seed_allows.contains(&entry) {
                    ctx.fact.seed_allows.push(entry);
                }
            }
            return;
        }
        if let Some(ctx) = self.fn_stack.last_mut() {
            ctx.fact.seeds.push(Seed { effect, line, what: what.to_string() });
        }
    }

    /// True when the method chain continuing after the acquisition call
    /// (whose argument list closes at sig index `close`) consumes the
    /// guard: `.lock().unwrap_or_else(…).take()` binds the *taken
    /// value*, not the guard, which dies at the end of the statement.
    /// Only the poison adapters (`unwrap` / `expect` / `unwrap_or_else`)
    /// preserve the guard through a chain.
    fn chain_consumes_guard(&self, mut close: usize) -> bool {
        loop {
            if self.txt(close + 1) != "." || !self.is_ident(close + 2) {
                return false;
            }
            let m = self.txt(close + 2);
            if !matches!(m, "unwrap" | "expect" | "unwrap_or_else") || self.txt(close + 3) != "("
            {
                return true;
            }
            close = self.match_close(close + 3, "(", ")");
        }
    }

    fn acquire(&mut self, key: String, line: u32, binding: String, stmt_only: bool) {
        let held = self.held_keys();
        let depth = self.depth;
        if let Some(ctx) = self.fn_stack.last_mut() {
            ctx.fact.acquires.push(LockAcq { key: key.clone(), line, held });
            ctx.guards.push(Guard { binding, key, depth, stmt_only });
        }
    }

    fn close_fn(&mut self) {
        let Some(mut ctx) = self.fn_stack.pop() else { return };
        for (binding, site) in std::mem::take(&mut ctx.pending_collects) {
            if binding.is_empty() || !ctx.sorted_names.contains(&binding) {
                ctx.fact.det_sites.push(site);
            }
        }
        if let (Some(_), Some(line)) = (ctx.saw_float_bits, ctx.saw_atomic_rmw) {
            ctx.fact.det_sites.push(DetSite {
                line,
                what: "float accumulation through atomic bit-casts: merge order depends on \
                       thread interleaving"
                    .to_string(),
            });
        }
        self.out.push(ctx.fact);
    }

    fn run(mut self) -> Vec<FnFact> {
        let mut s = 0usize;
        while s < self.sig.len() {
            let t = self.txt(s).to_string();
            // enter a pending impl/trait body
            if let Some(pos) = self.pending_ty.iter().position(|&(b, _)| b == s) {
                let (_, ty) = self.pending_ty.remove(pos);
                self.ty_stack.push((ty, self.depth + 1));
            }
            match t.as_str() {
                "{" => self.depth += 1,
                "}" => {
                    self.depth -= 1;
                    while self.ty_stack.last().is_some_and(|&(_, d)| d > self.depth) {
                        self.ty_stack.pop();
                    }
                    while self.fn_stack.last().is_some_and(|c| c.body_depth > self.depth) {
                        self.close_fn();
                    }
                    if let Some(ctx) = self.fn_stack.last_mut() {
                        let d = self.depth;
                        ctx.guards.retain(|g| g.depth <= d);
                    }
                }
                ";" => {
                    if let Some(ctx) = self.fn_stack.last_mut() {
                        ctx.guards.retain(|g| !g.stmt_only);
                    }
                }
                "impl" | "trait" => {
                    if let Some((brace, ty)) = self.scan_type_header(s) {
                        self.pending_ty.push((brace, ty));
                    }
                }
                "fn" if self.is_ident(s + 1) => {
                    self.enter_fn(s);
                }
                "for" => {
                    self.scan_for_loop(s);
                }
                "=" => {
                    self.scan_assign(s);
                }
                _ => {
                    if self.kind(s) == Some(TokenKind::Ident) && !self.fn_stack.is_empty() {
                        self.scan_ident(s);
                    }
                }
            }
            s += 1;
        }
        while !self.fn_stack.is_empty() {
            self.close_fn();
        }
        self.out
    }

    /// Parses an `impl`/`trait` header at `s`, returning the sig index
    /// of its opening brace and the self-type name.
    fn scan_type_header(&self, s: usize) -> Option<(usize, String)> {
        let mut k = s + 1;
        let mut angle = 0i32;
        let mut first_ty = String::new();
        let mut for_ty = String::new();
        let mut after_for = false;
        let mut prev = String::new();
        while k < self.sig.len() {
            let t = self.txt(k);
            match t {
                "<" => angle += 1,
                ">" if prev != "-" && prev != "=" => angle -= 1,
                "{" if angle <= 0 => {
                    let ty = if !for_ty.is_empty() { for_ty } else { first_ty };
                    if ty.is_empty() {
                        return None;
                    }
                    return Some((k, ty));
                }
                ";" | "}" if angle <= 0 => return None,
                "for" if angle <= 0 => after_for = true,
                "where" if angle <= 0 => after_for = false,
                _ => {
                    if angle <= 0 && self.is_ident(k) && t != "dyn" && t != "mut" {
                        if after_for && for_ty.is_empty() {
                            for_ty = t.to_string();
                        } else if first_ty.is_empty() {
                            first_ty = t.to_string();
                        }
                    }
                }
            }
            prev = t.to_string();
            k += 1;
        }
        None
    }

    fn enter_fn(&mut self, s: usize) {
        let name = self.txt(s + 1).to_string();
        let line = self.line(s);
        let is_test = self.sig.get(s).is_some_and(|&j| self.sf.in_test(j));
        // find the body `{` (or `;` — bodyless trait decls get no node),
        // extracting receiver mutability and deadline-bearing params on
        // the way through the signature
        let mut k = s + 2;
        let mut paren = 0i32;
        let mut angle = 0i32;
        let mut prev = String::new();
        let mut mut_self = false;
        let mut deadline_param = false;
        while k < self.sig.len() {
            let t = self.txt(k);
            match t {
                "(" => paren += 1,
                ")" => paren -= 1,
                "<" => angle += 1,
                ">" if prev != "-" && prev != "=" => angle -= 1,
                "{" if paren <= 0 && angle <= 0 => break,
                ";" if paren <= 0 && angle <= 0 => return,
                "self" if prev == "mut" => mut_self = true,
                "DeadlineClock" => deadline_param = true,
                ":" if matches!(prev.as_str(), "clock" | "deadline") => deadline_param = true,
                _ => {}
            }
            prev = t.to_string();
            k += 1;
        }
        if k >= self.sig.len() {
            return;
        }
        let self_ty = self.ty_stack.last().map(|(t, _)| t.clone()).unwrap_or_default();
        self.fn_stack.push(FnCtx {
            fact: FnFact {
                name,
                self_ty,
                line,
                is_test,
                calls: Vec::new(),
                seeds: Vec::new(),
                acquires: Vec::new(),
                det_sites: Vec::new(),
                seed_allows: Vec::new(),
                mut_self,
                deadline_param,
                deadline_checks: Vec::new(),
                atomic_accesses: Vec::new(),
                writes: Vec::new(),
            },
            // the `{` itself is processed by the main loop, so the body
            // runs at depth + 1
            body_depth: self.depth + 1,
            guards: Vec::new(),
            pending_collects: Vec::new(),
            sorted_names: HashSet::new(),
            saw_float_bits: None,
            saw_atomic_rmw: None,
        });
    }

    /// Handles one identifier token inside a function body: call facts,
    /// effect seeds, guard bookkeeping, determinism sites.
    fn scan_ident(&mut self, s: usize) {
        let name = self.txt(s).to_string();
        let line = self.line(s);
        let next = self.txt(s + 1).to_string();
        let in_test = self.fn_stack.last().is_some_and(|c| c.fact.is_test);

        // float-atomic tracking (function-scoped flags)
        if name == "to_bits" || name == "from_bits" {
            if let Some(ctx) = self.fn_stack.last_mut() {
                ctx.saw_float_bits.get_or_insert(line);
            }
        }
        if name.starts_with("fetch_") || name.starts_with("compare_exchange") {
            if let Some(ctx) = self.fn_stack.last_mut() {
                ctx.saw_atomic_rmw.get_or_insert(line);
            }
        }

        // macro seeds
        if next == "!" {
            match name.as_str() {
                "panic" | "unreachable" | "todo" | "unimplemented" if !in_test => {
                    self.seed(PANICS, line, &format!("`{name}!`"));
                }
                "format" if !in_test => {
                    self.seed(ALLOC, line, "`format!` allocates");
                }
                _ => {}
            }
            return;
        }
        if next != "(" {
            // sort-absorption bookkeeping happens on `.sort*(` below
            return;
        }
        let prev = self.txt(s.wrapping_sub(1)).to_string();

        if prev == "." {
            self.scan_method_call(s, &name, line, in_test);
        } else if prev != "fn" && !CALL_KEYWORDS.contains(&name.as_str()) {
            self.scan_free_call(s, &name, line, in_test);
        }
    }

    fn scan_method_call(&mut self, s: usize, name: &str, line: u32, in_test: bool) {
        let recv = if self.is_ident(s.wrapping_sub(2)) {
            self.txt(s - 2).to_string()
        } else {
            String::new()
        };
        let held = self.held_keys();
        if let Some(ctx) = self.fn_stack.last_mut() {
            ctx.fact.calls.push(CallFact {
                name: name.to_string(),
                qual: String::new(),
                recv: recv.clone(),
                is_method: true,
                line,
                held,
            });
            if name.starts_with("sort") && !recv.is_empty() {
                ctx.sorted_names.insert(recv.clone());
            }
        }
        if in_test {
            return;
        }
        // atomic access sites: an ATOMIC_METHODS call with at least one
        // `Ordering` ident in its argument list (the ordering argument
        // is what distinguishes `AtomicU64::load` from, say, a cache's
        // `load`)
        if ATOMIC_METHODS.contains(&name) && !recv.is_empty() {
            let close = self.match_close(s + 1, "(", ")");
            let mut orderings: Vec<String> = Vec::new();
            for k in s + 2..close {
                if self.is_ident(k) && ORDERINGS.contains(&self.txt(k)) {
                    orderings.push(self.txt(k).to_string());
                }
            }
            if !orderings.is_empty() {
                if let Some(ctx) = self.fn_stack.last_mut() {
                    ctx.fact.atomic_accesses.push(AtomicAccess {
                        field: recv.clone(),
                        method: name.to_string(),
                        orderings,
                        line,
                    });
                }
            }
        }
        if DEADLINE_METHODS.contains(&name) {
            if let Some(ctx) = self.fn_stack.last_mut() {
                ctx.fact.deadline_checks.push(line);
            }
        }
        match name {
            "unwrap" | "expect" => self.seed(PANICS, line, &format!("`.{name}()` can panic")),
            "to_string" | "to_owned" => {
                self.seed(ALLOC, line, &format!("`.{name}()` allocates"))
            }
            "clone" if self.unordered.contains(recv.as_str()) => {}
            "lock" => {
                self.seed(LOCKS, line, "`.lock()` acquires a mutex");
                let consumed = self.chain_consumes_guard(self.match_close(s + 1, "(", ")"));
                let binding = if consumed {
                    String::new()
                } else {
                    self.let_binding(self.path_start(s.wrapping_sub(2)))
                };
                let stmt_only = binding.is_empty();
                let key = if recv.is_empty() { "anon".to_string() } else { recv.clone() };
                self.acquire(key, line, binding, stmt_only);
            }
            "read" | "write" if self.rwlock_names.contains(recv.as_str()) => {
                self.seed(LOCKS, line, &format!("`.{name}()` acquires an RwLock"));
                let consumed = self.chain_consumes_guard(self.match_close(s + 1, "(", ")"));
                let binding = if consumed {
                    String::new()
                } else {
                    self.let_binding(self.path_start(s.wrapping_sub(2)))
                };
                let stmt_only = binding.is_empty();
                self.acquire(recv.clone(), line, binding, stmt_only);
            }
            "recv" | "recv_timeout" => {
                self.seed(BLOCKS, line, &format!("`.{name}()` blocks on a channel"))
            }
            "join" if self.txt(s + 2) == ")" => {
                self.seed(BLOCKS, line, "`.join()` blocks until completion")
            }
            _ => {}
        }
        // determinism: unordered-container iteration escaping in a chain
        if ITER_METHODS.contains(&name) && self.unordered.contains(recv.as_str()) && !in_test {
            self.scan_iter_chain(s, &recv, line);
        }
    }

    fn scan_free_call(&mut self, s: usize, name: &str, line: u32, in_test: bool) {
        // full path: walk back over `seg::…::name`
        let start = self.path_start(s);
        let qual = if start < s { self.txt(start).to_string() } else { String::new() };
        let held = self.held_keys();
        if let Some(ctx) = self.fn_stack.last_mut() {
            ctx.fact.calls.push(CallFact {
                name: name.to_string(),
                qual: qual.clone(),
                recv: String::new(),
                is_method: false,
                line,
                held,
            });
        }
        if in_test {
            return;
        }
        // constructing a deadline clock (`DeadlineClock::new(…)`,
        // `DeadlineClock::with_virtual_ns(…)`) dominates like a check
        if qual == "DeadlineClock" {
            if let Some(ctx) = self.fn_stack.last_mut() {
                ctx.fact.deadline_checks.push(line);
            }
        }
        match name {
            "sleep" => self.seed(BLOCKS, line, "`sleep` blocks the thread"),
            "new" if qual == "Box" => self.seed(ALLOC, line, "`Box::new` allocates"),
            "from" if qual == "String" => self.seed(ALLOC, line, "`String::from` allocates"),
            // explicit guard release: `drop(g)`
            "drop" if self.is_ident(s + 2) && self.txt(s + 3) == ")" => {
                let g = self.txt(s + 2).to_string();
                if let Some(ctx) = self.fn_stack.last_mut() {
                    ctx.guards.retain(|x| x.binding != g);
                }
            }
            "lock" if qual.is_empty() || qual == "self" || qual == "crate" => {
                // the pool idiom: `let g = lock(&self.injector);`
                self.seed(LOCKS, line, "`lock(…)` acquires a mutex");
                let close = self.match_close(s + 1, "(", ")");
                let mut key = String::new();
                for k in s + 2..close {
                    if self.is_ident(k) {
                        key = self.txt(k).to_string();
                    }
                }
                if key.is_empty() {
                    key = "anon".to_string();
                }
                let consumed = self.chain_consumes_guard(close);
                let binding = if consumed {
                    String::new()
                } else {
                    self.let_binding(self.path_start(s))
                };
                let stmt_only = binding.is_empty();
                self.acquire(key, line, binding, stmt_only);
            }
            _ => {}
        }
    }

    /// Records assignments whose target path roots at `self` or a
    /// `static` — the write sites L013 checks against guard regions.
    /// Comparison/`=>`/`let`-binding/deref `=` tokens are excluded;
    /// compound assignments (`+=` …) count as writes.
    fn scan_assign(&mut self, s: usize) {
        if self.fn_stack.is_empty()
            || self.fn_stack.last().is_some_and(|c| c.fact.is_test)
        {
            return;
        }
        // `==` / `=>` (and the first `=` never follows `=`,`!`,`<`,`>`)
        if matches!(self.txt(s + 1), "=" | ">") {
            return;
        }
        let prev = self.txt(s.wrapping_sub(1)).to_string();
        if matches!(prev.as_str(), "=" | "!" | "<" | ">") {
            return;
        }
        // compound assignment: the LHS ends one token earlier
        let e = if matches!(prev.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^") {
            s.wrapping_sub(2)
        } else {
            s.wrapping_sub(1)
        };
        if !self.is_ident(e) {
            return;
        }
        let start = self.path_start(e);
        // bindings, type-ascribed defaults, and deref writes (`*g = …`,
        // guard-mediated by construction) are not shared-state writes
        if matches!(self.txt(start.wrapping_sub(1)), "let" | "mut" | ":" | "*" | ".") {
            return;
        }
        let root = self.txt(start).to_string();
        let is_self_field = root == "self" && start < e;
        if !is_self_field && !self.statics.contains(&root) {
            return;
        }
        let mut target = String::new();
        for k in start..=e {
            target.push_str(self.txt(k));
        }
        let line = self.line(s);
        let held = self.held_keys();
        if let Some(ctx) = self.fn_stack.last_mut() {
            ctx.fact.writes.push(WriteSite { target, line, held });
        }
    }

    /// Classifies the method chain hanging off an unordered-container
    /// iteration at `s` (the iter-method ident).
    fn scan_iter_chain(&mut self, s: usize, recv: &str, line: u32) {
        let mut k = self.match_close(s + 1, "(", ")");
        let chain_start = s;
        let mut methods: Vec<(String, usize)> = Vec::new(); // (name, sig idx)
        loop {
            if self.txt(k + 1) == "." && self.is_ident(k + 2) && self.txt(k + 3) == "(" {
                methods.push((self.txt(k + 2).to_string(), k + 2));
                k = self.match_close(k + 3, "(", ")");
            } else if self.txt(k + 1) == "." && self.is_ident(k + 2) && self.txt(k + 3) == ":" {
                // turbofish: `.collect::<T>()`
                methods.push((self.txt(k + 2).to_string(), k + 2));
                let mut j = k + 3;
                while j < self.sig.len() && self.txt(j) != "(" {
                    j += 1;
                }
                k = self.match_close(j, "(", ")");
            } else {
                break;
            }
        }
        let chain_end = k;
        let float_evidence = (chain_start..=chain_end).any(|j| {
            let t = self.txt(j);
            (self.kind(j) == Some(TokenKind::Number)
                && (t.contains('.') || t.ends_with("f32") || t.ends_with("f64")))
                || ((t == "f32" || t == "f64") && {
                    let p = self.txt(j.wrapping_sub(1));
                    p == "as" || p == "<"
                })
        });
        for (m, idx) in &methods {
            match m.as_str() {
                "collect" => {
                    // `.collect::<HashMap…>()` and friends keep the data
                    // unordered-by-design; order does not escape
                    let tf = self.txt(idx + 2);
                    let tf2 = self.txt(idx + 4);
                    let target = if tf == ":" { tf2 } else { "" };
                    if matches!(target, "HashMap" | "HashSet" | "BTreeMap" | "BTreeSet") {
                        return;
                    }
                    let expr_start = self.path_start(chain_start.wrapping_sub(2));
                    let mut binding = self.let_binding(expr_start);
                    // `let x: HashMap<…> = ….collect()` — annotated
                    // target instead of a turbofish
                    if let Some((name, ty)) = self.let_annotation(expr_start) {
                        if matches!(
                            ty.as_str(),
                            "HashMap" | "HashSet" | "BTreeMap" | "BTreeSet"
                        ) {
                            return;
                        }
                        if binding.is_empty() {
                            binding = name;
                        }
                    }
                    let site = DetSite {
                        line,
                        what: format!(
                            "iteration order of `{recv}` (HashMap/HashSet) escapes into a \
                             collected sequence; sort the result or use a BTree container"
                        ),
                    };
                    if let Some(ctx) = self.fn_stack.last_mut() {
                        ctx.pending_collects.push((binding, site));
                    }
                    return;
                }
                "sum" | "fold" => {
                    if float_evidence {
                        let site = DetSite {
                            line,
                            what: format!(
                                "float `{m}` over `{recv}` (HashMap/HashSet) iteration: \
                                 accumulation order is nondeterministic"
                            ),
                        };
                        if let Some(ctx) = self.fn_stack.last_mut() {
                            ctx.fact.det_sites.push(site);
                        }
                    }
                    return;
                }
                "for_each" => {
                    let open = self.match_close(*idx + 1, "(", ")");
                    let body_has_sink = (*idx..=open).any(|j| {
                        matches!(self.txt(j), "push" | "extend" | "counter" | "gauge" | "histogram")
                    });
                    if body_has_sink {
                        let site = DetSite {
                            line,
                            what: format!(
                                "`for_each` over `{recv}` (HashMap/HashSet) feeds an \
                                 order-sensitive sink"
                            ),
                        };
                        if let Some(ctx) = self.fn_stack.last_mut() {
                            ctx.fact.det_sites.push(site);
                        }
                    }
                    return;
                }
                // order-insensitive terminals
                "count" | "len" | "max" | "min" | "all" | "any" | "max_by_key" | "min_by_key"
                | "max_by" | "min_by" | "find" | "position" => return,
                _ => {}
            }
        }
    }

    /// `for pat in [&][mut] path { body }` over an unordered container.
    fn scan_for_loop(&mut self, s: usize) {
        if self.fn_stack.is_empty() || self.txt(s.wrapping_sub(1)) == "." {
            return;
        }
        if self.fn_stack.last().is_some_and(|c| c.fact.is_test) {
            return;
        }
        // find `in` at paren depth 0 within a short window
        let mut k = s + 1;
        let mut paren = 0i32;
        let mut found_in = None;
        while k < self.sig.len() && k < s + 24 {
            match self.txt(k) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" => break,
                "in" if paren <= 0 => {
                    found_in = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(mut j) = found_in else { return };
        j += 1;
        while matches!(self.txt(j), "&" | "mut") {
            j += 1;
        }
        // path idents: `m` / `self.counts` — the loop must iterate the
        // container directly (method chains are handled by the chain
        // scanner)
        let mut last = String::new();
        while self.is_ident(j) {
            last = self.txt(j).to_string();
            if self.txt(j + 1) == "." && self.is_ident(j + 2) && self.txt(j + 3) != "(" {
                j += 2;
            } else {
                j += 1;
                break;
            }
        }
        if last.is_empty() || !self.unordered.contains(&last) || self.txt(j) != "{" {
            return;
        }
        let line = self.line(s);
        let close = self.match_close(j, "{", "}");
        let mut sink = None;
        for b in j..=close {
            if self.txt(b + 1) == "(" && self.txt(b.wrapping_sub(1)) == "." {
                match self.txt(b) {
                    "push" | "extend" => {
                        sink = Some("builds an ordered sequence (`push`/`extend`)");
                        break;
                    }
                    "counter" | "gauge" | "histogram" | "record" | "observe" => {
                        sink = Some("emits metrics/traces in iteration order");
                        break;
                    }
                    _ => {}
                }
            }
            if self.txt(b) == "return" {
                sink = Some("returns early based on iteration order");
                break;
            }
        }
        if let Some(why) = sink {
            let site = DetSite {
                line,
                what: format!(
                    "`for` over `{last}` (HashMap/HashSet) {why}; iterate a sorted view instead"
                ),
            };
            if let Some(ctx) = self.fn_stack.last_mut() {
                ctx.fact.det_sites.push(site);
            }
        }
    }
}

/// One function in the workspace call graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Owning package (dash form).
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// True when the file carries `// lint: hot-path`.
    pub hot: bool,
    /// The function's extracted facts.
    pub fact: FnFact,
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// All non-test library functions.
    pub nodes: Vec<Node>,
    /// `resolved[node][call_index]` → candidate callee node indices.
    pub resolved: Vec<Vec<Vec<usize>>>,
}

fn dash(underscore: &str) -> String {
    underscore.replace('_', "-")
}

impl CallGraph {
    /// Builds the graph over extracted file facts, using the manifests'
    /// dependency edges to bound method over-approximation.
    pub fn build(manifests: &[Manifest], files: &[FileFacts]) -> CallGraph {
        // transitive (non-dev) dependency closure per workspace crate
        let member: HashSet<&str> = manifests.iter().map(|m| m.name.as_str()).collect();
        let direct: HashMap<&str, Vec<&str>> = manifests
            .iter()
            .map(|m| {
                let deps: Vec<&str> = m
                    .deps
                    .iter()
                    .filter(|d| !d.dev && member.contains(d.name.as_str()))
                    .map(|d| d.name.as_str())
                    .collect();
                (m.name.as_str(), deps)
            })
            .collect();
        let mut closure: HashMap<String, BTreeSet<String>> = HashMap::new();
        for m in manifests {
            let mut seen: BTreeSet<String> = BTreeSet::new();
            let mut stack = vec![m.name.as_str()];
            while let Some(k) = stack.pop() {
                if !seen.insert(k.to_string()) {
                    continue;
                }
                for d in direct.get(k).into_iter().flatten() {
                    stack.push(d);
                }
            }
            closure.insert(m.name.clone(), seen);
        }

        let mut nodes = Vec::new();
        let mut file_of_node: Vec<usize> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            if f.krate.is_empty() || f.class != crate::engine::FileClass::Lib {
                continue;
            }
            for fact in &f.fns {
                if fact.is_test {
                    continue;
                }
                nodes.push(Node {
                    krate: f.krate.clone(),
                    file: f.rel.clone(),
                    hot: f.hot_path,
                    fact: fact.clone(),
                });
                file_of_node.push(fi);
            }
        }

        let mut by_free: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut by_method: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut by_ty_method: HashMap<(String, String, String), Vec<usize>> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if n.fact.self_ty.is_empty() {
                by_free.entry((n.krate.clone(), n.fact.name.clone())).or_default().push(i);
            } else {
                by_method.entry((n.krate.clone(), n.fact.name.clone())).or_default().push(i);
                by_ty_method
                    .entry((n.krate.clone(), n.fact.self_ty.clone(), n.fact.name.clone()))
                    .or_default()
                    .push(i);
            }
        }

        let empty_closure = BTreeSet::new();
        let mut resolved: Vec<Vec<Vec<usize>>> = Vec::with_capacity(nodes.len());
        for (i, n) in nodes.iter().enumerate() {
            let f = &files[file_of_node[i]];
            let deps = closure.get(&n.krate).unwrap_or(&empty_closure);
            let mut per_call = Vec::with_capacity(n.fact.calls.len());
            for c in &n.fact.calls {
                per_call.push(resolve_call(
                    c,
                    n,
                    f,
                    deps,
                    &by_free,
                    &by_method,
                    &by_ty_method,
                ));
            }
            resolved.push(per_call);
        }
        CallGraph { nodes, resolved }
    }
}

#[allow(clippy::too_many_arguments)] // internal resolver over prebuilt index maps
fn resolve_call(
    c: &CallFact,
    n: &Node,
    f: &FileFacts,
    deps: &BTreeSet<String>,
    by_free: &HashMap<(String, String), Vec<usize>>,
    by_method: &HashMap<(String, String), Vec<usize>>,
    by_ty_method: &HashMap<(String, String, String), Vec<usize>>,
) -> Vec<usize> {
    let free = |k: &str| -> Vec<usize> {
        by_free.get(&(k.to_string(), c.name.clone())).cloned().unwrap_or_default()
    };
    let methods = |k: &str| -> Vec<usize> {
        by_method.get(&(k.to_string(), c.name.clone())).cloned().unwrap_or_default()
    };
    let ty_methods = |k: &str, ty: &str| -> Vec<usize> {
        by_ty_method
            .get(&(k.to_string(), ty.to_string(), c.name.clone()))
            .cloned()
            .unwrap_or_default()
    };

    if !c.qual.is_empty() {
        let q = c.qual.as_str();
        if q.starts_with("emblookup_") || q == "rand" {
            let k = dash(q);
            let mut out = free(&k);
            if out.is_empty() {
                out = methods(&k);
            }
            return out;
        }
        if matches!(q, "self" | "crate" | "super") {
            let mut out = free(&n.krate);
            if out.is_empty() {
                out = methods(&n.krate);
            }
            return out;
        }
        if q.chars().next().is_some_and(|ch| ch.is_uppercase()) {
            // `Type::method` — imports narrow the crate, else the
            // caller's crate, else the precise match anywhere in the
            // dependency closure
            if let Some(kr) = f.imports.names.get(q) {
                let k = dash(kr);
                let mut out = ty_methods(&k, q);
                if out.is_empty() {
                    out = methods(&k);
                }
                return out;
            }
            let own = ty_methods(&n.krate, q);
            if !own.is_empty() {
                return own;
            }
            let mut out = Vec::new();
            for k in deps {
                out.extend(ty_methods(k, q));
            }
            return out;
        }
        // lowercase module qualifier: `flat::search(…)`
        if let Some(kr) = f.imports.names.get(q) {
            let k = dash(kr);
            let mut out = free(&k);
            if out.is_empty() {
                out = methods(&k);
            }
            return out;
        }
        return free(&n.krate);
    }

    if c.is_method {
        // `self.method()` resolves precisely through the enclosing impl
        if c.recv == "self" && !n.fact.self_ty.is_empty() {
            let own = ty_methods(&n.krate, &n.fact.self_ty);
            if !own.is_empty() {
                return own;
            }
        }
        // conservative over-approximation: any same-named method in the
        // caller's crate or its dependency closure — except ubiquitous
        // std vocabulary
        if STD_METHODS.contains(&c.name.as_str()) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for k in deps {
            out.extend(methods(k));
        }
        out.sort_unstable();
        out.dedup();
        return out;
    }

    // bare free call: same-crate free fns, then `use`-imported names,
    // then glob imports
    let own = free(&n.krate);
    if !own.is_empty() {
        return own;
    }
    if let Some(kr) = f.imports.names.get(&c.name) {
        return free(&dash(kr));
    }
    for g in &f.imports.globs {
        let out = free(&dash(g));
        if !out.is_empty() {
            return out;
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<FnFact> {
        scan_fns(&SourceFile::parse("crates/demo/src/lib.rs", src))
    }

    #[test]
    fn free_method_and_path_calls_are_recorded() {
        let src = r#"
            pub fn a() { helper(); emblookup_kg::load("x"); v.score(3); Pool::global(); }
        "#;
        let f = fns(src);
        assert_eq!(f.len(), 1);
        let calls: Vec<(&str, &str, bool)> = f[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.qual.as_str(), c.is_method))
            .collect();
        assert!(calls.contains(&("helper", "", false)));
        assert!(calls.contains(&("load", "emblookup_kg", false)));
        assert!(calls.contains(&("score", "", true)));
        assert!(calls.contains(&("global", "Pool", false)));
    }

    #[test]
    fn impl_context_sets_self_ty() {
        let src = r#"
            pub struct Index;
            impl Index {
                pub fn search(&self) { self.score(); }
            }
            impl Scorer for Index {
                fn rank(&self) {}
            }
        "#;
        let f = fns(src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.self_ty == "Index"), "{f:?}");
    }

    #[test]
    fn seeds_cover_panics_allocs_locks_blocks() {
        let src = r#"
            pub fn f(m: &std::sync::Mutex<u32>) {
                let v = Some(1).unwrap();
                let s = format!("x{v}");
                let b = Box::new(3);
                let g = m.lock();
                std::thread::sleep(d);
            }
        "#;
        let f = fns(src);
        let bits: Vec<u8> = f[0].seeds.iter().map(|s| s.effect).collect();
        assert!(bits.contains(&PANICS));
        assert!(bits.contains(&ALLOC));
        assert!(bits.contains(&LOCKS));
        assert!(bits.contains(&BLOCKS));
    }

    #[test]
    fn leaf_allow_suppresses_the_seed() {
        let src = r#"
            pub fn f() {
                // lint: allow(L001) in-bounds by construction
                let v = xs.get(0).unwrap();
            }
        "#;
        let f = fns(src);
        assert!(f[0].seeds.iter().all(|s| s.effect != PANICS), "{:?}", f[0].seeds);
    }

    #[test]
    fn guard_is_held_across_calls_until_scope_or_drop() {
        let src = r#"
            pub fn f(&self) {
                let g = self.state.lock();
                self.refresh();
                drop(g);
                self.publish();
            }
        "#;
        let f = fns(src);
        let refresh = f[0].calls.iter().find(|c| c.name == "refresh").unwrap();
        assert_eq!(refresh.held, vec!["state".to_string()]);
        let publish = f[0].calls.iter().find(|c| c.name == "publish").unwrap();
        assert!(publish.held.is_empty(), "drop(g) must release the guard");
    }

    #[test]
    fn nested_acquisition_records_held_set() {
        let src = r#"
            pub fn f(&self) {
                let a = self.first.lock();
                {
                    let b = self.second.lock();
                }
                let c = self.third.lock();
            }
        "#;
        let f = fns(src);
        let acq: Vec<(&str, Vec<String>)> =
            f[0].acquires.iter().map(|a| (a.key.as_str(), a.held.clone())).collect();
        assert_eq!(acq[0], ("first", vec![]));
        assert_eq!(acq[1], ("second", vec!["first".to_string()]));
        // the inner scope released `second`; only `first` is held
        assert_eq!(acq[2], ("third", vec!["first".to_string()]));
    }

    #[test]
    fn unordered_collect_without_sort_is_a_det_site() {
        let src = r#"
            use std::collections::HashMap;
            pub fn ids(counts: &HashMap<u32, u32>) -> Vec<u32> {
                counts.keys().copied().collect()
            }
        "#;
        let f = fns(src);
        assert_eq!(f[0].det_sites.len(), 1, "{:?}", f[0].det_sites);
    }

    #[test]
    fn sorted_collect_is_absorbed() {
        let src = r#"
            use std::collections::HashMap;
            pub fn ids(counts: &HashMap<u32, u32>) -> Vec<u32> {
                let mut v: Vec<u32> = Vec::new();
                let mut ks = counts.keys().copied().collect();
                ks.sort_unstable();
                ks
            }
        "#;
        let f = fns(src);
        assert!(f[0].det_sites.is_empty(), "{:?}", f[0].det_sites);
    }

    #[test]
    fn collect_back_into_map_is_absorbed() {
        let src = r#"
            use std::collections::{HashMap, HashSet};
            pub fn invert(m: &HashMap<u32, u32>) -> HashSet<u32> {
                m.values().copied().collect::<HashSet<u32>>()
            }
        "#;
        let f = fns(src);
        assert!(f[0].det_sites.is_empty(), "{:?}", f[0].det_sites);
    }

    #[test]
    fn float_sum_over_unordered_is_a_det_site() {
        let src = r#"
            use std::collections::HashMap;
            pub fn total(w: &HashMap<u32, f32>) -> f32 {
                w.values().map(|x| *x as f64).sum()
            }
        "#;
        let f = fns(src);
        assert_eq!(f[0].det_sites.len(), 1, "{:?}", f[0].det_sites);
    }

    #[test]
    fn for_loop_push_over_unordered_is_a_det_site() {
        let src = r#"
            use std::collections::HashSet;
            pub fn gather(seen: &HashSet<u32>) -> Vec<u32> {
                let mut out = Vec::new();
                for s in seen {
                    out.push(*s);
                }
                out
            }
        "#;
        let f = fns(src);
        assert_eq!(f[0].det_sites.len(), 1, "{:?}", f[0].det_sites);
    }

    #[test]
    fn int_count_over_unordered_is_clean() {
        let src = r#"
            use std::collections::HashMap;
            pub fn n(m: &HashMap<u32, u32>) -> usize { m.keys().count() }
            pub fn s(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }
        "#;
        let f = fns(src);
        assert!(f.iter().all(|x| x.det_sites.is_empty()), "{f:?}");
    }

    #[test]
    fn atomic_accesses_record_method_and_orderings() {
        let src = r#"
            pub struct Ring;
            impl Ring {
                pub fn record(&self) {
                    self.head.fetch_add(1, Ordering::Relaxed);
                    let h = self.head.load(Ordering::Acquire);
                    self.slots.compare_exchange(h, h + 1, Ordering::Acquire, Ordering::Relaxed);
                    self.cache.load(key);
                }
            }
        "#;
        let f = fns(src);
        let acc = &f[0].atomic_accesses;
        assert_eq!(acc.len(), 3, "{acc:?}");
        assert_eq!(acc[0].field, "head");
        assert_eq!(acc[0].method, "fetch_add");
        assert_eq!(acc[0].orderings, vec!["Relaxed".to_string()]);
        assert_eq!(acc[1].orderings, vec!["Acquire".to_string()]);
        assert_eq!(
            acc[2].orderings,
            vec!["Acquire".to_string(), "Relaxed".to_string()],
            "CAS keeps success then failure order"
        );
    }

    #[test]
    fn deadline_params_and_checks_are_extracted() {
        let src = r#"
            pub fn stage(clock: &DeadlineClock) -> bool { clock.expired() }
            pub fn named(deadline: u64) -> u64 { deadline }
            pub fn fresh() { let c = DeadlineClock::new(50, false); }
            pub fn bare(x: u32) -> u32 { x }
        "#;
        let f = fns(src);
        assert!(f[0].deadline_param);
        assert_eq!(f[0].deadline_checks.len(), 1);
        assert!(f[1].deadline_param, "a `deadline:` param counts");
        assert!(!f[2].deadline_param);
        assert_eq!(f[2].deadline_checks.len(), 1, "construction dominates like a check");
        assert!(!f[3].deadline_param);
        assert!(f[3].deadline_checks.is_empty());
    }

    #[test]
    fn mut_self_receivers_are_marked() {
        let src = r#"
            pub struct S;
            impl S {
                pub fn shared(&self) {}
                pub fn excl(&mut self) {}
                pub fn own(mut self) {}
            }
        "#;
        let f = fns(src);
        assert!(!f[0].mut_self);
        assert!(f[1].mut_self);
        assert!(f[2].mut_self);
    }

    #[test]
    fn self_and_static_writes_are_recorded_with_guards() {
        let src = r#"
            static mut SCRATCH: usize = 0;
            pub struct S;
            impl S {
                pub fn poke(&self) {
                    self.cursor = 1;
                    self.stats.total += 2;
                    let local = 3;
                    local = 4;
                }
                pub fn locked(&self) {
                    let g = self.state.lock();
                    self.cursor = 5;
                }
                pub fn raw() {
                    unsafe { SCRATCH = 7; }
                }
            }
            pub fn cmp(a: u32) -> bool { a == 1 }
        "#;
        let f = fns(src);
        let poke: Vec<&str> = f[0].writes.iter().map(|w| w.target.as_str()).collect();
        assert_eq!(poke, vec!["self.cursor", "self.stats.total"], "{:?}", f[0].writes);
        assert_eq!(f[1].writes.len(), 1);
        assert_eq!(f[1].writes[0].held, vec!["state".to_string()]);
        assert_eq!(f[2].writes.len(), 1);
        assert_eq!(f[2].writes[0].target, "SCRATCH");
        assert!(f[3].writes.is_empty(), "comparisons are not writes");
    }

    #[test]
    fn test_fns_are_marked() {
        let src = r#"
            pub fn lib() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); }
            }
        "#;
        let f = fns(src);
        assert_eq!(f.len(), 2);
        assert!(!f[0].is_test);
        assert!(f[1].is_test);
        assert!(f[1].seeds.is_empty(), "test fns seed no effects");
    }
}
