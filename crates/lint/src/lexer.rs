//! A minimal Rust lexer — just enough syntax awareness for reliable
//! pattern lints: it distinguishes identifiers from the inside of
//! string/char literals and comments, so `r#"x.unwrap()"#` never fires
//! L001 and `'a` lifetimes never parse as unterminated chars.
//!
//! The lexer is deliberately permissive: unterminated constructs are
//! consumed to end-of-file instead of erroring, because a lint tool must
//! keep producing diagnostics for the rest of the workspace even when one
//! file is mid-edit.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `Mutex`), including raw
    /// identifiers (`r#type`, stored without the `r#` prefix).
    Ident,
    /// Lifetime such as `'a` or `'static` (without a closing quote).
    Lifetime,
    /// Character literal, including byte chars (`'x'`, `b'\n'`).
    Char,
    /// Ordinary string literal, including byte/C strings (`"…"`, `b"…"`).
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStr,
    /// Numeric literal (`42`, `1_000`, `0x1F`, `1.5e-3`).
    Number,
    /// Any single punctuation character (`.`, `!`, `(`, `{`, …).
    Punct,
    /// `// …` comment (doc comments included), text without the newline.
    LineComment,
    /// `/* … */` comment, possibly nested.
    BlockComment,
}

/// One lexed token with its raw source text and 1-based start line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Raw source slice (quotes/comment markers included).
    pub text: String,
    /// 1-based line where the token starts.
    pub line: u32,
    /// Char offset (not bytes) of the token's first character in the
    /// source — the index into `src.chars()`. Drives the `--write`
    /// rewriter, which splices on a char vector.
    pub offset: usize,
}

impl Token {
    /// For string tokens: the literal's value with quotes/hashes stripped
    /// and common escapes (`\\`, `\"`, `\n`, `\t`, `\r`, `\0`) decoded.
    /// Returns `None` for non-string tokens.
    pub fn str_value(&self) -> Option<String> {
        match self.kind {
            TokenKind::Str => {
                let inner = strip_quoted(&self.text)?;
                Some(unescape(inner))
            }
            TokenKind::RawStr => {
                let t = self.text.trim_start_matches(['b', 'r', 'c']);
                let hashes = t.chars().take_while(|&c| c == '#').count();
                let t = t.get(hashes..)?.strip_prefix('"')?;
                let t = t.strip_suffix(&"#".repeat(hashes)).unwrap_or(t);
                Some(t.strip_suffix('"').unwrap_or(t).to_string())
            }
            _ => None,
        }
    }

    /// True for both comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Strips a leading prefix (`b`/`c`) and the surrounding double quotes.
fn strip_quoted(text: &str) -> Option<&str> {
    let t = text.trim_start_matches(['b', 'c']);
    let t = t.strip_prefix('"')?;
    Some(t.strip_suffix('"').unwrap_or(t))
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some(other) => out.push(other), // \\, \", \' and anything exotic
            None => out.push('\\'),
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    /// Consumes while `pred` holds, appending to `buf`.
    fn take_while(&mut self, buf: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            buf.push(c);
            self.bump();
        }
    }

    /// Consumes a double-quoted body (opening quote already consumed into
    /// `buf`), honoring backslash escapes; stops after the closing quote.
    fn quoted_body(&mut self, buf: &mut String) {
        while let Some(c) = self.bump() {
            buf.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        buf.push(esc);
                    }
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body: `buf` holds the prefix up to and
    /// including the opening quote; `hashes` is the `#` count.
    fn raw_body(&mut self, buf: &mut String, hashes: usize) {
        while let Some(c) = self.bump() {
            buf.push(c);
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    buf.push('#');
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    return;
                }
            }
        }
    }

    /// Consumes a char-literal body (opening `'` already in `buf`).
    fn char_body(&mut self, buf: &mut String) {
        while let Some(c) = self.bump() {
            buf.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        buf.push(esc);
                    }
                }
                '\'' => return,
                _ => {}
            }
        }
    }
}

/// Lexes `src` into tokens. Never fails: malformed trailing constructs are
/// consumed to end-of-file.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer { chars: src.chars().collect(), pos: 0, line: 1 };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        let line = lx.line;
        let offset = lx.pos;
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let mut text = String::new();
        // comments
        if c == '/' && lx.peek(1) == Some('/') {
            lx.take_while(&mut text, |c| c != '\n');
            out.push(Token { kind: TokenKind::LineComment, text, line, offset });
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            text.push('/');
            text.push('*');
            lx.bump();
            lx.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match lx.bump() {
                    Some('*') if lx.peek(0) == Some('/') => {
                        text.push_str("*/");
                        lx.bump();
                        depth -= 1;
                    }
                    Some('/') if lx.peek(0) == Some('*') => {
                        text.push_str("/*");
                        lx.bump();
                        depth += 1;
                    }
                    Some(other) => text.push(other),
                    None => break,
                }
            }
            out.push(Token { kind: TokenKind::BlockComment, text, line, offset });
            continue;
        }
        // raw strings / raw idents / byte strings, before plain idents
        if c == 'r' || c == 'b' || c == 'c' {
            if let Some(kind) = lex_string_prefix(&mut lx, &mut text) {
                out.push(Token { kind, text, line, offset });
                continue;
            }
        }
        if is_ident_start(c) {
            lx.take_while(&mut text, is_ident_continue);
            out.push(Token { kind: TokenKind::Ident, text, line, offset });
            continue;
        }
        if c.is_ascii_digit() {
            lx.take_while(&mut text, |c| c.is_alphanumeric() || c == '_');
            if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                text.push('.');
                lx.bump();
                lx.take_while(&mut text, |c| c.is_alphanumeric() || c == '_');
            }
            if text.ends_with(['e', 'E'])
                && lx.peek(0).is_some_and(|s| s == '+' || s == '-')
                && lx.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                while let Some(d) = lx.peek(0) {
                    if !(d.is_alphanumeric() || d == '_' || d == '+' || d == '-') {
                        break;
                    }
                    text.push(d);
                    lx.bump();
                }
            }
            out.push(Token { kind: TokenKind::Number, text, line, offset });
            continue;
        }
        if c == '"' {
            text.push('"');
            lx.bump();
            lx.quoted_body(&mut text);
            out.push(Token { kind: TokenKind::Str, text, line, offset });
            continue;
        }
        if c == '\'' {
            // lifetime vs char literal
            let next = lx.peek(1);
            let after = lx.peek(2);
            let is_char = match next {
                Some('\\') => true,
                Some(n) if is_ident_start(n) => after == Some('\''),
                Some(_) => true, // '(' , '.' etc. can only be char literals
                None => false,
            };
            text.push('\'');
            lx.bump();
            if is_char {
                lx.char_body(&mut text);
                out.push(Token { kind: TokenKind::Char, text, line, offset });
            } else {
                lx.take_while(&mut text, is_ident_continue);
                out.push(Token { kind: TokenKind::Lifetime, text, line, offset });
            }
            continue;
        }
        lx.bump();
        text.push(c);
        out.push(Token { kind: TokenKind::Punct, text, line, offset });
    }
    out
}

/// Handles tokens starting with `r`/`b`/`c` that are actually string or
/// char literals or raw identifiers. Returns the token kind when it
/// consumed a literal into `text` (raw identifiers come back as
/// [`TokenKind::Ident`] with the `r#` prefix stripped), `None` when the
/// caller should lex a plain identifier instead.
fn lex_string_prefix(lx: &mut Lexer, text: &mut String) -> Option<TokenKind> {
    let c0 = lx.peek(0)?;
    let (prefix_len, raw) = match (c0, lx.peek(1)) {
        ('b', Some('r')) | ('c', Some('r')) => (2, true),
        ('r', _) => (1, true),
        ('b', _) | ('c', _) => (1, false),
        _ => return None,
    };
    let mut idx = prefix_len;
    let mut hashes = 0usize;
    if raw {
        while lx.peek(idx) == Some('#') {
            hashes += 1;
            idx += 1;
        }
    }
    match lx.peek(idx) {
        Some('"') => {
            for _ in 0..=idx {
                if let Some(c) = lx.bump() {
                    text.push(c);
                }
            }
            if raw {
                lx.raw_body(text, hashes);
                Some(TokenKind::RawStr)
            } else {
                lx.quoted_body(text);
                Some(TokenKind::Str)
            }
        }
        Some('\'') if !raw && c0 == 'b' => {
            text.push('b');
            text.push('\'');
            lx.bump();
            lx.bump();
            lx.char_body(text);
            Some(TokenKind::Char)
        }
        _ => {
            if raw && hashes > 0 && lx.peek(idx).is_some_and(is_ident_start) {
                // raw identifier r#type: consume the prefix, then report
                // the ident without it
                for _ in 0..idx {
                    lx.bump();
                }
                lx.take_while(text, is_ident_continue);
                Some(TokenKind::Ident)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let ks = kinds("x.unwrap()");
        assert_eq!(ks[0], (TokenKind::Ident, "x".into()));
        assert_eq!(ks[1], (TokenKind::Punct, ".".into()));
        assert_eq!(ks[2], (TokenKind::Ident, "unwrap".into()));
        assert_eq!(ks[3], (TokenKind::Punct, "(".into()));
    }

    #[test]
    fn string_value_unescapes() {
        let ts = lex(r#"let s = "a\"b\n";"#);
        let s = ts.iter().find(|t| t.kind == TokenKind::Str).expect("str token");
        assert_eq!(s.str_value().expect("value"), "a\"b\n");
    }

    #[test]
    fn raw_string_with_hashes() {
        let ts = lex(r###"let s = r#"contains "quotes" and unwrap()"#;"###);
        let s = ts.iter().find(|t| t.kind == TokenKind::RawStr).expect("raw str");
        assert_eq!(s.str_value().expect("value"), r#"contains "quotes" and unwrap()"#);
        // no ident token named unwrap leaks out of the literal
        assert!(!ts.iter().any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"));
    }

    #[test]
    fn lifetime_vs_char() {
        let ts = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        let lifetimes: Vec<_> = ts.iter().filter(|t| t.kind == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        let chars: Vec<_> = ts.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let ts = lex("/* outer /* inner */ still comment */ ident");
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].kind, TokenKind::BlockComment);
        assert_eq!(ts[1].text, "ident");
    }

    #[test]
    fn line_numbers_track_newlines() {
        let ts = lex("a\nb\n\nc");
        let lines: Vec<u32> = ts.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_string_consumes_to_eof() {
        let ts = lex("let s = \"never closed");
        assert_eq!(ts.last().map(|t| t.kind), Some(TokenKind::Str));
    }
}
