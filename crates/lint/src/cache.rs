//! Incremental analysis cache: [`crate::facts::FileFacts`] round-trip
//! keyed by content hash, stored under `target/emblookup-lint/`.
//!
//! The workspace driver hashes each file's bytes (FNV-1a 64); on a hit
//! the cached facts are used verbatim and the file is neither re-lexed
//! nor re-parsed. The cache is invalidated wholesale when the header
//! version or the metric-name registry hash changes (L003 findings
//! depend on the registry). The format is line-oriented,
//! tab-separated with `\\`/`\t`/`\n` escapes; *any* malformed line
//! discards the whole cache — correctness never depends on it, a stale
//! or corrupt cache only costs a cold run. Writes go through a temp
//! file + rename so a crashed run cannot leave a torn cache.

use crate::callgraph::{CallFact, DetSite, FnFact, LockAcq, Seed};
use crate::dataflow::{AtomicAccess, AtomicDecl, WriteSite};
use crate::engine::{AllowDecl, AtomicMark, FileClass, NameRegistry, Violation};
use crate::facts::FileFacts;
use crate::parser::{ApiItem, CrateRef, ImportMap};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

const VERSION: &str = "emblookup-lint facts v3";

/// FNV-1a 64-bit over raw bytes — stable, dependency-free, fast enough
/// for whole-workspace hashing.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of the metric-name registry (order is stable: `BTreeMap`).
pub fn registry_hash(reg: &NameRegistry) -> u64 {
    let mut buf = Vec::new();
    for (k, v) in reg {
        buf.extend_from_slice(k.as_bytes());
        buf.push(0);
        buf.extend_from_slice(v.as_bytes());
        buf.push(0);
    }
    fnv1a(&buf)
}

/// Cache file location for a workspace root.
pub fn cache_path(root: &Path) -> PathBuf {
    root.join("target").join("emblookup-lint").join("facts-cache.tsv")
}

/// Loaded cache: `rel path → (content hash, facts)`.
#[derive(Default)]
pub struct Cache {
    map: HashMap<String, (u64, FileFacts)>,
}

impl Cache {
    /// Facts for `rel` if cached with exactly this content hash.
    pub fn get(&self, rel: &str, hash: u64) -> Option<&FileFacts> {
        self.map.get(rel).filter(|(h, _)| *h == hash).map(|(_, f)| f)
    }

    /// Number of cached files (diagnostics).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn opt(s: &Option<String>) -> String {
    match s {
        None => "-".to_string(),
        Some(v) => format!("+{}", esc(v)),
    }
}

fn unopt(s: &str) -> Option<Option<String>> {
    if s == "-" {
        return Some(None);
    }
    s.strip_prefix('+').and_then(unesc).map(Some)
}

fn render_file(out: &mut String, hash: u64, f: &FileFacts) {
    use std::fmt::Write as _;
    let class = match f.class {
        FileClass::Lib => "Lib",
        FileClass::Bin => "Bin",
    };
    let _ = writeln!(
        out,
        "F\t{hash:016x}\t{}\t{}\t{}\t{class}\t{}",
        esc(&f.rel),
        esc(&f.src_rel),
        esc(&f.krate),
        u8::from(f.hot_path)
    );
    for a in &f.allows {
        let _ = writeln!(out, "A\t{}\t{}", esc(&a.rule), a.line);
    }
    for v in &f.raw {
        let _ = writeln!(
            out,
            "V\t{}\t{}\t{}\t{}",
            v.line,
            esc(&v.rule),
            esc(&v.message),
            opt(&v.suggestion)
        );
    }
    for r in &f.refs {
        let _ = writeln!(out, "R\t{}\t{}", esc(&r.krate), r.line);
    }
    for p in &f.api {
        let _ = writeln!(out, "P\t{}\t{}\t{}", esc(&p.module), esc(&p.signature), p.line);
    }
    for (leaf, kr) in &f.imports.names {
        let _ = writeln!(out, "I\t{}\t{}", esc(leaf), esc(kr));
    }
    for g in &f.imports.globs {
        let _ = writeln!(out, "G\t{}", esc(g));
    }
    for a in &f.atomics {
        let _ = writeln!(
            out,
            "B\t{}\t{}\t{}\t{}\t{}",
            esc(&a.name),
            esc(&a.ty),
            esc(&a.protocol),
            u8::from(a.declared),
            a.line
        );
    }
    for m in &f.atomic_marks {
        let _ = writeln!(out, "K\t{}\t{}", esc(&m.protocol), m.line);
    }
    for t in &f.arc_types {
        let _ = writeln!(out, "U\t{}", esc(t));
    }
    for s in &f.statics {
        let _ = writeln!(out, "M\t{}", esc(s));
    }
    for fun in &f.fns {
        let checks: Vec<String> = fun.deadline_checks.iter().map(u32::to_string).collect();
        let _ = writeln!(
            out,
            "N\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            esc(&fun.name),
            esc(&fun.self_ty),
            fun.line,
            u8::from(fun.is_test),
            u8::from(fun.mut_self),
            u8::from(fun.deadline_param),
            checks.join(",")
        );
        for c in &fun.calls {
            let _ = writeln!(
                out,
                "C\t{}\t{}\t{}\t{}\t{}\t{}",
                esc(&c.name),
                esc(&c.qual),
                esc(&c.recv),
                u8::from(c.is_method),
                c.line,
                esc(&c.held.join(","))
            );
        }
        for s in &fun.seeds {
            let _ = writeln!(out, "S\t{}\t{}\t{}", s.effect, s.line, esc(&s.what));
        }
        for q in &fun.acquires {
            let _ = writeln!(out, "Q\t{}\t{}\t{}", esc(&q.key), q.line, esc(&q.held.join(",")));
        }
        for d in &fun.det_sites {
            let _ = writeln!(out, "D\t{}\t{}", d.line, esc(&d.what));
        }
        for (rule, decl_line) in &fun.seed_allows {
            let _ = writeln!(out, "E\t{}\t{}", esc(rule), decl_line);
        }
        for t in &fun.atomic_accesses {
            let _ = writeln!(
                out,
                "T\t{}\t{}\t{}\t{}",
                esc(&t.field),
                esc(&t.method),
                esc(&t.orderings.join(",")),
                t.line
            );
        }
        for w in &fun.writes {
            let _ = writeln!(out, "W\t{}\t{}\t{}", esc(&w.target), w.line, esc(&w.held.join(",")));
        }
    }
}

/// Serializes entries and writes them atomically (temp file + rename).
pub fn save(root: &Path, reg_hash: u64, entries: &[(u64, &FileFacts)]) -> std::io::Result<()> {
    let path = cache_path(root);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut out = format!("{VERSION} {reg_hash:016x}\n");
    for (hash, f) in entries {
        render_file(&mut out, *hash, f);
    }
    let tmp = path.with_extension("tsv.tmp");
    {
        let mut w = std::fs::File::create(&tmp)?;
        w.write_all(out.as_bytes())?;
    }
    std::fs::rename(&tmp, &path)
}

/// Loads the cache; returns an empty cache on any mismatch, parse
/// error, or missing file.
pub fn load(root: &Path, reg_hash: u64) -> Cache {
    let Ok(text) = std::fs::read_to_string(cache_path(root)) else {
        return Cache::default();
    };
    parse(&text, reg_hash).unwrap_or_default()
}

fn parse(text: &str, reg_hash: u64) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    if header != format!("{VERSION} {reg_hash:016x}") {
        return None;
    }
    let mut map = HashMap::new();
    let mut cur: Option<(u64, FileFacts)> = None;
    for line in lines {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied()? {
            "F" => {
                if let Some((h, f)) = cur.take() {
                    map.insert(f.rel.clone(), (h, f));
                }
                if fields.len() != 7 {
                    return None;
                }
                let hash = u64::from_str_radix(fields[1], 16).ok()?;
                let class = match fields[5] {
                    "Lib" => FileClass::Lib,
                    "Bin" => FileClass::Bin,
                    _ => return None,
                };
                cur = Some((
                    hash,
                    FileFacts {
                        rel: unesc(fields[2])?,
                        src_rel: unesc(fields[3])?,
                        krate: unesc(fields[4])?,
                        class,
                        hot_path: fields[6] == "1",
                        allows: Vec::new(),
                        raw: Vec::new(),
                        refs: Vec::new(),
                        api: Vec::new(),
                        imports: ImportMap::default(),
                        fns: Vec::new(),
                        atomics: Vec::new(),
                        atomic_marks: Vec::new(),
                        arc_types: Vec::new(),
                        statics: Vec::new(),
                    },
                ));
            }
            "A" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 3 {
                    return None;
                }
                f.allows
                    .push(AllowDecl { rule: unesc(fields[1])?, line: fields[2].parse().ok()? });
            }
            "V" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 5 {
                    return None;
                }
                let file = f.rel.clone();
                f.raw.push(Violation {
                    file,
                    line: fields[1].parse().ok()?,
                    rule: unesc(fields[2])?,
                    message: unesc(fields[3])?,
                    suggestion: unopt(fields[4])?,
                });
            }
            "R" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 3 {
                    return None;
                }
                f.refs.push(CrateRef { krate: unesc(fields[1])?, line: fields[2].parse().ok()? });
            }
            "P" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 4 {
                    return None;
                }
                f.api.push(ApiItem {
                    module: unesc(fields[1])?,
                    signature: unesc(fields[2])?,
                    line: fields[3].parse().ok()?,
                });
            }
            "I" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 3 {
                    return None;
                }
                f.imports.names.insert(unesc(fields[1])?, unesc(fields[2])?);
            }
            "G" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 2 {
                    return None;
                }
                f.imports.globs.push(unesc(fields[1])?);
            }
            "B" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 6 {
                    return None;
                }
                f.atomics.push(AtomicDecl {
                    name: unesc(fields[1])?,
                    ty: unesc(fields[2])?,
                    protocol: unesc(fields[3])?,
                    declared: fields[4] == "1",
                    line: fields[5].parse().ok()?,
                });
            }
            "K" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 3 {
                    return None;
                }
                f.atomic_marks
                    .push(AtomicMark { protocol: unesc(fields[1])?, line: fields[2].parse().ok()? });
            }
            "U" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 2 {
                    return None;
                }
                f.arc_types.push(unesc(fields[1])?);
            }
            "M" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 2 {
                    return None;
                }
                f.statics.push(unesc(fields[1])?);
            }
            "N" => {
                let f = &mut cur.as_mut()?.1;
                if fields.len() != 8 {
                    return None;
                }
                let mut deadline_checks = Vec::new();
                if !fields[7].is_empty() {
                    for part in fields[7].split(',') {
                        deadline_checks.push(part.parse().ok()?);
                    }
                }
                f.fns.push(FnFact {
                    name: unesc(fields[1])?,
                    self_ty: unesc(fields[2])?,
                    line: fields[3].parse().ok()?,
                    is_test: fields[4] == "1",
                    calls: Vec::new(),
                    seeds: Vec::new(),
                    acquires: Vec::new(),
                    det_sites: Vec::new(),
                    seed_allows: Vec::new(),
                    mut_self: fields[5] == "1",
                    deadline_param: fields[6] == "1",
                    deadline_checks,
                    atomic_accesses: Vec::new(),
                    writes: Vec::new(),
                });
            }
            "C" => {
                let fun = cur.as_mut()?.1.fns.last_mut()?;
                if fields.len() != 7 {
                    return None;
                }
                fun.calls.push(CallFact {
                    name: unesc(fields[1])?,
                    qual: unesc(fields[2])?,
                    recv: unesc(fields[3])?,
                    is_method: fields[4] == "1",
                    line: fields[5].parse().ok()?,
                    held: split_held(&unesc(fields[6])?),
                });
            }
            "S" => {
                let fun = cur.as_mut()?.1.fns.last_mut()?;
                if fields.len() != 4 {
                    return None;
                }
                fun.seeds.push(Seed {
                    effect: fields[1].parse().ok()?,
                    line: fields[2].parse().ok()?,
                    what: unesc(fields[3])?,
                });
            }
            "Q" => {
                let fun = cur.as_mut()?.1.fns.last_mut()?;
                if fields.len() != 4 {
                    return None;
                }
                fun.acquires.push(LockAcq {
                    key: unesc(fields[1])?,
                    line: fields[2].parse().ok()?,
                    held: split_held(&unesc(fields[3])?),
                });
            }
            "D" => {
                let fun = cur.as_mut()?.1.fns.last_mut()?;
                if fields.len() != 3 {
                    return None;
                }
                fun.det_sites
                    .push(DetSite { line: fields[1].parse().ok()?, what: unesc(fields[2])? });
            }
            "E" => {
                let fun = cur.as_mut()?.1.fns.last_mut()?;
                if fields.len() != 3 {
                    return None;
                }
                fun.seed_allows.push((unesc(fields[1])?, fields[2].parse().ok()?));
            }
            "T" => {
                let fun = cur.as_mut()?.1.fns.last_mut()?;
                if fields.len() != 5 {
                    return None;
                }
                fun.atomic_accesses.push(AtomicAccess {
                    field: unesc(fields[1])?,
                    method: unesc(fields[2])?,
                    orderings: split_held(&unesc(fields[3])?),
                    line: fields[4].parse().ok()?,
                });
            }
            "W" => {
                let fun = cur.as_mut()?.1.fns.last_mut()?;
                if fields.len() != 4 {
                    return None;
                }
                fun.writes.push(WriteSite {
                    target: unesc(fields[1])?,
                    line: fields[2].parse().ok()?,
                    held: split_held(&unesc(fields[3])?),
                });
            }
            _ => return None,
        }
    }
    if let Some((h, f)) = cur.take() {
        map.insert(f.rel.clone(), (h, f));
    }
    Some(Cache { map })
}

fn split_held(s: &str) -> Vec<String> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split(',').map(str::to_string).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FileFacts {
        FileFacts::fixture(
            "crates/kg/src/lib.rs",
            "emblookup-kg",
            "// lint: hot-path\n\
             // lint: allow(L001) fixture\n\
             use emblookup_obs::Obs;\n\
             use std::collections::HashMap;\n\
             pub fn f(m: &HashMap<u32, u32>, x: &std::sync::Mutex<u32>) -> Vec<u32> {\n\
                 let g = x.lock();\n\
                 // lint: allow(L002) fixture: exercise the seed-allow round trip\n\
                 let s = format!(\"tab\\there\");\n\
                 helper(s);\n\
                 m.keys().copied().collect()\n\
             }\n\
             // lint: atomic(flag) publishes shutdown\n\
             pub struct St { stop: AtomicBool }\n\
             static TICKS: u64 = 0;\n\
             impl St {\n\
                 pub fn run(&self, clock: &DeadlineClock) {\n\
                     if clock.expired() { return; }\n\
                     self.stop.store(true, Ordering::Release);\n\
                     self.cursor = 3;\n\
                 }\n\
             }\n\
             pub fn share(p: Arc<St>) {}\n",
        )
    }

    #[test]
    fn facts_round_trip_exactly() {
        let f = sample();
        assert!(
            f.fns[0].seed_allows.contains(&("L002".to_string(), 7)),
            "fixture must exercise seed_allows: {:?}",
            f.fns[0].seed_allows
        );
        // the fixture must exercise every dataflow fact the v3 format adds
        assert_eq!(f.atomics.len(), 1, "{:?}", f.atomics);
        assert!(f.atomics[0].declared && f.atomics[0].protocol == "flag");
        assert_eq!(f.atomic_marks.len(), 1);
        assert_eq!(f.arc_types, vec!["St".to_string()]);
        assert_eq!(f.statics, vec!["TICKS".to_string()]);
        let run = f.fns.iter().find(|x| x.name == "run").expect("run fn");
        assert!(run.deadline_param && run.deadline_checks.len() == 1);
        assert_eq!(run.atomic_accesses.len(), 1);
        assert_eq!(run.writes.len(), 1);
        let mut text = format!("{VERSION} {:016x}\n", 7u64);
        render_file(&mut text, 42, &f);
        let cache = parse(&text, 7).expect("parse back");
        let back = cache.get("crates/kg/src/lib.rs", 42).expect("hit");
        assert_eq!(back, &f);
        assert!(cache.get("crates/kg/src/lib.rs", 43).is_none(), "hash mismatch must miss");
    }

    #[test]
    fn version_or_registry_mismatch_discards() {
        let f = sample();
        let mut text = format!("{VERSION} {:016x}\n", 7u64);
        render_file(&mut text, 42, &f);
        assert!(parse(&text, 8).is_none(), "registry hash mismatch");
        let stale = text.replace("facts v3", "facts v2");
        assert!(parse(&stale, 7).is_none(), "version mismatch");
    }

    #[test]
    fn any_malformed_line_discards_the_whole_cache() {
        let f = sample();
        let mut text = format!("{VERSION} {:016x}\n", 7u64);
        render_file(&mut text, 42, &f);
        text.push_str("Z\tbogus\n");
        assert!(parse(&text, 7).is_none());
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let root = std::env::temp_dir().join(format!("emblookup-lint-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("mkdir");
        let f = sample();
        save(&root, 9, &[(42, &f)]).expect("save");
        let cache = load(&root, 9);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("crates/kg/src/lib.rs", 42), Some(&f));
        // wrong registry hash → empty
        assert!(load(&root, 10).is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }
}
