//! Intra-procedural concurrency dataflow: the facts behind the three
//! protocol rules.
//!
//! This module owns the *model* — what an atomic protocol is, which
//! orderings each protocol admits per operation, and the per-file scans
//! that bind declarations to protocols — while the scanner in
//! [`crate::callgraph`] collects the per-function *sites* (atomic
//! accesses, shared-state writes, deadline checks) and the rules in
//! [`crate::rules`] join the two:
//!
//! | rule | fact joined |
//! |------|-------------|
//! | L011 | [`AtomicDecl`] × [`AtomicAccess`] against the ordering table |
//! | L012 | deadline params/checks × BLOCKS/POOLWAIT/SUBMITS sites over the call graph |
//! | L013 | [`WriteSite`] × `Arc`-shared types / `static` roots |
//!
//! ## Protocol ordering tables
//!
//! A protocol names the synchronization discipline a field participates
//! in; the table says which `Ordering` each operation may use. `✓` = any
//! ordering (including `Relaxed`).
//!
//! | protocol | load | store | rmw |
//! |----------|------|-------|-----|
//! | `counter` | ✓ | ✓ | ✓ |
//! | `flag` | Acquire/SeqCst | Release/SeqCst | non-Relaxed |
//! | `seqlock` | Acquire/SeqCst | Release/SeqCst | non-Relaxed (CAS success) |
//! | `ring_head` | Acquire/SeqCst | Release/SeqCst | Release/AcqRel/SeqCst |
//! | `refcount` | ✓ | Release/SeqCst | `fetch_add` ✓, `fetch_sub` Release/AcqRel/SeqCst |
//!
//! Rationale: `counter` is a monotonic statistic nobody synchronizes
//! through, so `Relaxed` is sufficient. A `flag` publishes data written
//! before the store, so the store must Release and readers must Acquire.
//! `seqlock` covers both the version word and the data slots of a
//! sequence lock under a uniform Acquire-load / Release-store
//! discipline: if a reader's data load synchronizes-with a concurrent
//! writer's Release data store, the writer's earlier odd-version RMW is
//! also visible, so the reader's Acquire recheck of the version word
//! must observe the odd (or advanced) value and retry — torn reads
//! cannot validate. `ring_head` is the overwrite-oldest ring cursor:
//! the producer's `fetch_add` must Release the slot write that precedes
//! it and readers must Acquire before scanning slots. `refcount` is the
//! classic `Arc` discipline: increments may be `Relaxed` (the object is
//! already kept alive by the reference being cloned) but the decrement
//! must Release so the last owner's drop sees all prior writes.

use crate::engine::SourceFile;
use crate::lexer::TokenKind;

/// The atomic integer/bool types whose fields the declaration scan
/// recognizes (exact names — `AtomicDecl` the lint struct must not
/// match).
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicI8",
    "AtomicIsize",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicU8",
    "AtomicUsize",
];

/// Method names that constitute an atomic access when called with an
/// explicit `Ordering` argument.
pub const ATOMIC_METHODS: &[&str] = &[
    "compare_and_swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "load",
    "store",
    "swap",
];

/// The five `std::sync::atomic::Ordering` variants, matched as bare
/// idents inside an atomic method's argument list (import style —
/// `Ordering::Relaxed` vs a `use Ordering::Relaxed` — doesn't matter).
pub const ORDERINGS: &[&str] = &["AcqRel", "Acquire", "Relaxed", "Release", "SeqCst"];

/// One atomic field or static declaration, bound to its protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicDecl {
    /// Field or static name.
    pub name: String,
    /// Declared type (`AtomicU64`, …).
    pub ty: String,
    /// Protocol (one of [`crate::engine::PROTOCOLS`]).
    pub protocol: String,
    /// True when an `// lint: atomic(...)` directive declared the
    /// protocol; false for the inferred `counter` default.
    pub declared: bool,
    /// 1-based declaration line.
    pub line: u32,
}

/// One atomic access site inside a function body:
/// `recv.load(Ordering::Relaxed)` and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicAccess {
    /// Receiver field name (last path segment before the method).
    pub field: String,
    /// Atomic method (`load`, `store`, `fetch_add`, …).
    pub method: String,
    /// Ordering idents in argument order (CAS carries success then
    /// failure; only the success ordering is protocol-checked).
    pub orderings: Vec<String>,
    /// 1-based line of the access.
    pub line: u32,
}

/// One assignment through `self` or a `static` root inside a function
/// body, with the lock guards held at the write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteSite {
    /// Rendered assignment target (`self.head`, `COUNT`).
    pub target: String,
    /// 1-based line of the `=`.
    pub line: u32,
    /// Guard keys (from the L009 tracker) held at the write.
    pub held: Vec<String>,
}

/// The operation classes the protocol table distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `load`.
    Load,
    /// `store`.
    Store,
    /// `swap` / `fetch_*` read-modify-writes.
    Rmw,
    /// `compare_exchange[_weak]` / `compare_and_swap` / `fetch_update`.
    Cas,
}

/// Classifies an atomic method name into its operation class.
pub fn classify_op(method: &str) -> OpKind {
    match method {
        "load" => OpKind::Load,
        "store" => OpKind::Store,
        "compare_exchange" | "compare_exchange_weak" | "compare_and_swap" | "fetch_update" => {
            OpKind::Cas
        }
        _ => OpKind::Rmw,
    }
}

/// True when `ordering` is admissible for `method` under `protocol`
/// (see the module-level table). Unknown protocols are permissive —
/// the directive parser already rejects them.
pub fn ordering_allowed(protocol: &str, method: &str, ordering: &str) -> bool {
    let op = classify_op(method);
    match protocol {
        "flag" | "seqlock" => match op {
            OpKind::Load => matches!(ordering, "Acquire" | "SeqCst"),
            OpKind::Store => matches!(ordering, "Release" | "SeqCst"),
            OpKind::Rmw | OpKind::Cas => ordering != "Relaxed",
        },
        "ring_head" => match op {
            OpKind::Load => matches!(ordering, "Acquire" | "SeqCst"),
            OpKind::Store => matches!(ordering, "Release" | "SeqCst"),
            OpKind::Rmw | OpKind::Cas => matches!(ordering, "Release" | "AcqRel" | "SeqCst"),
        },
        "refcount" => match op {
            OpKind::Load => true,
            OpKind::Store => matches!(ordering, "Release" | "SeqCst"),
            OpKind::Rmw if method == "fetch_add" => true,
            OpKind::Rmw | OpKind::Cas => matches!(ordering, "Release" | "AcqRel" | "SeqCst"),
        },
        // `counter` (and anything unknown): any ordering
        _ => true,
    }
}

/// Human-readable admissible-orderings text for diagnostics.
pub fn expected_orderings(protocol: &str, method: &str) -> &'static str {
    let op = classify_op(method);
    match protocol {
        "flag" | "seqlock" => match op {
            OpKind::Load => "Acquire or SeqCst",
            OpKind::Store => "Release or SeqCst",
            OpKind::Rmw | OpKind::Cas => "a non-Relaxed success ordering",
        },
        "ring_head" => match op {
            OpKind::Load => "Acquire or SeqCst",
            OpKind::Store => "Release or SeqCst",
            OpKind::Rmw | OpKind::Cas => "Release, AcqRel, or SeqCst",
        },
        "refcount" => match op {
            OpKind::Load => "any ordering",
            OpKind::Store => "Release or SeqCst",
            OpKind::Rmw if method == "fetch_add" => "any ordering",
            OpKind::Rmw | OpKind::Cas => "Release, AcqRel, or SeqCst",
        },
        _ => "any ordering",
    }
}

/// Scans a file for atomic field/static declarations and binds each to
/// its protocol: an `// lint: atomic(p)` directive covering the
/// declaration line wins; otherwise the `counter` default is inferred.
///
/// A declaration is the pattern `name : [Wrapper< / [ …]* AtomicXx`
/// outside test regions, skipping `let`/`mut` local bindings and
/// `fn` parameters (`&AtomicBool`). Constructor field inits
/// (`seq: AtomicU64::new(0)`) match the same shape; duplicates are
/// collapsed by name, preferring the annotated (else earliest) site.
pub fn scan_atomics(sf: &SourceFile) -> Vec<AtomicDecl> {
    let tokens = sf.tokens();
    let sig: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
    let txt = |s: usize| sig.get(s).map(|&j| tokens[j].text.as_str()).unwrap_or("");
    let is_ident = |s: usize| sig.get(s).is_some_and(|&j| tokens[j].kind == TokenKind::Ident);

    let mut out: Vec<AtomicDecl> = Vec::new();
    for s in 0..sig.len() {
        if !is_ident(s) || !ATOMIC_TYPES.contains(&txt(s)) || sf.in_test(sig[s]) {
            continue;
        }
        // walk back over generic/array wrappers: `Arc<`, `Option<`, `Box<[`
        let mut j = s;
        while j > 0 && matches!(txt(j - 1), "<" | "[") {
            j -= 1;
            if j > 0 && is_ident(j - 1) {
                j -= 1;
            }
        }
        if j < 2 || txt(j - 1) != ":" || !is_ident(j - 2) {
            continue;
        }
        let name = txt(j - 2);
        // skip local bindings (`let v: Vec<AtomicU64>`) and `mut` patterns
        if j >= 3 && matches!(txt(j - 3), "let" | "mut") {
            continue;
        }
        let line = tokens[sig[s]].line;
        let mark = sf.atomic_marks().iter().find(|m| m.covers(line));
        let decl = AtomicDecl {
            name: name.to_string(),
            ty: txt(s).to_string(),
            protocol: mark.map(|m| m.protocol.clone()).unwrap_or_else(|| "counter".to_string()),
            declared: mark.is_some(),
            line,
        };
        match out.iter_mut().find(|d| d.name == decl.name) {
            // constructor inits shadow the field declaration: keep the
            // annotated site, else the earliest
            Some(prev) => {
                if decl.declared && !prev.declared {
                    *prev = decl;
                }
            }
            None => out.push(decl),
        }
    }
    out
}

/// Scans a file for the shared-state roots L013 checks against:
/// type names wrapped in `Arc<…>` (whose `&self` methods may be called
/// concurrently) and `static` item names.
pub fn scan_shared_roots(sf: &SourceFile) -> (Vec<String>, Vec<String>) {
    let tokens = sf.tokens();
    let sig: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
    let txt = |s: usize| sig.get(s).map(|&j| tokens[j].text.as_str()).unwrap_or("");
    let is_ident = |s: usize| sig.get(s).is_some_and(|&j| tokens[j].kind == TokenKind::Ident);

    let mut arc_types: Vec<String> = Vec::new();
    let mut statics: Vec<String> = Vec::new();
    for s in 0..sig.len() {
        if !is_ident(s) {
            continue;
        }
        match txt(s) {
            // `Arc < Ty` — record Ty (skip a leading `dyn`)
            "Arc" if txt(s + 1) == "<" => {
                let t = if txt(s + 2) == "dyn" { s + 3 } else { s + 2 };
                if is_ident(t) && !arc_types.iter().any(|x| x == txt(t)) {
                    arc_types.push(txt(t).to_string());
                }
            }
            // `static [mut] NAME :`
            "static" => {
                let n = if txt(s + 1) == "mut" { s + 2 } else { s + 1 };
                if is_ident(n) && txt(n + 1) == ":" && !statics.iter().any(|x| x == txt(n)) {
                    statics.push(txt(n).to_string());
                }
            }
            _ => {}
        }
    }
    (arc_types, statics)
}

/// Renders the committed `ATOMICS.md` protocol report: one table per
/// file, every declared atomic with its protocol, provenance, and the
/// observed access sites; unbound accesses (receivers with no matching
/// declaration, e.g. locals or enum payload bindings) are listed
/// separately under their inferred `counter` protocol.
pub fn atomics_report(files: &[crate::facts::FileFacts]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("# Atomic protocol inventory\n\n");
    out.push_str("Generated by `emblookup-lint --atomics-report`; regenerated and diffed by `scripts/ci.sh`. ");
    out.push_str("Protocols are declared with `// lint: atomic(protocol)` on the field (default: `counter`) ");
    out.push_str("and enforced per access by rule L011 (ordering tables in `crates/lint/src/dataflow.rs` ");
    out.push_str("and DESIGN.md §1.3).\n");

    let mut sorted: Vec<&crate::facts::FileFacts> = files.iter().collect();
    sorted.sort_by(|a, b| a.rel.cmp(&b.rel));
    let mut unbound: Vec<(String, String, String, u32)> = Vec::new(); // file, field, call, line
    for f in &sorted {
        // collect this file's access sites keyed by receiver
        let mut accesses: Vec<(&str, &AtomicAccess)> = Vec::new();
        for func in &f.fns {
            if func.is_test {
                continue;
            }
            for a in &func.atomic_accesses {
                accesses.push((&func.name, a));
            }
        }
        if f.atomics.is_empty() && accesses.is_empty() {
            continue;
        }
        let _ = write!(out, "\n## `{}`\n\n", f.rel);
        if !f.atomics.is_empty() {
            out.push_str("| atomic | type | protocol | accesses |\n");
            out.push_str("|--------|------|----------|----------|\n");
            for d in &f.atomics {
                let mut sites = String::new();
                for (_, a) in accesses.iter().filter(|(_, a)| a.field == d.name) {
                    if !sites.is_empty() {
                        sites.push_str(", ");
                    }
                    let _ = write!(sites, "`{}({})`:{}", a.method, a.orderings.join(","), a.line);
                }
                if sites.is_empty() {
                    sites.push('—');
                }
                let _ = writeln!(
                    out,
                    "| `{}`:{} | `{}` | `{}`{} | {} |",
                    d.name,
                    d.line,
                    d.ty,
                    d.protocol,
                    if d.declared { "" } else { " (inferred)" },
                    sites
                );
            }
        }
        for (func, a) in &accesses {
            let bound = f.atomics.iter().any(|d| d.name == a.field);
            if !bound {
                unbound.push((
                    f.rel.clone(),
                    a.field.clone(),
                    format!("`{}.{}({})` in `{}`", a.field, a.method, a.orderings.join(","), func),
                    a.line,
                ));
            }
        }
    }
    if !unbound.is_empty() {
        out.push_str("\n## Unbound accesses\n\n");
        out.push_str(
            "Accesses whose receiver has no field declaration in the same file \
             (locals, parameters, enum payload bindings); these follow the protocol \
             of an `// lint: atomic(...)` directive on the access line, else `counter`.\n\n",
        );
        out.push_str("| file:line | access |\n|-----------|--------|\n");
        for (file, _field, call, line) in &unbound {
            let _ = writeln!(out, "| {}:{} | {} |", file, line, call);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", src)
    }

    #[test]
    fn declared_and_inferred_protocols() {
        let src = "\
pub struct S {
    // lint: atomic(flag) publishes shutdown
    stop: AtomicBool,
    count: AtomicU64,
    slots: Box<[AtomicU64; 8]>,
    handle: Option<Arc<AtomicUsize>>,
}
";
        let decls = scan_atomics(&parse(src));
        let by_name = |n: &str| decls.iter().find(|d| d.name == n).expect(n);
        assert_eq!(by_name("stop").protocol, "flag");
        assert!(by_name("stop").declared);
        assert_eq!(by_name("count").protocol, "counter");
        assert!(!by_name("count").declared);
        assert_eq!(by_name("slots").ty, "AtomicU64");
        assert_eq!(by_name("handle").ty, "AtomicUsize");
        assert_eq!(decls.len(), 4);
    }

    #[test]
    fn locals_params_and_tests_are_not_declarations() {
        let src = "\
pub fn scan(stop: &AtomicBool) -> usize {
    let v: Vec<AtomicU64> = Vec::new();
    v.len()
}
#[cfg(test)]
mod tests {
    struct T { n: AtomicU32 }
}
";
        assert!(scan_atomics(&parse(src)).is_empty());
    }

    #[test]
    fn constructor_init_collapses_into_field_decl() {
        let src = "\
pub struct S {
    // lint: atomic(refcount) live handle count
    pending: AtomicUsize,
}
impl S {
    pub fn new() -> Self { S { pending: AtomicUsize::new(0) } }
}
";
        let decls = scan_atomics(&parse(src));
        assert_eq!(decls.len(), 1);
        assert_eq!(decls[0].protocol, "refcount");
        assert_eq!(decls[0].line, 3);
    }

    #[test]
    fn protocol_tables_match_the_doc() {
        // counter: anything goes
        assert!(ordering_allowed("counter", "load", "Relaxed"));
        assert!(ordering_allowed("counter", "fetch_add", "Relaxed"));
        // flag: Release store / Acquire load
        assert!(!ordering_allowed("flag", "store", "Relaxed"));
        assert!(!ordering_allowed("flag", "store", "Acquire"));
        assert!(ordering_allowed("flag", "store", "Release"));
        assert!(!ordering_allowed("flag", "load", "Relaxed"));
        assert!(ordering_allowed("flag", "load", "SeqCst"));
        // seqlock: uniform Acquire/Release, non-Relaxed RMW success
        assert!(!ordering_allowed("seqlock", "compare_exchange", "Relaxed"));
        assert!(ordering_allowed("seqlock", "compare_exchange", "Acquire"));
        assert!(!ordering_allowed("seqlock", "store", "Relaxed"));
        // ring_head: publishing fetch_add must Release
        assert!(!ordering_allowed("ring_head", "fetch_add", "Relaxed"));
        assert!(!ordering_allowed("ring_head", "fetch_add", "Acquire"));
        assert!(ordering_allowed("ring_head", "fetch_add", "Release"));
        assert!(!ordering_allowed("ring_head", "load", "Relaxed"));
        // refcount: inc Relaxed ok, dec must Release
        assert!(ordering_allowed("refcount", "fetch_add", "Relaxed"));
        assert!(!ordering_allowed("refcount", "fetch_sub", "Relaxed"));
        assert!(ordering_allowed("refcount", "fetch_sub", "AcqRel"));
        assert!(ordering_allowed("refcount", "load", "Relaxed"));
    }

    #[test]
    fn shared_roots_scan() {
        let src = "\
static mut SCRATCH: usize = 0;
static TICKS: u64 = 0;
pub struct Pool;
pub fn share(p: Arc<Pool>, d: Arc<dyn Drain>) {}
";
        let (arcs, statics) = scan_shared_roots(&parse(src));
        assert_eq!(arcs, vec!["Pool".to_string(), "Drain".to_string()]);
        assert_eq!(statics, vec!["SCRATCH".to_string(), "TICKS".to_string()]);
    }
}
