//! Workspace-level analysis: loads every manifest and lintable source
//! file once (through the incremental fact cache when enabled), then
//! runs the per-file passes (L001–L004, L007), the layering pass
//! (L005), the interprocedural rules (L008–L010) and the API snapshot
//! (L006) over the shared model. This is what the `emblookup-lint`
//! binary drives.
//!
//! Allow-directive suppression is **central**: every pass returns raw
//! violations, and this module matches them against the owning file's
//! `// lint: allow` directives. That single choke point is what makes
//! the stale-allow audit possible — a directive that suppressed
//! nothing anywhere in the run is reported as a warning. Manifest-side
//! L005 violations and L000 directive errors bypass suppression by
//! construction. The same audit covers `// lint: atomic(protocol)`
//! annotations: one that binds no atomic declaration and covers no
//! access site is warned as unused.

use crate::api::Snapshot;
use crate::cache;
use crate::cargo::{read_manifests, Manifest};
use crate::engine::{NameRegistry, Violation};
use crate::facts::FileFacts;
use crate::{layers, rules, walk};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// The loaded workspace model.
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Parsed member manifests (root package + `crates/*`).
    pub manifests: Vec<Manifest>,
    /// Extracted per-file facts, sorted by path.
    pub files: Vec<FileFacts>,
    /// Files served from the incremental cache.
    pub cache_hits: usize,
    /// Files analyzed cold this run.
    pub cache_misses: usize,
}

/// Outcome of a full check: hard errors and advisory warnings.
pub struct Report {
    /// Rule violations after central allow suppression (exit-code 1).
    pub violations: Vec<Violation>,
    /// Stale-allow audit findings (advisory, rule `L000`).
    pub warnings: Vec<Violation>,
}

impl Workspace {
    /// Reads manifests and sources under `root`, extracting facts for
    /// each file — via the content-hash cache under
    /// `target/emblookup-lint/` unless `use_cache` is false. The cache
    /// is refreshed (best-effort) after a run with any misses.
    pub fn load(root: &Path, registry: &NameRegistry, use_cache: bool) -> Result<Workspace, String> {
        let manifests = read_manifests(root)
            .map_err(|e| format!("reading manifests under {}: {e}", root.display()))?;
        let rels = walk::lintable_files(root)
            .map_err(|e| format!("walking {}: {e}", root.display()))?;
        let reg_hash = cache::registry_hash(registry);
        let cached = if use_cache { cache::load(root, reg_hash) } else { cache::Cache::default() };
        let mut files = Vec::with_capacity(rels.len());
        let mut hashes = Vec::with_capacity(rels.len());
        let mut hits = 0usize;
        let mut misses = 0usize;
        for rel_path in rels {
            let rel = rel_path.to_string_lossy().replace('\\', "/");
            let src = std::fs::read_to_string(root.join(&rel_path))
                .map_err(|e| format!("reading {rel}: {e}"))?;
            let hash = cache::fnv1a(src.as_bytes());
            let (krate, src_rel) = owner(&manifests, &rel);
            match cached.get(&rel, hash) {
                Some(f) if f.krate == krate && f.src_rel == src_rel => {
                    files.push(f.clone());
                    hits += 1;
                }
                _ => {
                    files.push(FileFacts::extract(&rel, &src_rel, &krate, &src, registry));
                    misses += 1;
                }
            }
            hashes.push(hash);
        }
        if use_cache && misses > 0 {
            let entries: Vec<(u64, &FileFacts)> =
                hashes.iter().copied().zip(files.iter()).collect();
            // best-effort: a read-only target/ only costs the next run
            let _ = cache::save(root, reg_hash, &entries);
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            manifests,
            files,
            cache_hits: hits,
            cache_misses: misses,
        })
    }

    /// In-memory constructor for fixture tests: no filesystem, no
    /// cache.
    pub fn from_parts(manifests: Vec<Manifest>, files: Vec<FileFacts>) -> Workspace {
        let misses = files.len();
        Workspace { root: PathBuf::new(), manifests, files, cache_hits: 0, cache_misses: misses }
    }

    /// Runs every pass and applies allow suppression centrally. (L006
    /// runs separately via [`Workspace::api_snapshot`] +
    /// [`crate::api::diff`] because it needs the checked-in lockfile.)
    pub fn check(&self) -> Report {
        // manifest-side L005: no source line to hang an allow on —
        // never suppressible
        let mut violations = layers::check_manifests(&self.manifests);

        // raw per-file + layering + interprocedural findings
        let mut raw: Vec<Violation> = Vec::new();
        for f in &self.files {
            raw.extend(f.raw.iter().cloned());
            if !f.krate.is_empty() {
                raw.extend(layers::check_refs(&f.rel, &f.krate, &f.refs));
            }
        }
        raw.extend(rules::run(&self.manifests, &self.files));

        // central suppression + usage tracking
        let by_rel: HashMap<&str, &FileFacts> =
            self.files.iter().map(|f| (f.rel.as_str(), f)).collect();
        let mut used: HashSet<(String, String, u32)> = HashSet::new();
        // allows consumed at seed level (a justified leaf allow absolves
        // transitive callers — see callgraph::Scanner::seed) are used
        // even though no central violation matches them
        for f in &self.files {
            for fun in &f.fns {
                for (rule, decl_line) in &fun.seed_allows {
                    used.insert((f.rel.clone(), rule.clone(), *decl_line));
                }
            }
        }
        for v in raw {
            if v.rule == "L000" {
                violations.push(v);
                continue;
            }
            let decl = by_rel
                .get(v.file.as_str())
                .and_then(|f| f.allows.iter().find(|d| d.covers(&v.rule, v.line)));
            match decl {
                Some(d) => {
                    used.insert((v.file.clone(), d.rule.clone(), d.line));
                }
                None => violations.push(v),
            }
        }

        // stale-allow audit: directives that suppressed nothing
        let mut warnings = Vec::new();
        for f in &self.files {
            for d in &f.allows {
                if !used.contains(&(f.rel.clone(), d.rule.clone(), d.line)) {
                    warnings.push(Violation {
                        file: f.rel.clone(),
                        line: d.line,
                        rule: "L000".to_string(),
                        message: format!(
                            "stale `// lint: allow({})`: no {} diagnostic here any more; \
                             remove the directive",
                            d.rule, d.rule
                        ),
                        suggestion: None,
                    });
                }
            }
            // unused-atomic-mark audit: an `atomic(proto)` directive
            // must bind a declaration or cover an access site
            for m in &f.atomic_marks {
                let binds_decl = f.atomics.iter().any(|a| a.declared && m.covers(a.line));
                let binds_access = f
                    .fns
                    .iter()
                    .flat_map(|fun| fun.atomic_accesses.iter())
                    .any(|a| m.covers(a.line));
                if !binds_decl && !binds_access {
                    warnings.push(Violation {
                        file: f.rel.clone(),
                        line: m.line,
                        rule: "L000".to_string(),
                        message: format!(
                            "unused `// lint: atomic({})` annotation: no atomic declaration or \
                             access on the next line; move it above the field or access, or \
                             remove it",
                            m.protocol
                        ),
                        suggestion: None,
                    });
                }
            }
        }

        sort(&mut violations);
        sort(&mut warnings);
        Report { violations, warnings }
    }

    /// Builds the current public-API snapshot over every library file.
    pub fn api_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for f in &self.files {
            if f.krate.is_empty() {
                continue;
            }
            snap.add_items(&f.krate, &f.rel, &f.src_rel, f.class, &f.api);
        }
        snap
    }
}

/// Stable report order: file, then line, then rule.
pub fn sort(violations: &mut [Violation]) {
    violations.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then_with(|| a.rule.cmp(&b.rule))
    });
}

/// Resolves a workspace-relative source path to its owning package and
/// its path inside that package's `src/`.
fn owner(manifests: &[Manifest], rel: &str) -> (String, String) {
    for m in manifests {
        let prefix = if m.dir == Path::new(".") {
            "src/".to_string()
        } else {
            format!("{}/src/", m.dir.to_string_lossy().replace('\\', "/"))
        };
        if let Some(inner) = rel.strip_prefix(&prefix) {
            return (m.name.clone(), inner.to_string());
        }
    }
    (String::new(), rel.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cargo::parse_manifest;

    fn manifest(name: &str, dir: &str) -> Manifest {
        parse_manifest(
            &format!("{dir}/Cargo.toml"),
            Path::new(dir),
            &format!("[package]\nname = \"{name}\"\n"),
        )
        .expect("manifest")
    }

    #[test]
    fn owner_maps_crates_and_root_src() {
        let ms = vec![manifest("emblookup", "."), manifest("emblookup-ann", "crates/ann")];
        assert_eq!(
            owner(&ms, "crates/ann/src/topk.rs"),
            ("emblookup-ann".to_string(), "topk.rs".to_string())
        );
        assert_eq!(
            owner(&ms, "src/lib.rs"),
            ("emblookup".to_string(), "lib.rs".to_string())
        );
        assert_eq!(owner(&ms, "crates/unknown/src/lib.rs").0, "");
    }

    #[test]
    fn central_suppression_covers_layering_and_tracks_usage() {
        let src = "// lint: allow(L005) transitional: moving to core in PR 9\n\
                   use emblookup_core::EmbLookup;\npub fn f() {}\n";
        let f = FileFacts::fixture("crates/tensor/src/lib.rs", "emblookup-tensor", src);
        let ws = Workspace::from_parts(
            vec![manifest("emblookup-tensor", "crates/tensor"), manifest("emblookup-core", "crates/core")],
            vec![f],
        );
        let report = ws.check();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.warnings.is_empty(), "used allow must not be stale: {:?}", report.warnings);
    }

    #[test]
    fn stale_allow_is_warned_not_errored() {
        let src = "// lint: allow(L001) left over from a removed unwrap\npub fn f() {}\n";
        let f = FileFacts::fixture("crates/kg/src/lib.rs", "emblookup-kg", src);
        let ws = Workspace::from_parts(vec![manifest("emblookup-kg", "crates/kg")], vec![f]);
        let report = ws.check();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert_eq!(report.warnings[0].rule, "L000");
        assert_eq!(report.warnings[0].line, 1);
        assert!(report.warnings[0].message.contains("stale"), "{}", report.warnings[0].message);
    }

    #[test]
    fn unused_atomic_mark_is_warned() {
        let src = "\
// lint: atomic(flag) nothing atomic follows
pub struct S { n: u64 }
pub struct T {
    // lint: atomic(counter) bound to a declaration
    hits: AtomicU64,
}
impl T {
    pub fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }
}
";
        let f = FileFacts::fixture("crates/obs/src/lib.rs", "emblookup-obs", src);
        let ws = Workspace::from_parts(vec![manifest("emblookup-obs", "crates/obs")], vec![f]);
        let report = ws.check();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert_eq!(report.warnings[0].line, 1);
        assert!(
            report.warnings[0].message.contains("unused `// lint: atomic(flag)`"),
            "{}",
            report.warnings[0].message
        );
    }

    #[test]
    fn interprocedural_rules_run_through_check() {
        let hot = "// lint: hot-path\nuse emblookup_kg::describe;\n\
                   pub fn score(n: u32) -> usize { describe(n).len() }\n";
        let leaf = "pub fn describe(n: u32) -> String { format!(\"node {n}\") }\n";
        let kg = manifest("emblookup-kg", "crates/kg");
        let ann = parse_manifest(
            "crates/ann/Cargo.toml",
            Path::new("crates/ann"),
            "[package]\nname = \"emblookup-ann\"\n[dependencies]\nemblookup-kg.workspace = true\n",
        )
        .expect("manifest");
        let ws = Workspace::from_parts(
            vec![kg, ann],
            vec![
                FileFacts::fixture("crates/kg/src/lib.rs", "emblookup-kg", leaf),
                FileFacts::fixture("crates/ann/src/flat.rs", "emblookup-ann", hot),
            ],
        );
        let report = ws.check();
        let l010: Vec<_> = report.violations.iter().filter(|v| v.rule == "L010").collect();
        assert_eq!(l010.len(), 1, "{:?}", report.violations);
        assert!(l010[0].message.contains("transitively allocates"), "{}", l010[0].message);
    }
}
