//! Workspace-level analysis: loads every manifest and lintable source
//! file once, then runs the per-file passes (L001–L004, L007), the
//! layering pass (L005) and the API snapshot (L006) over the shared
//! model. This is what the `emblookup-lint` binary drives.

use crate::api::Snapshot;
use crate::cargo::{read_manifests, Manifest};
use crate::engine::{NameRegistry, SourceFile, Violation};
use crate::parser::crate_refs;
use crate::{layers, walk};
use std::path::{Path, PathBuf};

/// One lintable source file with its owning crate resolved.
pub struct WorkspaceFile {
    /// Workspace-relative display path (`crates/ann/src/topk.rs`).
    pub rel: String,
    /// Path inside the owning crate's `src/` (`topk.rs`); drives the
    /// module-path derivation of the API snapshot.
    pub src_rel: String,
    /// Owning package name (`emblookup-ann`); empty when the file sits
    /// outside any known package.
    pub krate: String,
    /// Lexed and analyzed source.
    pub source: SourceFile,
}

/// The loaded workspace model.
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Parsed member manifests (root package + `crates/*`).
    pub manifests: Vec<Manifest>,
    /// Parsed source files, sorted by path.
    pub files: Vec<WorkspaceFile>,
}

impl Workspace {
    /// Reads manifests and sources under `root`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let manifests = read_manifests(root)
            .map_err(|e| format!("reading manifests under {}: {e}", root.display()))?;
        let rels = walk::lintable_files(root)
            .map_err(|e| format!("walking {}: {e}", root.display()))?;
        let mut files = Vec::with_capacity(rels.len());
        for rel_path in rels {
            let rel = rel_path.to_string_lossy().replace('\\', "/");
            let src = std::fs::read_to_string(root.join(&rel_path))
                .map_err(|e| format!("reading {rel}: {e}"))?;
            let (krate, src_rel) = owner(&manifests, &rel);
            files.push(WorkspaceFile {
                source: SourceFile::parse(&rel, &src),
                rel,
                src_rel,
                krate,
            });
        }
        Ok(Workspace { root: root.to_path_buf(), manifests, files })
    }

    /// Runs every per-file pass plus L005 layering. (L006 runs
    /// separately via [`Workspace::api_snapshot`] + [`crate::api::diff`]
    /// because it needs the checked-in lockfile.)
    pub fn check(&self, registry: &NameRegistry) -> Vec<Violation> {
        let mut out = Vec::new();
        out.extend(layers::check_manifests(&self.manifests));
        for f in &self.files {
            out.extend(f.source.check(registry));
            if !f.krate.is_empty() {
                let refs = crate_refs(&f.source);
                out.extend(layers::check_source(&f.source, &f.krate, &refs));
            }
        }
        sort(&mut out);
        out
    }

    /// Builds the current public-API snapshot over every library file.
    pub fn api_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for f in &self.files {
            if f.krate.is_empty() {
                continue;
            }
            snap.add_file(&f.krate, &f.rel, &f.src_rel, &f.source);
        }
        snap
    }
}

/// Stable report order: file, then line, then rule.
pub fn sort(violations: &mut [Violation]) {
    violations.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then_with(|| a.rule.cmp(&b.rule))
    });
}

/// Resolves a workspace-relative source path to its owning package and
/// its path inside that package's `src/`.
fn owner(manifests: &[Manifest], rel: &str) -> (String, String) {
    for m in manifests {
        let prefix = if m.dir == Path::new(".") {
            "src/".to_string()
        } else {
            format!("{}/src/", m.dir.to_string_lossy().replace('\\', "/"))
        };
        if let Some(inner) = rel.strip_prefix(&prefix) {
            return (m.name.clone(), inner.to_string());
        }
    }
    (String::new(), rel.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cargo::parse_manifest;

    fn manifest(name: &str, dir: &str) -> Manifest {
        parse_manifest(
            &format!("{dir}/Cargo.toml"),
            Path::new(dir),
            &format!("[package]\nname = \"{name}\"\n"),
        )
        .expect("manifest")
    }

    #[test]
    fn owner_maps_crates_and_root_src() {
        let ms = vec![manifest("emblookup", "."), manifest("emblookup-ann", "crates/ann")];
        assert_eq!(
            owner(&ms, "crates/ann/src/topk.rs"),
            ("emblookup-ann".to_string(), "topk.rs".to_string())
        );
        assert_eq!(
            owner(&ms, "src/lib.rs"),
            ("emblookup".to_string(), "lib.rs".to_string())
        );
        assert_eq!(owner(&ms, "crates/unknown/src/lib.rs").0, "");
    }
}
