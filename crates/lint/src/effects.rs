//! The effect lattice propagated over the call graph.
//!
//! Each function gets a bitset of effects; a call edge joins the
//! callee's bits into the caller (set union — the lattice join), and a
//! worklist iterates to the least fixed point. Recursion is handled
//! naturally: a cycle's members converge on the union of the cycle's
//! seeds. Every `(function, bit)` pair keeps one **witness** — the
//! local seed or the call that first introduced the bit — so
//! diagnostics can print a concrete chain from any function down to the
//! line that causes the effect (DESIGN.md §1.2).
//!
//! Alongside the effect bits, the same fixed point computes each
//! function's *transitive lock-acquisition set* (which lock keys it may
//! take, directly or through callees), the substrate of the L009
//! cross-crate lock-order graph.

use crate::callgraph::{CallGraph, POOLWAIT_NAMES, SUBMIT_NAMES};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Allocates on the heap (the L002 vocabulary: `format!`,
/// `.to_string()`, `.to_owned()`, `Box::new`, `String::from`).
pub const ALLOC: u8 = 1 << 0;
/// Acquires a `Mutex`/`RwLock`.
pub const LOCKS: u8 = 1 << 1;
/// Blocks the calling thread (`sleep`, channel `recv`, `join()`).
pub const BLOCKS: u8 = 1 << 2;
/// May panic (`unwrap`/`expect`/`panic!`/`unreachable!`/…).
pub const PANICS: u8 = 1 << 3;
/// Produces results whose order depends on unordered iteration or
/// thread interleaving (an L008 determinism hazard).
pub const NONDET: u8 = 1 << 4;
/// Submits work to the compute pool (`Pool::submit`/`try_submit`).
pub const SUBMITS: u8 = 1 << 5;
/// Waits for pool fan-out to complete (`parallel_for`/`parallel_map`
/// family) — blocking with respect to the bounded injector.
pub const POOLWAIT: u8 = 1 << 6;

/// Human-readable name of a single effect bit.
pub fn bit_name(bit: u8) -> &'static str {
    match bit {
        ALLOC => "allocates",
        LOCKS => "locks",
        BLOCKS => "blocks",
        PANICS => "panics",
        NONDET => "nondeterministic-order",
        SUBMITS => "submits-to-pool",
        POOLWAIT => "waits-on-pool",
        _ => "unknown",
    }
}

/// Why a function carries an effect bit: a local seed, or a call to a
/// callee that carries it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// Seeded in the function body.
    Local {
        /// 1-based line of the seed.
        line: u32,
        /// Seed description.
        what: String,
    },
    /// Inherited through a call.
    Call {
        /// 1-based line of the call site.
        line: u32,
        /// Callee node index.
        callee: usize,
    },
}

/// Fixed-point result over a [`CallGraph`].
pub struct Effects {
    /// `effects[node]` — the node's effect bitset.
    pub effects: Vec<u8>,
    /// One witness per `(node, bit)`; key is `(node, bit)`.
    pub witness: BTreeMap<(usize, u8), Witness>,
    /// Transitive lock-acquisition keys per node (crate-qualified).
    pub acquires: Vec<BTreeSet<String>>,
    /// For each `(node, key)` in the transitive set: the local line or
    /// call that introduces it.
    pub acq_witness: BTreeMap<(usize, String), Witness>,
}

const ALL_BITS: [u8; 7] = [ALLOC, LOCKS, BLOCKS, PANICS, NONDET, SUBMITS, POOLWAIT];

/// Crate-qualified lock key for a file-local receiver ident.
pub fn lock_key(krate: &str, ident: &str) -> String {
    format!("{krate}::{ident}")
}

/// Propagates seeds over the graph to the least fixed point.
pub fn propagate(g: &CallGraph) -> Effects {
    let n = g.nodes.len();
    let mut effects = vec![0u8; n];
    let mut witness: BTreeMap<(usize, u8), Witness> = BTreeMap::new();
    let mut acquires: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut acq_witness: BTreeMap<(usize, String), Witness> = BTreeMap::new();

    // reverse edges: callee -> callers (for worklist re-queueing)
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, per_call) in g.resolved.iter().enumerate() {
        for cands in per_call {
            for &j in cands {
                if !callers[j].contains(&i) {
                    callers[j].push(i);
                }
            }
        }
    }

    // seed pass
    for (i, node) in g.nodes.iter().enumerate() {
        // a `lock(…)` call that resolves to a workspace-defined helper
        // carries that helper's own effects (and its allow directives)
        // through the call edge; the call-site idiom seed only stands
        // in when resolution fails
        let mut resolved_lock_lines: BTreeSet<u32> = BTreeSet::new();
        for (ci, c) in node.fact.calls.iter().enumerate() {
            if c.name == "lock" && !c.is_method && !g.resolved[i][ci].is_empty() {
                resolved_lock_lines.insert(c.line);
            }
        }
        for s in &node.fact.seeds {
            if s.effect == LOCKS
                && s.what.starts_with("`lock(…)`")
                && resolved_lock_lines.contains(&s.line)
            {
                continue;
            }
            if effects[i] & s.effect == 0 {
                effects[i] |= s.effect;
                witness.insert((i, s.effect), Witness::Local { line: s.line, what: s.what.clone() });
            }
        }
        for a in &node.fact.acquires {
            let key = lock_key(&node.krate, &a.key);
            if acquires[i].insert(key.clone()) {
                acq_witness.insert(
                    (i, key),
                    Witness::Local { line: a.line, what: "lock acquired here".to_string() },
                );
            }
        }
        for c in &node.fact.calls {
            let bit = if SUBMIT_NAMES.contains(&c.name.as_str()) {
                Some(SUBMITS)
            } else if POOLWAIT_NAMES.contains(&c.name.as_str()) {
                Some(POOLWAIT)
            } else {
                None
            };
            if let Some(b) = bit {
                if effects[i] & b == 0 {
                    effects[i] |= b;
                    witness.insert(
                        (i, b),
                        Witness::Local { line: c.line, what: format!("`{}(…)`", c.name) },
                    );
                }
            }
        }
    }

    // worklist to fixed point
    let mut queue: Vec<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(i) = queue.pop() {
        queued[i] = false;
        // join callee facts into i
        let mut new_bits = effects[i];
        let mut new_keys: Vec<(String, Witness)> = Vec::new();
        for (ci, cands) in g.resolved[i].iter().enumerate() {
            let call = &g.nodes[i].fact.calls[ci];
            for &j in cands {
                if j == i {
                    continue;
                }
                let missing = effects[j] & !new_bits;
                if missing != 0 {
                    new_bits |= missing;
                    for &b in &ALL_BITS {
                        if missing & b != 0 {
                            witness
                                .entry((i, b))
                                .or_insert(Witness::Call { line: call.line, callee: j });
                        }
                    }
                }
                for k in &acquires[j] {
                    if !acquires[i].contains(k) {
                        new_keys.push((k.clone(), Witness::Call { line: call.line, callee: j }));
                    }
                }
            }
        }
        let mut changed = new_bits != effects[i];
        effects[i] = new_bits;
        for (k, w) in new_keys {
            if acquires[i].insert(k.clone()) {
                acq_witness.entry((i, k)).or_insert(w);
                changed = true;
            }
        }
        if changed {
            for c in callers[i].clone() {
                if !queued[c] {
                    queued[c] = true;
                    queue.push(c);
                }
            }
        }
    }

    Effects { effects, witness, acquires, acq_witness }
}

impl Effects {
    /// Renders the witness chain for `(node, bit)` as
    /// `` `fn` (file:line) → … → `leaf` (file:line: what) ``, capped at
    /// 12 hops.
    pub fn chain(&self, g: &CallGraph, mut node: usize, bit: u8) -> String {
        let mut hops: Vec<String> = Vec::new();
        let mut seen = BTreeSet::new();
        for _ in 0..12 {
            if !seen.insert(node) {
                hops.push("…".to_string());
                break;
            }
            let nd = &g.nodes[node];
            match self.witness.get(&(node, bit)) {
                Some(Witness::Local { line, what }) => {
                    hops.push(format!("`{}` ({}:{}: {what})", nd.fact.name, nd.file, line));
                    break;
                }
                Some(Witness::Call { line, callee }) => {
                    hops.push(format!("`{}` ({}:{})", nd.fact.name, nd.file, line));
                    node = *callee;
                }
                None => {
                    hops.push(format!("`{}` ({}:{})", nd.fact.name, nd.file, nd.fact.line));
                    break;
                }
            }
        }
        hops.join(" → ")
    }

    /// Renders the chain from `node` to where lock `key` is acquired.
    pub fn acq_chain(&self, g: &CallGraph, mut node: usize, key: &str) -> String {
        let mut hops: Vec<String> = Vec::new();
        let mut seen = BTreeSet::new();
        for _ in 0..12 {
            if !seen.insert(node) {
                hops.push("…".to_string());
                break;
            }
            let nd = &g.nodes[node];
            match self.acq_witness.get(&(node, key.to_string())) {
                Some(Witness::Local { line, .. }) => {
                    hops.push(format!(
                        "`{}` ({}:{}: acquires `{key}`)",
                        nd.fact.name, nd.file, line
                    ));
                    break;
                }
                Some(Witness::Call { line, callee }) => {
                    hops.push(format!("`{}` ({}:{})", nd.fact.name, nd.file, line));
                    node = *callee;
                }
                None => {
                    hops.push(format!("`{}` ({}:{})", nd.fact.name, nd.file, nd.fact.line));
                    break;
                }
            }
        }
        hops.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::facts::FileFacts;

    fn graph(files: &[FileFacts]) -> CallGraph {
        let manifests: Vec<_> = files
            .iter()
            .map(|f| {
                let dir = format!("crates/{}", f.krate.trim_start_matches("emblookup-"));
                crate::cargo::parse_manifest(
                    &format!("{dir}/Cargo.toml"),
                    std::path::Path::new(&dir),
                    &format!("[package]\nname = \"{}\"\n", f.krate),
                )
                .expect("fixture manifest")
            })
            .collect();
        CallGraph::build(&manifests, files)
    }

    #[test]
    fn effects_propagate_transitively_across_crates() {
        let a = FileFacts::fixture(
            "crates/kg/src/lib.rs",
            "emblookup-kg",
            "pub fn leaf() { let s = format!(\"x\"); }\n",
        );
        let b = FileFacts::fixture(
            "crates/core/src/lib.rs",
            "emblookup-core",
            "use emblookup_kg::leaf;\npub fn mid() { leaf(); }\npub fn top() { mid(); }\n",
        );
        let g = graph(&[a, b]);
        let fx = propagate(&g);
        let top = g.nodes.iter().position(|n| n.fact.name == "top").unwrap();
        assert!(fx.effects[top] & ALLOC != 0, "ALLOC must reach `top` two hops up");
        let chain = fx.chain(&g, top, ALLOC);
        assert!(chain.contains("`top`") && chain.contains("`mid`") && chain.contains("`leaf`"), "{chain}");
        assert!(chain.contains("crates/kg/src/lib.rs"), "{chain}");
    }

    #[test]
    fn recursion_converges() {
        let a = FileFacts::fixture(
            "crates/kg/src/lib.rs",
            "emblookup-kg",
            "pub fn even(n: u32) -> bool { if n == 0 { true } else { odd(n - 1) } }\n\
             pub fn odd(n: u32) -> bool { if n == 0 { let s = format!(\"x\"); false } else { even(n - 1) } }\n",
        );
        let g = graph(&[a]);
        let fx = propagate(&g);
        for n in 0..g.nodes.len() {
            assert!(fx.effects[n] & ALLOC != 0, "cycle member missing ALLOC");
        }
    }

    #[test]
    fn transitive_acquires_cross_function_boundaries() {
        let a = FileFacts::fixture(
            "crates/obs/src/lib.rs",
            "emblookup-obs",
            "pub struct R { inner: std::sync::Mutex<u32> }\n\
             impl R {\n  pub fn bump(&self) { let g = self.inner.lock(); }\n}\n\
             pub fn touch(r: &R) { r.bump(); }\n",
        );
        let g = graph(&[a]);
        let fx = propagate(&g);
        let touch = g.nodes.iter().position(|n| n.fact.name == "touch").unwrap();
        assert!(
            fx.acquires[touch].contains("emblookup-obs::inner"),
            "{:?}",
            fx.acquires[touch]
        );
    }
}
