//! L008 — determinism: unordered iteration order and thread-order
//! float accumulation must not escape (DESIGN.md §7).

use crate::callgraph::CallGraph;
use crate::effects::{Effects, POOLWAIT, SUBMITS};
use crate::engine::Violation;

/// Emits one violation per determinism site recorded by the scanner.
/// Sites inside functions reachable from pool fan-out get the
/// annotation — the contract is global, but those are the ones that
/// also vary with `EMBLOOKUP_THREADS`.
pub fn check(g: &CallGraph, fx: &Effects) -> Vec<Violation> {
    let parallel = pool_reachable(g, fx);
    let mut out = Vec::new();
    for (i, node) in g.nodes.iter().enumerate() {
        for site in &node.fact.det_sites {
            let mut message = format!("determinism: in `{}`, {}", node.fact.name, site.what);
            if parallel[i] {
                message.push_str(" [reached from pool-parallel code]");
            }
            out.push(Violation {
                file: node.file.clone(),
                line: site.line,
                rule: "L008".to_string(),
                message,
                suggestion: None,
            });
        }
    }
    out
}

/// Forward reachability from every function that submits to or waits on
/// the pool: an over-approximation of "code that may run per pool
/// task / whose output feeds a parallel merge".
fn pool_reachable(g: &CallGraph, fx: &Effects) -> Vec<bool> {
    let n = g.nodes.len();
    let mut mark = vec![false; n];
    let mut stack: Vec<usize> = (0..n)
        .filter(|&i| fx.effects[i] & (SUBMITS | POOLWAIT) != 0)
        .collect();
    while let Some(i) = stack.pop() {
        if mark[i] {
            continue;
        }
        mark[i] = true;
        for cands in &g.resolved[i] {
            for &j in cands {
                if !mark[j] {
                    stack.push(j);
                }
            }
        }
    }
    mark
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::propagate;
    use crate::facts::FileFacts;

    fn check_src(src: &str) -> Vec<Violation> {
        let f = FileFacts::fixture("crates/kg/src/lib.rs", "emblookup-kg", src);
        let m = crate::cargo::parse_manifest(
            "crates/kg/Cargo.toml",
            std::path::Path::new("crates/kg"),
            "[package]\nname = \"emblookup-kg\"\n",
        )
        .expect("fixture manifest");
        let g = CallGraph::build(&[m], &[f]);
        let fx = propagate(&g);
        check(&g, &fx)
    }

    #[test]
    fn golden_unsorted_collect_diagnostic() {
        let src = "\
use std::collections::HashMap;
pub fn ids(counts: &HashMap<u32, u32>) -> Vec<u32> {
    counts.keys().copied().collect()
}
";
        let v = check_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule.as_str(), v[0].line), ("L008", 3));
        assert_eq!(
            v[0].message,
            "determinism: in `ids`, iteration order of `counts` (HashMap/HashSet) escapes \
             into a collected sequence; sort the result or use a BTree container"
        );
    }

    #[test]
    fn pool_parallel_reachability_is_annotated() {
        let src = "\
use std::collections::HashMap;
pub fn fan_out(p: &Pool) { p.parallel_for(0, 8, |i| shard(i)); }
pub fn shard(i: usize) {}
pub fn weigh(w: &HashMap<u32, f32>) -> f32 { w.values().sum::<f32>() }
pub fn run(p: &Pool, w: &HashMap<u32, f32>) -> f32 { fan_out(p); weigh(w) }
";
        let v = check_src(src);
        assert_eq!(v.len(), 1, "{v:?}");
        // `weigh` is called from `run`, which fans out — annotated?
        // reachability is *from* fan-out roots through their callees;
        // `run` is a root (transitive POOLWAIT), so `weigh` is marked.
        assert!(v[0].message.ends_with("[reached from pool-parallel code]"), "{}", v[0].message);
    }

    #[test]
    fn sorted_escape_is_clean() {
        let src = "\
use std::collections::HashMap;
pub fn ids(counts: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = counts.keys().copied().collect();
    v.sort_unstable();
    v
}
";
        // binding is type-annotated; the collector cannot tie it to the
        // later sort, so this relies on the let-binding heuristic —
        // use the un-annotated form the codebase prefers
        let src2 = "\
use std::collections::HashMap;
pub fn ids(counts: &HashMap<u32, u32>) -> Vec<u32> {
    let mut v = counts.keys().copied().collect::<Vec<u32>>();
    v.sort_unstable();
    v
}
";
        assert_eq!(check_src(src2).len(), 0, "{:?}", check_src(src2));
        // the annotated form works too: the type annotation names the
        // binding, so the later sort is tied to it
        assert_eq!(check_src(src).len(), 0, "{:?}", check_src(src));
    }

    #[test]
    fn collect_into_annotated_unordered_container_is_absorbed() {
        // re-collecting into a map/set discards iteration order, so
        // nothing escapes — with or without the turbofish
        let src = "\
use std::collections::{HashMap, HashSet};
pub fn invert(m: &HashMap<u32, u32>) -> HashMap<u32, u32> {
    let out: HashMap<u32, u32> = m.iter().map(|(k, v)| (*v, *k)).collect();
    out
}
pub fn keys(m: &HashMap<u32, u32>) -> HashSet<u32> {
    let s: HashSet<u32> = m.keys().copied().collect();
    s
}
";
        assert_eq!(check_src(src).len(), 0, "{:?}", check_src(src));
    }
}
