//! L011 — atomics-ordering discipline: every atomic access site must
//! use an `Ordering` admitted by the field's declared (or inferred)
//! protocol. The protocol model and ordering tables live in
//! [`crate::dataflow`]; this rule joins declarations against the
//! per-function access sites the scanner collected and prints a
//! witness with file:line for both the access and the declaration.
//!
//! Protocol resolution per access, most specific first:
//!
//! 1. an `// lint: atomic(protocol)` directive covering the access
//!    line (the escape for receivers with no nameable declaration,
//!    e.g. enum payload bindings);
//! 2. a declaration with the receiver's name in the same file;
//! 3. a unique declaration with that name elsewhere in the same crate;
//! 4. otherwise the access is *unbound* and checked as `counter`
//!    (permissive) — the `--atomics-report` lists these separately so
//!    they stay visible.

use crate::dataflow::{expected_orderings, ordering_allowed};
use crate::engine::Violation;
use crate::facts::FileFacts;
use std::collections::HashMap;

/// Checks every non-test atomic access in `files` against its
/// resolved protocol.
pub fn check(files: &[FileFacts]) -> Vec<Violation> {
    // (krate, field name) → (file, decl line, protocol) for cross-file
    // resolution; None marks an ambiguous name
    type DeclSite<'a> = Option<(&'a str, u32, &'a str)>;
    let mut by_crate: HashMap<(&str, &str), DeclSite> = HashMap::new();
    for f in files {
        for d in &f.atomics {
            by_crate
                .entry((f.krate.as_str(), d.name.as_str()))
                .and_modify(|e| *e = None)
                .or_insert(Some((f.rel.as_str(), d.line, d.protocol.as_str())));
        }
    }

    let mut out = Vec::new();
    for f in files {
        for func in &f.fns {
            if func.is_test {
                continue;
            }
            for a in &func.atomic_accesses {
                let (protocol, provenance) =
                    if let Some(m) = f.atomic_marks.iter().find(|m| m.covers(a.line)) {
                        (m.protocol.as_str(), format!("directive at {}:{}", f.rel, m.line))
                    } else if let Some(d) = f.atomics.iter().find(|d| d.name == a.field) {
                        let src = if d.declared { "declared" } else { "inferred" };
                        (d.protocol.as_str(), format!("{src} at {}:{}", f.rel, d.line))
                    } else if let Some(Some((file, line, proto))) =
                        by_crate.get(&(f.krate.as_str(), a.field.as_str()))
                    {
                        (*proto, format!("declared at {file}:{line}"))
                    } else {
                        continue; // unbound: counter, permissive
                    };
                // the success ordering (first argument) carries the
                // protocol obligation; a CAS failure ordering may relax
                let Some(ordering) = a.orderings.first() else { continue };
                if ordering_allowed(protocol, &a.method, ordering) {
                    continue;
                }
                out.push(Violation {
                    file: f.rel.clone(),
                    line: a.line,
                    rule: "L011".to_string(),
                    message: format!(
                        "atomic `{}` follows the `{}` protocol ({provenance}) but \
                         `{}.{}({})` in `{}` ({}:{}) uses `{ordering}`; `{}` here requires {} — \
                         fix the ordering or re-declare the protocol with \
                         `// lint: atomic(…) reason`",
                        a.field,
                        protocol,
                        a.field,
                        a.method,
                        a.orderings.join(", "),
                        func.name,
                        f.rel,
                        a.line,
                        a.method,
                        expected_orderings(protocol, &a.method),
                    ),
                    suggestion: None,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        check(&[FileFacts::fixture("crates/obs/src/ring.rs", "emblookup-obs", src)])
    }

    #[test]
    fn golden_ring_head_relaxed_publish_is_flagged() {
        // the exact shape of the pre-fix flight-recorder bug: Relaxed
        // fetch_add publishing a slot write, Relaxed load scanning it
        let src = "\
pub struct Ring {
    // lint: atomic(ring_head) publishes slot writes to scanners
    head: AtomicU64,
}
impl Ring {
    pub fn record(&self) -> u64 { self.head.fetch_add(1, Ordering::Relaxed) }
    pub fn recent(&self) -> u64 { self.head.load(Ordering::Relaxed) }
}
";
        let v = run(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "L011"));
        assert_eq!(
            v[0].message,
            "atomic `head` follows the `ring_head` protocol (declared at \
             crates/obs/src/ring.rs:3) but `head.fetch_add(Relaxed)` in `record` \
             (crates/obs/src/ring.rs:6) uses `Relaxed`; `fetch_add` here requires \
             Release, AcqRel, or SeqCst — fix the ordering or re-declare the protocol \
             with `// lint: atomic(…) reason`",
        );
        assert!(v[1].message.contains("`load` here requires Acquire or SeqCst"), "{}", v[1].message);
    }

    #[test]
    fn conforming_protocol_accesses_are_silent() {
        let src = "\
pub struct Ring {
    // lint: atomic(ring_head) publishes slot writes
    head: AtomicU64,
    // lint: atomic(flag) shutdown publication
    stop: AtomicBool,
    recorded: AtomicU64,
}
impl Ring {
    pub fn record(&self) -> u64 {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        self.head.fetch_add(1, Ordering::Release)
    }
    pub fn drain(&self) -> bool {
        let _ = self.head.load(Ordering::Acquire);
        self.stop.load(Ordering::Acquire)
    }
    pub fn shutdown(&self) { self.stop.store(true, Ordering::Release); }
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn seqlock_checks_the_cas_success_ordering_only() {
        let src = "\
pub struct Slot {
    // lint: atomic(seqlock) version word
    version: AtomicU64,
}
impl Slot {
    pub fn claim(&self, v: u64) {
        self.version.compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed);
    }
    pub fn torn(&self, v: u64) {
        self.version.compare_exchange(v, v + 1, Ordering::Relaxed, Ordering::Relaxed);
    }
}
";
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 10);
    }

    #[test]
    fn directive_on_the_access_line_overrides_the_default() {
        // enum payload binding: no declaration can carry the annotation,
        // so the access line carries it instead
        let src = "\
pub fn now(ns: &AtomicU64) -> u64 {
    // lint: atomic(flag) virtual clock publication
    ns.load(Ordering::Relaxed)
}
";
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("directive at crates/obs/src/ring.rs:2"), "{}", v[0].message);
    }

    #[test]
    fn cross_file_unique_declaration_binds_the_access() {
        let decl = "\
pub struct Gauge {
    // lint: atomic(flag) armed marker
    armed: AtomicBool,
}
";
        let user = "\
impl Gauge {
    pub fn arm(&self) { self.armed.store(true, Ordering::Relaxed); }
}
";
        let v = check(&[
            FileFacts::fixture("crates/obs/src/decl.rs", "emblookup-obs", decl),
            FileFacts::fixture("crates/obs/src/user.rs", "emblookup-obs", user),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("declared at crates/obs/src/decl.rs:3"), "{}", v[0].message);
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = "\
pub struct S {
    // lint: atomic(flag) marker
    stop: AtomicBool,
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { S::default().stop.store(true, Ordering::Relaxed); }
}
";
        assert!(run(src).is_empty());
    }
}
