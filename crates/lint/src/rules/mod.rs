//! Interprocedural rule families (L008–L013) and the single-source
//! rule documentation table behind `--explain` and the CONTRIBUTING.md
//! catalog check.
//!
//! The per-file rules (L001–L004, L007) live in [`crate::engine`]; the
//! workspace rules L005/L006 in [`crate::layers`] / [`crate::api`].
//! This module owns the rules that need the call graph
//! ([`crate::callgraph`]) and the propagated effect lattice
//! ([`crate::effects`]). All violations returned here are **raw** — the
//! workspace driver applies `// lint: allow` directives centrally so
//! their usage feeds the stale-allow audit.

pub mod atomics;
pub mod deadline;
pub mod determinism;
pub mod hotpath;
pub mod locks;
pub mod shared;

use crate::callgraph::CallGraph;
use crate::cargo::Manifest;
use crate::effects::{propagate, Effects};
use crate::engine::Violation;
use crate::facts::FileFacts;

/// Documentation for one rule: rationale, example, escape-hatch policy.
/// The single source for `--explain` and the CONTRIBUTING.md catalog
/// check.
pub struct RuleDoc {
    /// Rule id (`L001`…).
    pub id: &'static str,
    /// One-line title.
    pub title: &'static str,
    /// What the rule enforces and why.
    pub rationale: &'static str,
    /// A minimal offending example.
    pub example: &'static str,
    /// When (and how) an allow is acceptable.
    pub escape: &'static str,
}

/// Every rule the engine can emit, in id order.
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        id: "L000",
        title: "well-formed lint directives",
        rationale: "A `// lint: allow(Lxxx)` without a reason, or with an unknown rule id, is \
                    itself an error: silent suppressions rot. L000 findings are never \
                    suppressible.",
        example: "// lint: allow(L001)\nvalue.unwrap();",
        escape: "None. Fix the directive (add the reason) or delete it.",
    },
    RuleDoc {
        id: "L001",
        title: "panic-freedom in library code",
        rationale: "No `unwrap()`/`expect()`/`panic!`/`unreachable!`/`todo!` in non-test library \
                    code. A panic in a pool worker poisons shared state and kills the request; \
                    the serving layer must degrade, not die. Binaries and test code are exempt.",
        example: "let v = map.get(&k).unwrap(); // library code",
        escape: "Allowed with a documented invariant the type system cannot express, e.g. \
                 `// lint: allow(L001) index is in-bounds by construction`. The allow also \
                 absolves transitive callers under L010.",
    },
    RuleDoc {
        id: "L002",
        title: "hot-path hygiene (textual)",
        rationale: "Files marked `// lint: hot-path` must not take locks, sleep, or heap-allocate \
                    per call (`format!`, `.to_string()`, `.to_owned()`, `Box::new`, \
                    `String::from`), and every `unsafe` block needs an `allow(L002)` soundness \
                    argument. `#[target_feature]` is confined to `kernels.rs`, the one module \
                    whose runtime dispatch guarantees the feature is present. Allocation and \
                    lock traffic in the search inner loop is the difference between the paper's \
                    latency numbers and noise.",
        example: "// lint: hot-path\npub fn search(&self) { let s = format!(\"q{}\", n); }",
        escape: "Allowed for setup/teardown code inside a hot-path file that is provably outside \
                 the per-query loop, with the reason stating so. See L010 for the \
                 interprocedural upgrade.",
    },
    RuleDoc {
        id: "L003",
        title: "metric/span name provenance",
        rationale: "Metric and span names come from `emblookup_obs::names` constants, so the \
                    observable surface is greppable and typo-proof. Any literal equal to a \
                    registered name, or an unregistered literal in a metric-position call, is a \
                    violation.",
        example: "obs.counter(\"lookup_cache_hits\", 1); // literal, not names::CACHE_HITS",
        escape: "Rarely allowed; register the name in `emblookup_obs::names` instead. \
                 `--fix-metric-names --write` rewrites literals onto their constants.",
    },
    RuleDoc {
        id: "L004",
        title: "task-marker hygiene",
        rationale: "`TODO`/`FIXME` comments must carry an issue reference (`#123` or a URL); \
                    unanchored markers are where work goes to be forgotten.",
        example: "// TODO: handle the empty shard case",
        escape: "None; add the reference or do the work.",
    },
    RuleDoc {
        id: "L005",
        title: "crate layering",
        rationale: "Dependencies must flow down the declared layer DAG (DESIGN.md §1.1): \
                    rand/obs → pool → text → ann → tensor → kg → embed → core → serve → \
                    baselines/semtab/bench → emblookup (ann sits below tensor so the matmul \
                    inner loop can dispatch through ann's SIMD kernel layer, DESIGN.md §10). \
                    Both manifest edges and source-level `emblookup_*::` paths are checked. \
                    `emblookup-lint` is isolated (obs only, nothing depends on it).",
        example: "// in crates/tensor\nuse emblookup_core::EmbLookup;",
        escape: "Source-side escapes need `// lint: allow(L005) reason` and are intended for \
                 short-lived transitions; manifest edges have no escape.",
    },
    RuleDoc {
        id: "L006",
        title: "public-API drift",
        rationale: "The normalized `pub` surface of every library crate is snapshotted into \
                    `API.lock`; `--api-check` fails on any difference. The lockfile hunk in a PR \
                    is the reviewable record of the API change.",
        example: "pub fn new_helper() {} // not yet blessed into API.lock",
        escape: "Not an allow — run `emblookup-lint --api-bless` and commit the `API.lock` diff. \
                 Never hand-edit the lockfile.",
    },
    RuleDoc {
        id: "L007",
        title: "float discipline",
        rationale: "No `==`/`!=` on visible floats, no `.partial_cmp(..).unwrap()` chains, no \
                    `partial_cmp`-based comparators in sorts (inconsistent on NaN — and a \
                    panicking comparator aborts the pool worker mid-merge). Use `total_cmp` or \
                    an explicit tolerance.",
        example: "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());",
        escape: "Allowed only where NaN is structurally impossible and the reason says why, e.g. \
                 comparing against a compile-time constant.",
    },
    RuleDoc {
        id: "L008",
        title: "determinism: unordered iteration and reduction order",
        rationale: "DESIGN.md §7 promises bit-identical results at `EMBLOOKUP_THREADS=1` vs \
                    default. `HashMap`/`HashSet` iteration order escaping into returned or \
                    collected sequences, metric emission, or float reductions silently breaks \
                    that contract — the exact bug class the `GradBuffer` fixed-index-order merge \
                    exists to prevent. The analyzer flags escaping iteration sites and float \
                    accumulation through atomic bit-casts; findings in code reachable from pool \
                    fan-out are annotated as such.",
        example: "pub fn ids(counts: &HashMap<u32, u32>) -> Vec<u32> {\n    counts.keys().copied().collect() // order differs run to run\n}",
        escape: "Sort before the order escapes (`v.sort_unstable()`), collect into a BTree \
                 container, or — when order is genuinely immaterial, e.g. a diagnostic dump — \
                 `// lint: allow(L008) order immaterial: <why>`.",
    },
    RuleDoc {
        id: "L009",
        title: "lock discipline: ordering and pool interaction",
        rationale: "Two families: (a) the workspace-wide lock-acquisition-order graph must be \
                    acyclic — an A→B edge in one crate and B→A in another is a deadlock waiting \
                    for load; (b) no lock guard may be held across `Pool::submit`/`try_submit`, \
                    the `parallel_*` fan-out family, or a blocking call — with the bounded \
                    injector from PR 5, submit can block on a full queue while workers need the \
                    held lock to drain it. Diagnostics print the acquisition chain with \
                    file:line per hop.",
        example: "let g = self.state.lock();\npool.submit(move || work()); // guard held across submit",
        escape: "Restructure so the guard drops first (`drop(g)`), or \
                 `// lint: allow(L009) reason` when the callee provably never touches the pool \
                 (say why).",
    },
    RuleDoc {
        id: "L010",
        title: "interprocedural hot-path effects",
        rationale: "L001/L002 upgraded over the propagated effect lattice: `// lint: hot-path` \
                    now means *transitively* panic-, lock-, and allocation-free. A hot-path \
                    function calling an allocating helper one crate over no longer passes the \
                    gate; the diagnostic prints the offending call chain \
                    (`search → score_block → format!`) with file:line per hop.",
        example: "// lint: hot-path\npub fn search(&self) { self.stats.describe(); } // describe() → format!",
        escape: "Either fix the leaf (preferred), justify the leaf itself (`allow(L001)` / \
                 `allow(L002)` there — the justification is inherited), or \
                 `// lint: allow(L010) reason` at the call site for amortized effects, e.g. a \
                 batch fan-out that locks once per query batch.",
    },
    RuleDoc {
        id: "L011",
        title: "atomics-ordering discipline",
        rationale: "Every atomic field follows a declared protocol \
                    (`// lint: atomic(counter|flag|seqlock|ring_head|refcount) reason` on the \
                    line above the declaration; un-annotated atomics are inferred as `counter`), \
                    and every load/store/RMW/CAS site must use an `Ordering` the protocol \
                    admits — e.g. a `flag` is stored with Release and loaded with Acquire, a \
                    `ring_head` publishes with Release and is scanned with Acquire. The tables \
                    live in `crates/lint/src/dataflow.rs` and DESIGN.md §1.3; \
                    `--atomics-report` regenerates the committed ATOMICS.md inventory.",
        example: "// lint: atomic(ring_head) publishes slot writes\nhead: AtomicU64,\n…\nself.head.fetch_add(1, Ordering::Relaxed) // ring_head publish must be Release",
        escape: "Fix the ordering, or re-declare the protocol (e.g. `atomic(counter)`) when the \
                 field really is a statistic — the reason must say why no reader relies on the \
                 access ordering. `// lint: allow(L011) reason` exists for genuinely mixed \
                 disciplines but re-declaration is preferred.",
    },
    RuleDoc {
        id: "L012",
        title: "deadline propagation from serve handlers",
        rationale: "Every function reachable from a serve request handler (`handle_*` in \
                    `emblookup-serve`) that blocks — a `.recv()`/`.join()`/sleep site, a pool \
                    `submit`, or a `parallel_*` fan-out — must receive a deadline-bearing \
                    parameter (`DeadlineClock`, or a param named `clock`/`deadline`) or be \
                    dominated by a deadline check along every unguarded call path. Otherwise a \
                    slow shard turns the request-deadline machinery from PR 7 into decoration: \
                    the handler has a budget but the work it fans out cannot observe it.",
        example: "pub fn handle_lookup(req: Request) { stage(req) } // stage → drain → rx.recv()\npub fn drain() { rx.recv(); } // no DeadlineClock anywhere on the chain",
        escape: "Pass the handler's `DeadlineClock` down the chain (preferred), dominate the \
                 blocking site with `clock.expired()` / `remaining_ms()`, or \
                 `// lint: allow(L012) reason` when the wait is provably bounded (say by what).",
    },
    RuleDoc {
        id: "L013",
        title: "guard-free shared-state writes",
        rationale: "Assignments to fields of `Arc`-shared types through a `&self` receiver, or \
                    to `static` items, with no lock guard held are data races the type system \
                    did not catch (usually via `unsafe`, interior mutability misuse, or a \
                    `static mut`). The guard tracker from L009 supplies the held-set; sharing \
                    evidence is any `Arc<T>` appearance workspace-wide.",
        example: "impl Registry { pub fn poke(&self) { self.cursor = 1; } }\npub fn install(r: Arc<Registry>) {}",
        escape: "Guard the write with the owning lock, take `&mut self`, make the field atomic \
                 (then L011 governs it), or `// lint: allow(L013) reason` when the write is \
                 provably pre-sharing (e.g. builder code that runs before the Arc is cloned).",
    },
];

/// Looks up the documentation for `id` (case-sensitive, `L008` style).
pub fn rule_doc(id: &str) -> Option<&'static RuleDoc> {
    RULE_DOCS.iter().find(|d| d.id == id)
}

/// Renders the `--explain` text for `id`.
pub fn explain(id: &str) -> Option<String> {
    let d = rule_doc(id)?;
    Some(format!(
        "{} — {}\n\nRationale\n  {}\n\nExample (offending)\n{}\n\nEscape hatch\n  {}\n",
        d.id,
        d.title,
        d.rationale,
        d.example
            .lines()
            .map(|l| format!("  {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
        d.escape,
    ))
}

/// Runs the interprocedural rules over extracted facts. Returns raw
/// violations (central allow suppression happens in the workspace
/// driver) sorted by (file, line, rule).
pub fn run(manifests: &[Manifest], files: &[FileFacts]) -> Vec<Violation> {
    let g = CallGraph::build(manifests, files);
    let fx = propagate(&g);
    run_on(&g, &fx, files)
}

/// Variant over a prebuilt graph + effects (shared with tests).
pub fn run_on(g: &CallGraph, fx: &Effects, files: &[FileFacts]) -> Vec<Violation> {
    let mut out = determinism::check(g, fx);
    out.extend(locks::check(g, fx));
    out.extend(hotpath::check(g, fx));
    out.extend(atomics::check(files));
    out.extend(deadline::check(g));
    out.extend(shared::check(g, files));
    out.sort_by(|a, b| {
        a.file.cmp(&b.file).then_with(|| a.line.cmp(&b.line)).then_with(|| a.rule.cmp(&b.rule))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RULES;

    #[test]
    fn every_rule_has_a_doc_and_every_doc_a_rule() {
        let doc_ids: Vec<&str> = RULE_DOCS.iter().map(|d| d.id).collect();
        for r in RULES {
            assert!(doc_ids.contains(r), "rule {r} missing from RULE_DOCS");
        }
        for id in &doc_ids {
            assert!(
                *id == "L000" || RULES.contains(id),
                "doc {id} has no corresponding rule"
            );
        }
        let mut sorted = doc_ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, doc_ids, "RULE_DOCS must stay in id order");
    }

    #[test]
    fn explain_renders_all_sections() {
        let text = explain("L008").expect("L008 documented");
        for needle in ["L008", "Rationale", "Example", "Escape hatch"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(explain("L999").is_none());
    }

    #[test]
    fn contributing_catalog_documents_every_rule() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../CONTRIBUTING.md");
        let text = std::fs::read_to_string(path).expect("CONTRIBUTING.md readable");
        for d in RULE_DOCS {
            if d.id == "L000" {
                continue; // directive hygiene is documented in prose
            }
            let row = format!("| {} |", d.id);
            assert!(
                text.contains(&row),
                "CONTRIBUTING.md static-analysis catalog is missing a `{row}` row — \
                 add one (the table and RULE_DOCS must stay in sync)"
            );
        }
    }
}
