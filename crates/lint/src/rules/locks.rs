//! L009 — lock discipline: a workspace-wide lock-acquisition-order
//! graph with cycle detection, and detection of guards held across
//! pool submission / fan-out / blocking calls (deadlock risk with the
//! bounded injector).

use crate::callgraph::{CallGraph, POOLWAIT_NAMES, SUBMIT_NAMES};
use crate::effects::{lock_key, Effects, BLOCKS, POOLWAIT, SUBMITS};
use crate::engine::Violation;
use std::collections::{BTreeMap, BTreeSet};

/// Names that block the calling thread directly at the call site.
/// `Condvar::wait` / `wait_timeout` are deliberately absent: in std
/// they exist only on `Condvar`, which *requires* the guard and
/// releases it while waiting (the canonical pool idle loop).
const BLOCKING_NAMES: &[&str] = &["recv", "recv_timeout", "sleep"];

struct Edge {
    file: String,
    line: u32,
    /// Extra chain text for interprocedural edges.
    via: Option<String>,
}

/// Runs both L009 families over the graph.
pub fn check(g: &CallGraph, fx: &Effects) -> Vec<Violation> {
    let mut out = order_cycles(g, fx);
    out.extend(held_across_pool(g, fx));
    out
}

/// Family (a): builds the lock-order graph (edge `A → B` = `B` acquired
/// while `A` is held, locally or through a call chain) and reports each
/// cycle once.
fn order_cycles(g: &CallGraph, fx: &Effects) -> Vec<Violation> {
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (i, node) in g.nodes.iter().enumerate() {
        // local: nested acquisitions in one body
        for a in &node.fact.acquires {
            let to = lock_key(&node.krate, &a.key);
            for h in &a.held {
                let from = lock_key(&node.krate, h);
                if from == to {
                    continue;
                }
                edges.entry((from, to.clone())).or_insert_with(|| Edge {
                    file: node.file.clone(),
                    line: a.line,
                    via: None,
                });
            }
        }
        // interprocedural: a call made with guards held reaches a callee
        // that transitively acquires
        for (ci, cands) in g.resolved[i].iter().enumerate() {
            let call = &node.fact.calls[ci];
            if call.held.is_empty() {
                continue;
            }
            for &j in cands {
                if j == i {
                    continue;
                }
                for key in &fx.acquires[j] {
                    for h in &call.held {
                        let from = lock_key(&node.krate, h);
                        if from == *key {
                            continue;
                        }
                        edges.entry((from, key.clone())).or_insert_with(|| Edge {
                            file: node.file.clone(),
                            line: call.line,
                            via: Some(fx.acq_chain(g, j, key)),
                        });
                    }
                }
            }
        }
    }

    // adjacency + cycle search: for each edge a→b, a path b →* a closes
    // a cycle; report it only from its lexicographically smallest key
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for (a, b) in edges.keys() {
        let Some(path) = shortest_path(&adj, b, a) else { continue };
        // cycle keys: a → b → … → a
        let mut cycle: Vec<String> = Vec::with_capacity(path.len() + 1);
        cycle.push(a.clone());
        cycle.extend(path.iter().map(|s| s.to_string()));
        let min = cycle.iter().min().cloned().unwrap_or_default();
        if min != *a {
            continue; // reported from the canonical start
        }
        // canonical form for dedup (rotation-invariant by min start)
        let mut canon = cycle.clone();
        canon.pop();
        canon.sort();
        if !reported.insert(canon) {
            continue;
        }
        let e = &edges[&(a.clone(), b.clone())];
        let mut msg = format!(
            "lock-order cycle: {} — `{}` is acquired while `{}` is held at {}:{}",
            cycle.join(" → "),
            b,
            a,
            e.file,
            e.line
        );
        if let Some(via) = &e.via {
            msg.push_str(&format!(" via {via}"));
        }
        // cite the closing edges too, so every hop has a location
        for w in cycle.windows(2).skip(1) {
            if let Some(e2) = edges.get(&(w[0].clone(), w[1].clone())) {
                msg.push_str(&format!(
                    "; `{}` then `{}` at {}:{}",
                    w[0], w[1], e2.file, e2.line
                ));
                if let Some(via) = &e2.via {
                    msg.push_str(&format!(" via {via}"));
                }
            }
        }
        out.push(Violation {
            file: e.file.clone(),
            line: e.line,
            rule: "L009".to_string(),
            message: msg,
            suggestion: None,
        });
    }
    out
}

fn shortest_path<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    seen.insert(from);
    while let Some(x) = queue.pop_front() {
        if x == to {
            // rebuild from → … → to
            let mut path = vec![x];
            let mut cur = x;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &y in adj.get(x).into_iter().flatten() {
            if seen.insert(y) {
                prev.insert(y, x);
                queue.push_back(y);
            }
        }
    }
    None
}

/// Family (b): a guard held across pool submission, fan-out, or a
/// blocking call. With the bounded injector, `submit` can block on a
/// full queue while the workers draining it need the held lock.
fn held_across_pool(g: &CallGraph, fx: &Effects) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, node) in g.nodes.iter().enumerate() {
        let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
        for (ci, cands) in g.resolved[i].iter().enumerate() {
            let call = &node.fact.calls[ci];
            if call.held.is_empty() {
                continue;
            }
            let held = call.held.join("`, `");
            if SUBMIT_NAMES.contains(&call.name.as_str())
                || POOLWAIT_NAMES.contains(&call.name.as_str())
            {
                if seen_lines.insert(call.line) {
                    out.push(Violation {
                        file: node.file.clone(),
                        line: call.line,
                        rule: "L009".to_string(),
                        message: format!(
                            "in `{}`, lock guard `{held}` is held across pool call \
                             `{}(…)` — the bounded injector can block here while workers \
                             need the lock; drop the guard first",
                            node.fact.name, call.name
                        ),
                        suggestion: None,
                    });
                }
                continue;
            }
            if BLOCKING_NAMES.contains(&call.name.as_str()) {
                if seen_lines.insert(call.line) {
                    out.push(Violation {
                        file: node.file.clone(),
                        line: call.line,
                        rule: "L009".to_string(),
                        message: format!(
                            "in `{}`, lock guard `{held}` is held across blocking call \
                             `{}(…)`; drop the guard first",
                            node.fact.name, call.name
                        ),
                        suggestion: None,
                    });
                }
                continue;
            }
            for &j in cands {
                if j == i {
                    continue;
                }
                let bad = fx.effects[j] & (BLOCKS | SUBMITS | POOLWAIT);
                if bad != 0 && seen_lines.insert(call.line) {
                    let bit = [SUBMITS, POOLWAIT, BLOCKS]
                        .into_iter()
                        .find(|&b| bad & b != 0)
                        .unwrap_or(BLOCKS);
                    out.push(Violation {
                        file: node.file.clone(),
                        line: call.line,
                        rule: "L009".to_string(),
                        message: format!(
                            "in `{}`, lock guard `{held}` is held across `{}(…)`, which \
                             transitively {}: {}",
                            node.fact.name,
                            call.name,
                            crate::effects::bit_name(bit),
                            fx.chain(g, j, bit)
                        ),
                        suggestion: None,
                    });
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::propagate;
    use crate::facts::FileFacts;

    fn run(files: Vec<FileFacts>) -> (Vec<Violation>, CallGraph) {
        // every fixture crate depends on every other, so method
        // over-approximation sees the whole fixture workspace
        let mut names: Vec<String> = files.iter().map(|f| f.krate.clone()).collect();
        names.sort();
        names.dedup();
        let manifests: Vec<_> = names
            .iter()
            .map(|k| {
                let dir = format!("crates/{}", k.trim_start_matches("emblookup-"));
                let mut text = format!("[package]\nname = \"{k}\"\n[dependencies]\n");
                for other in &names {
                    if other != k {
                        text.push_str(&format!("{other}.workspace = true\n"));
                    }
                }
                crate::cargo::parse_manifest(
                    &format!("{dir}/Cargo.toml"),
                    std::path::Path::new(&dir),
                    &text,
                )
                .expect("fixture manifest")
            })
            .collect();
        let g = CallGraph::build(&manifests, &files);
        let fx = propagate(&g);
        (check(&g, &fx), g)
    }

    #[test]
    fn golden_local_lock_order_cycle() {
        let src = "\
pub struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
impl S {
    pub fn forward(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }
    pub fn backward(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }
}
";
        let (v, _) = run(vec![FileFacts::fixture("crates/obs/src/lib.rs", "emblookup-obs", src)]);
        let cycles: Vec<&Violation> =
            v.iter().filter(|x| x.message.contains("lock-order cycle")).collect();
        assert_eq!(cycles.len(), 1, "{v:?}");
        let m = &cycles[0].message;
        assert!(m.contains("emblookup-obs::a") && m.contains("emblookup-obs::b"), "{m}");
        assert!(m.contains("crates/obs/src/lib.rs:3") || m.contains("crates/obs/src/lib.rs:4"), "{m}");
    }

    #[test]
    fn cross_crate_cycle_via_call_chain_cites_both_hops() {
        let obs = "\
pub struct Reg { names: std::sync::Mutex<u32> }
impl Reg {
    pub fn publish(&self, s: &Sink) { let g = self.names.lock(); s.flush(); }
}
";
        let serve = "\
pub struct Sink { buf: std::sync::Mutex<u32> }
impl Sink {
    pub fn flush(&self) { let g = self.buf.lock(); }
    pub fn drain(&self, r: &emblookup_obs::Reg) { let g = self.buf.lock(); r.rename(); }
}
";
        let obs2 = "\
impl Reg {
    pub fn rename(&self) { let g = self.names.lock(); }
}
";
        let (v, _) = run(vec![
            FileFacts::fixture("crates/obs/src/lib.rs", "emblookup-obs", obs),
            FileFacts::fixture("crates/obs/src/reg2.rs", "emblookup-obs", obs2),
            FileFacts::fixture("crates/serve/src/lib.rs", "emblookup-serve", serve),
        ]);
        let cycles: Vec<&Violation> =
            v.iter().filter(|x| x.message.contains("lock-order cycle")).collect();
        assert_eq!(cycles.len(), 1, "{v:?}");
        let m = &cycles[0].message;
        assert!(m.contains("emblookup-obs::names") && m.contains("emblookup-serve::buf"), "{m}");
        // interprocedural edges carry the acquisition chain
        assert!(m.contains("via"), "{m}");
    }

    #[test]
    fn golden_guard_held_across_submit() {
        let src = "\
pub fn dispatch(pool: &Pool, state: &std::sync::Mutex<u32>) {
    let g = state.lock();
    pool.submit(move || work());
}
pub fn work() {}
";
        let (v, _) = run(vec![FileFacts::fixture("crates/core/src/lib.rs", "emblookup-core", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("held across pool call `submit(…)`"), "{}", v[0].message);
    }

    #[test]
    fn guard_dropped_before_submit_is_clean() {
        let src = "\
pub fn dispatch(pool: &Pool, state: &std::sync::Mutex<u32>) {
    let g = state.lock();
    drop(g);
    pool.submit(move || work());
}
pub fn work() {}
";
        let (v, _) = run(vec![FileFacts::fixture("crates/core/src/lib.rs", "emblookup-core", src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn guard_held_across_transitively_blocking_callee_prints_chain() {
        let kg = "pub fn settle() { std::thread::sleep(d); }\n";
        let core = "\
use emblookup_kg::settle;
pub fn update(state: &std::sync::Mutex<u32>) {
    let g = state.lock();
    settle();
}
";
        let (v, _) = run(vec![
            FileFacts::fixture("crates/kg/src/lib.rs", "emblookup-kg", kg),
            FileFacts::fixture("crates/core/src/lib.rs", "emblookup-core", core),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        let m = &v[0].message;
        assert!(m.contains("transitively blocks"), "{m}");
        assert!(m.contains("`settle` (crates/kg/src/lib.rs:1"), "chain with file:line — {m}");
    }

    #[test]
    fn consumed_guard_chain_is_not_held_across_submit() {
        // `.lock().unwrap().take()` drops the guard at the end of the
        // statement — nothing is held when the pool call follows
        let src = "\
pub fn relay(slot: &std::sync::Mutex<Option<u32>>, pool: &Pool) {
    let v = slot.lock().unwrap().take();
    pool.submit(move || work(v));
}
pub fn work(v: Option<u32>) {}
";
        let (v, _) = run(vec![FileFacts::fixture("crates/core/src/lib.rs", "emblookup-core", src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_chain_still_counts_as_held_guard() {
        // `.lock().unwrap()` (no consuming method) binds a live guard
        let src = "\
pub fn relay(slot: &std::sync::Mutex<u32>, pool: &Pool) {
    let g = slot.lock().unwrap();
    pool.submit(move || work());
}
pub fn work() {}
";
        let (v, _) = run(vec![FileFacts::fixture("crates/core/src/lib.rs", "emblookup-core", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("held across"), "{}", v[0].message);
    }

    #[test]
    fn condvar_wait_timeout_under_guard_is_not_blocking() {
        // the canonical pool idle loop: the condvar *requires* the
        // guard and releases it while parked
        let src = "\
pub fn park(done: &std::sync::Mutex<bool>, cv: &std::sync::Condvar) {
    let guard = done.lock().unwrap();
    let _ = cv.wait_timeout(guard, d);
}
";
        let (v, _) = run(vec![FileFacts::fixture("crates/pool/src/lib.rs", "emblookup-pool", src)]);
        assert!(v.is_empty(), "{v:?}");
    }
}
