//! L013 — guard-free shared-state writes: assignments to fields of
//! `Arc`-shared types through a `&self` receiver, or to `static`
//! items, with no lock guard held — the static complement of a race
//! detector, reusing the L009 guard tracker's held-set bookkeeping.
//!
//! Evidence of sharing is workspace-global: a type name appearing
//! inside `Arc<…>` anywhere marks every `&self` method of that type as
//! potentially concurrent; `static` names are collected per file.
//! Writes through `&mut self` receivers are exclusive by construction
//! and never flagged; atomics have no `=` writes (their mutation goes
//! through the L011-checked methods), and deref writes through lock
//! guards (`*g = …`) are guard-mediated and excluded by the scanner.

use crate::callgraph::CallGraph;
use crate::engine::Violation;
use crate::facts::FileFacts;
use std::collections::HashSet;

/// Checks every recorded write site against the shared-root evidence.
pub fn check(g: &CallGraph, files: &[FileFacts]) -> Vec<Violation> {
    let mut arc_types: HashSet<&str> = HashSet::new();
    let mut statics: HashSet<&str> = HashSet::new();
    for f in files {
        arc_types.extend(f.arc_types.iter().map(String::as_str));
        statics.extend(f.statics.iter().map(String::as_str));
    }

    let mut out = Vec::new();
    for node in &g.nodes {
        for w in &node.fact.writes {
            if !w.held.is_empty() {
                continue;
            }
            let root = w.target.split('.').next().unwrap_or("");
            if root == "self" {
                if node.fact.mut_self
                    || node.fact.self_ty.is_empty()
                    || !arc_types.contains(node.fact.self_ty.as_str())
                {
                    continue;
                }
                out.push(Violation {
                    file: node.file.clone(),
                    line: w.line,
                    rule: "L013".to_string(),
                    message: format!(
                        "unguarded write to `{}` in `{}` ({}:{}): `{}` is Arc-shared and the \
                         receiver is `&self` — guard the write with the owning lock, take \
                         `&mut self`, or make the field atomic",
                        w.target, node.fact.name, node.file, w.line, node.fact.self_ty,
                    ),
                    suggestion: None,
                });
            } else if statics.contains(root) {
                out.push(Violation {
                    file: node.file.clone(),
                    line: w.line,
                    rule: "L013".to_string(),
                    message: format!(
                        "unguarded write to `static {}` in `{}` ({}:{}) — guard the write with \
                         a lock or replace the static with an atomic",
                        w.target, node.fact.name, node.file, w.line,
                    ),
                    suggestion: None,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: Vec<FileFacts>) -> Vec<Violation> {
        let mut names: Vec<String> = files.iter().map(|f| f.krate.clone()).collect();
        names.sort();
        names.dedup();
        let manifests: Vec<_> = names
            .iter()
            .map(|k| {
                let dir = format!("crates/{}", k.trim_start_matches("emblookup-"));
                let text = format!("[package]\nname = \"{k}\"\n[dependencies]\n");
                crate::cargo::parse_manifest(
                    &format!("{dir}/Cargo.toml"),
                    std::path::Path::new(&dir),
                    &text,
                )
                .expect("fixture manifest")
            })
            .collect();
        let g = CallGraph::build(&manifests, &files);
        check(&g, &files)
    }

    #[test]
    fn golden_unguarded_arc_shared_write_is_flagged() {
        let src = "\
pub struct Registry {
    cursor: usize,
}
impl Registry {
    pub fn poke(&self) {
        self.cursor = 1;
    }
}
pub fn install(r: Arc<Registry>) {}
";
        let v = run(vec![FileFacts::fixture("crates/obs/src/reg.rs", "emblookup-obs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(
            v[0].message,
            "unguarded write to `self.cursor` in `poke` (crates/obs/src/reg.rs:6): \
             `Registry` is Arc-shared and the receiver is `&self` — guard the write with \
             the owning lock, take `&mut self`, or make the field atomic",
        );
    }

    #[test]
    fn guarded_and_mut_self_writes_are_clean() {
        let src = "\
pub struct Registry {
    cursor: usize,
}
impl Registry {
    pub fn locked(&self) {
        let g = self.state.lock();
        self.cursor = 1;
    }
    pub fn excl(&mut self) {
        self.cursor = 2;
    }
}
pub fn install(r: Arc<Registry>) {}
";
        let v = run(vec![FileFacts::fixture("crates/obs/src/reg.rs", "emblookup-obs", src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unshared_types_are_not_flagged() {
        let src = "\
pub struct Local {
    cursor: usize,
}
impl Local {
    pub fn poke(&self) { self.cursor = 1; }
}
";
        let v = run(vec![FileFacts::fixture("crates/obs/src/reg.rs", "emblookup-obs", src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn arc_evidence_crosses_files() {
        let decl = "\
pub struct Registry { cursor: usize }
impl Registry {
    pub fn poke(&self) { self.cursor = 1; }
}
";
        let user = "\
use emblookup_obs::Registry;
pub fn install(r: Arc<Registry>) {}
";
        let v = run(vec![
            FileFacts::fixture("crates/obs/src/reg.rs", "emblookup-obs", decl),
            FileFacts::fixture("crates/obs/src/install.rs", "emblookup-obs", user),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn unguarded_static_write_is_flagged() {
        let src = "\
static mut SCRATCH: usize = 0;
pub fn bump() {
    unsafe { SCRATCH = 7; }
}
pub fn locked(m: &std::sync::Mutex<u32>) {
    let g = m.lock();
    unsafe { SCRATCH = 9; }
}
";
        let v = run(vec![FileFacts::fixture("crates/obs/src/reg.rs", "emblookup-obs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`static SCRATCH`"), "{}", v[0].message);
        assert_eq!(v[0].line, 3);
    }
}
