//! L012 — deadline propagation: every function reachable from a
//! `crates/serve` request handler that blocks (a `BLOCKS` seed, a pool
//! `submit`, or a `parallel_*` fan-out) must either receive a
//! deadline-bearing parameter (`DeadlineClock`, or a param named
//! `clock`/`deadline`) or be dominated by a deadline check
//! (`.expired()`, `.remaining_ms()`, a `DeadlineClock::…`
//! construction) earlier in the caller chain.
//!
//! The analysis is a may-unguarded reachability pass over the call
//! graph: handlers (`handle_*` in `emblookup-serve`) start unguarded;
//! an edge at call line L stays unguarded only when the caller has no
//! deadline param and no deadline check at or before L. A blocking
//! site in an unguarded-reachable function that is not itself
//! dominated is a violation, reported with the handler→…→site witness
//! chain (file:line per hop).

use crate::callgraph::{CallGraph, POOLWAIT_NAMES, SUBMIT_NAMES};
use crate::effects::BLOCKS;
use crate::engine::Violation;
use std::collections::VecDeque;

fn guarded_at(g: &CallGraph, i: usize, line: u32) -> bool {
    let fact = &g.nodes[i].fact;
    fact.deadline_param || fact.deadline_checks.iter().any(|&l| l <= line)
}

/// Renders the unguarded call chain from the nearest handler to node
/// `i`: `` `handler` (file:line) → … → `leaf` ``.
fn chain(g: &CallGraph, parent: &[Option<(usize, u32)>], i: usize) -> String {
    let mut path = vec![i];
    let mut cur = i;
    while let Some((p, _)) = parent[cur] {
        path.push(p);
        cur = p;
        if path.len() > 12 {
            break;
        }
    }
    path.reverse();
    let mut parts = Vec::with_capacity(path.len());
    for (k, &n) in path.iter().enumerate() {
        match path.get(k + 1).and_then(|&next| parent[next]) {
            Some((_, call_line)) => parts.push(format!(
                "`{}` ({}:{})",
                g.nodes[n].fact.name, g.nodes[n].file, call_line
            )),
            None => parts.push(format!("`{}`", g.nodes[n].fact.name)),
        }
    }
    parts.join(" → ")
}

/// Checks deadline propagation from serve request handlers.
pub fn check(g: &CallGraph) -> Vec<Violation> {
    let n = g.nodes.len();
    let mut unguarded = vec![false; n];
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, node) in g.nodes.iter().enumerate() {
        if node.krate == "emblookup-serve" && node.fact.name.starts_with("handle_") {
            unguarded[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for (ci, cands) in g.resolved[i].iter().enumerate() {
            let call = &g.nodes[i].fact.calls[ci];
            if guarded_at(g, i, call.line) {
                continue;
            }
            for &j in cands {
                if j == i || unguarded[j] {
                    continue;
                }
                unguarded[j] = true;
                parent[j] = Some((i, call.line));
                queue.push_back(j);
            }
        }
    }

    let mut out = Vec::new();
    for (i, _) in unguarded.iter().enumerate().filter(|(_, &u)| u) {
        let node = &g.nodes[i];
        let mut sites: Vec<(u32, String)> = node
            .fact
            .seeds
            .iter()
            .filter(|s| s.effect == BLOCKS)
            .map(|s| (s.line, s.what.clone()))
            .collect();
        for c in &node.fact.calls {
            if SUBMIT_NAMES.contains(&c.name.as_str()) {
                sites.push((c.line, format!("`{}(…)` submits pool work", c.name)));
            } else if POOLWAIT_NAMES.contains(&c.name.as_str()) {
                sites.push((c.line, format!("`{}(…)` blocks on pool fan-out", c.name)));
            }
        }
        sites.sort();
        sites.dedup();
        for (line, what) in sites {
            if guarded_at(g, i, line) {
                continue;
            }
            out.push(Violation {
                file: node.file.clone(),
                line,
                rule: "L012".to_string(),
                message: format!(
                    "`{}` blocks without a deadline budget ({}:{}: {what}) and is reachable \
                     from a serve request handler: {} — pass a `DeadlineClock` parameter down \
                     the chain or dominate the site with a deadline check",
                    node.fact.name,
                    node.file,
                    line,
                    chain(g, &parent, i),
                ),
                suggestion: None,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::FileFacts;

    fn run(files: Vec<FileFacts>) -> Vec<Violation> {
        let mut names: Vec<String> = files.iter().map(|f| f.krate.clone()).collect();
        names.sort();
        names.dedup();
        let manifests: Vec<_> = names
            .iter()
            .map(|k| {
                let dir = format!("crates/{}", k.trim_start_matches("emblookup-"));
                let mut text = format!("[package]\nname = \"{k}\"\n[dependencies]\n");
                for other in &names {
                    if other != k {
                        text.push_str(&format!("{other}.workspace = true\n"));
                    }
                }
                crate::cargo::parse_manifest(
                    &format!("{dir}/Cargo.toml"),
                    std::path::Path::new(&dir),
                    &text,
                )
                .expect("fixture manifest")
            })
            .collect();
        let g = CallGraph::build(&manifests, &files);
        check(&g)
    }

    #[test]
    fn golden_unbudgeted_blocking_chain_is_flagged() {
        let serve = "\
use emblookup_pool::drain;
pub fn handle_lookup(req: u32) -> u32 { stage(req) }
pub fn stage(req: u32) -> u32 { drain(req) }
";
        let pool = "\
pub fn drain(req: u32) -> u32 { rx.recv(); req }
";
        let v = run(vec![
            FileFacts::fixture("crates/serve/src/server.rs", "emblookup-serve", serve),
            FileFacts::fixture("crates/pool/src/lib.rs", "emblookup-pool", pool),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "L012");
        assert_eq!(
            v[0].message,
            "`drain` blocks without a deadline budget (crates/pool/src/lib.rs:1: `.recv()` \
             blocks on a channel) and is reachable from a serve request handler: \
             `handle_lookup` (crates/serve/src/server.rs:2) → `stage` \
             (crates/serve/src/server.rs:3) → `drain` — pass a `DeadlineClock` parameter \
             down the chain or dominate the site with a deadline check",
        );
    }

    #[test]
    fn deadline_parameter_satisfies_the_contract() {
        let serve = "\
use emblookup_pool::drain;
pub fn handle_lookup(req: u32) -> u32 { stage(req) }
pub fn stage(req: u32) -> u32 { drain(req) }
";
        let pool = "\
pub fn drain(req: u32, clock: &DeadlineClock) -> u32 { rx.recv(); req }
";
        let v = run(vec![
            FileFacts::fixture("crates/serve/src/server.rs", "emblookup-serve", serve),
            FileFacts::fixture("crates/pool/src/lib.rs", "emblookup-pool", pool),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dominating_deadline_check_guards_downstream_edges() {
        let serve = "\
use emblookup_pool::drain;
pub fn handle_lookup(req: u32, clock: &DeadlineClock) -> u32 {
    if clock.expired() { return 0; }
    drain(req)
}
pub fn handle_bulk(req: u32) -> u32 {
    drain(req)
}
";
        let pool = "\
pub fn drain(req: u32) -> u32 { rx.recv(); req }
";
        let v = run(vec![
            FileFacts::fixture("crates/serve/src/server.rs", "emblookup-serve", serve),
            FileFacts::fixture("crates/pool/src/lib.rs", "emblookup-pool", pool),
        ]);
        // reachable unguarded through handle_bulk, guarded through
        // handle_lookup — the may-analysis keeps the unguarded path
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`handle_bulk`"), "{}", v[0].message);
    }

    #[test]
    fn pool_submission_counts_as_a_blocking_site() {
        let serve = "\
pub fn handle_lookup(req: u32) -> u32 { pool.submit(move || req); req }
";
        let v = run(vec![FileFacts::fixture(
            "crates/serve/src/server.rs",
            "emblookup-serve",
            serve,
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("submits pool work"), "{}", v[0].message);
    }

    #[test]
    fn non_handler_roots_are_not_checked() {
        let serve = "\
pub fn accept_loop(req: u32) -> u32 { rx.recv(); req }
";
        let v = run(vec![FileFacts::fixture(
            "crates/serve/src/server.rs",
            "emblookup-serve",
            serve,
        )]);
        assert!(v.is_empty(), "{v:?}");
    }
}
