//! L010 — interprocedural hot-path effects: functions in
//! `// lint: hot-path` files must be *transitively* panic-, lock- and
//! allocation-free. The textual L002 already polices the file itself;
//! this rule walks the propagated effect lattice so an allocating
//! helper one crate over no longer slips through, and prints the
//! offending call chain with file:line per hop.

use crate::callgraph::CallGraph;
use crate::effects::{bit_name, Effects, ALLOC, LOCKS, PANICS};
use crate::engine::Violation;
use std::collections::BTreeSet;

/// Effect bits gated on hot paths.
pub const GATE: u8 = PANICS | LOCKS | ALLOC;

/// Reports every call from a hot-path function to a callee carrying a
/// gated effect. Local seeds are L001/L002's territory (textual,
/// per-file); this rule owns the edges.
pub fn check(g: &CallGraph, fx: &Effects) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, node) in g.nodes.iter().enumerate() {
        if !node.hot {
            continue;
        }
        let mut seen: BTreeSet<(u32, u8)> = BTreeSet::new();
        for (ci, cands) in g.resolved[i].iter().enumerate() {
            let call = &node.fact.calls[ci];
            for &j in cands {
                if j == i {
                    continue;
                }
                let bad = fx.effects[j] & GATE;
                if bad == 0 {
                    continue;
                }
                for bit in [PANICS, LOCKS, ALLOC] {
                    if bad & bit == 0 || !seen.insert((call.line, bit)) {
                        continue;
                    }
                    out.push(Violation {
                        file: node.file.clone(),
                        line: call.line,
                        rule: "L010".to_string(),
                        message: format!(
                            "hot-path `{}` calls `{}`, which transitively {}: `{}` ({}:{}) → {}",
                            node.fact.name,
                            call.name,
                            bit_name(bit),
                            node.fact.name,
                            node.file,
                            call.line,
                            fx.chain(g, j, bit)
                        ),
                        suggestion: None,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::propagate;
    use crate::facts::FileFacts;

    fn run(files: Vec<FileFacts>) -> Vec<Violation> {
        let mut names: Vec<String> = files.iter().map(|f| f.krate.clone()).collect();
        names.sort();
        names.dedup();
        let manifests: Vec<_> = names
            .iter()
            .map(|k| {
                let dir = format!("crates/{}", k.trim_start_matches("emblookup-"));
                let mut text = format!("[package]\nname = \"{k}\"\n[dependencies]\n");
                for other in &names {
                    if other != k {
                        text.push_str(&format!("{other}.workspace = true\n"));
                    }
                }
                crate::cargo::parse_manifest(
                    &format!("{dir}/Cargo.toml"),
                    std::path::Path::new(&dir),
                    &text,
                )
                .expect("fixture manifest")
            })
            .collect();
        let g = CallGraph::build(&manifests, &files);
        let fx = propagate(&g);
        check(&g, &fx)
    }

    #[test]
    fn golden_cross_crate_allocation_chain() {
        let kg = "\
pub fn describe(n: u32) -> String { format!(\"node {n}\") }
";
        let ann = "\
// lint: hot-path
use emblookup_kg::describe;
pub fn score(n: u32) -> usize { label(n) }
pub fn label(n: u32) -> usize { describe(n).len() }
";
        let v = run(vec![
            FileFacts::fixture("crates/kg/src/lib.rs", "emblookup-kg", kg),
            FileFacts::fixture("crates/ann/src/flat.rs", "emblookup-ann", ann),
        ]);
        // `score → label` and `label → describe` both cross into an
        // allocating chain; the leaf hop carries the seed description
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "L010"));
        let leaf = v.iter().find(|x| x.message.contains("calls `describe`")).expect("leaf edge");
        assert!(
            leaf.message.contains("transitively allocates"),
            "{}",
            leaf.message
        );
        assert!(
            leaf.message
                .contains("`describe` (crates/kg/src/lib.rs:1: `format!` allocates)"),
            "chain must end at the seed with file:line — {}",
            leaf.message
        );
        let edge = v.iter().find(|x| x.message.contains("calls `label`")).expect("inner edge");
        assert!(
            edge.message.contains("`score` (crates/ann/src/flat.rs:3)")
                && edge.message.contains("`label` (crates/ann/src/flat.rs:4)"),
            "full chain with one file:line per hop — {}",
            edge.message
        );
    }

    #[test]
    fn justified_leaf_allow_absolves_hot_callers() {
        let kg = "\
pub fn describe(n: u32) -> String {
    // lint: allow(L002) cold diagnostics path, never per-query
    format!(\"node {n}\")
}
";
        let ann = "\
// lint: hot-path
use emblookup_kg::describe;
pub fn score(n: u32) -> usize { describe(n).len() }
";
        let v = run(vec![
            FileFacts::fixture("crates/kg/src/lib.rs", "emblookup-kg", kg),
            FileFacts::fixture("crates/ann/src/flat.rs", "emblookup-ann", ann),
        ]);
        assert!(v.is_empty(), "leaf allow must suppress the seed: {v:?}");
    }

    #[test]
    fn trait_method_over_approximation_reaches_all_impls() {
        let kg = "\
pub struct Fast;
pub struct Slow;
impl Fast { pub fn describe(&self) -> u32 { 1 } }
impl Slow { pub fn describe(&self) -> u32 { let s = format!(\"x\"); s.len() as u32 } }
";
        let ann = "\
// lint: hot-path
pub fn score(d: &dyn Descr) -> u32 { d.describe() }
";
        let v = run(vec![
            FileFacts::fixture("crates/kg/src/lib.rs", "emblookup-kg", kg),
            FileFacts::fixture("crates/ann/src/flat.rs", "emblookup-ann", ann),
        ]);
        // `d.describe()` over-approximates to both impls; `Slow`'s
        // allocation makes the call suspect
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("transitively allocates"), "{}", v[0].message);
    }

    #[test]
    fn clean_hot_path_is_silent() {
        let ann = "\
// lint: hot-path
pub fn score(xs: &[f32]) -> f32 { acc(xs) }
pub fn acc(xs: &[f32]) -> f32 { let mut s = 0.0; for x in xs { s += *x; } s }
";
        let v = run(vec![FileFacts::fixture("crates/ann/src/flat.rs", "emblookup-ann", ann)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn resolved_lock_helper_carries_its_own_allow() {
        // the pool pattern: a poison-tolerant `lock()` helper whose
        // `.lock()` seed carries the one documented allow. A `lock(…)`
        // call that resolves to it flows through the edge instead of
        // re-seeding at the call site, so hot callers stay clean.
        let pool = "\
// lint: hot-path
// lint: allow(L002) bounded critical sections are the pool design
fn lock(m: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap_or_else(e) }
pub fn depth(m: &std::sync::Mutex<u32>) -> u32 { lock(m) }
";
        let v = run(vec![FileFacts::fixture("crates/pool/src/lib.rs", "emblookup-pool", pool)]);
        let locks: Vec<_> = v.iter().filter(|x| x.message.contains("locks")).collect();
        assert!(locks.is_empty(), "{v:?}");
    }

    #[test]
    fn unresolved_lock_idiom_still_seeds_at_the_call_site() {
        // no local `lock` definition: the call-site seed stands in,
        // and the hot caller one hop up inherits it
        let pool = "pub fn depth(m: &M) -> u32 { lock(m) }\n";
        let ann = "\
// lint: hot-path
use emblookup_pool::depth;
pub fn probe(m: &M) -> u32 { depth(m) }
";
        let v = run(vec![
            FileFacts::fixture("crates/pool/src/lib.rs", "emblookup-pool", pool),
            FileFacts::fixture("crates/ann/src/flat.rs", "emblookup-ann", ann),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("transitively locks"), "{}", v[0].message);
        assert!(
            v[0].message.contains("`lock(…)` acquires a mutex"),
            "chain must end at the idiom seed — {}",
            v[0].message
        );
    }
}
