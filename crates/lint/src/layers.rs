//! L005 — crate-layering conformance.
//!
//! The workspace architecture is a DAG of layers (see DESIGN.md):
//!
//! ```text
//!   rank 0    rand, obs              (utility leaves)
//!   rank 5    pool                   (compute pool, over obs only)
//!   rank 10   text                   (string substrate)
//!   rank 12   ann                    (index structures + the SIMD kernel layer)
//!   rank 15   tensor                 (DL substrate; its matmul inner loop
//!                                     dispatches through ann's kernels)
//!   rank 20   kg                     (domain model)
//!   rank 25   embed                  (encoders, over kg/text/tensor)
//!   rank 40   core                   (the EmbLookup pipeline)
//!   rank 45   serve                  (hardened HTTP serving layer)
//!   rank 50+  baselines, semtab, bench  (consumers)
//!   rank 100  emblookup              (root facade crate)
//!   —         lint                   (isolated; may use obs only)
//! ```
//!
//! A crate may depend only on strictly lower ranks. Both manifest edges
//! (`[dependencies]` and `[dev-dependencies]`) and source-level
//! `emblookup_*::` paths are checked; `#[cfg(test)]` code is exempt on
//! the source side (its edges surface as dev-dependencies instead).
//! `emblookup-lint` is special-cased: it may depend only on
//! `emblookup-obs` (for the metric-name registry), and nothing may
//! depend on it.

use crate::cargo::Manifest;
use crate::engine::{SourceFile, Violation};
use crate::parser::CrateRef;

/// Declared layer rank per workspace crate. Lower ranks are closer to
/// the leaves; an edge is legal iff `rank(dep) < rank(crate)`.
pub const LAYERS: &[(&str, u32)] = &[
    ("rand", 0),
    ("emblookup-obs", 0),
    ("emblookup-pool", 5),
    ("emblookup-text", 10),
    ("emblookup-ann", 12),
    ("emblookup-tensor", 15),
    ("emblookup-kg", 20),
    ("emblookup-embed", 25),
    ("emblookup-core", 40),
    ("emblookup-serve", 45),
    ("emblookup-baselines", 50),
    ("emblookup-semtab", 55),
    ("emblookup-bench", 60),
    ("emblookup", 100),
];

/// The isolated crate: not in the layer DAG at all.
pub const ISOLATED: &str = "emblookup-lint";
/// The only crates the isolated crate may depend on.
pub const ISOLATED_ALLOWED: &[&str] = &["emblookup-obs"];

/// Rank of a crate in the declared DAG, `None` for unknown crates and
/// for the isolated lint crate.
pub fn rank(name: &str) -> Option<u32> {
    LAYERS.iter().find(|(n, _)| *n == name).map(|&(_, r)| r)
}

/// Is `dep` a legal dependency of `krate`? Returns an explanation when
/// it is not. Unknown (non-workspace) dependency names are legal — the
/// offline-build gate already constrains those.
fn judge(krate: &str, dep: &str) -> Result<(), String> {
    if dep == krate {
        return Ok(());
    }
    if dep == ISOLATED {
        return Err(format!("`{ISOLATED}` is isolated; no crate may depend on it"));
    }
    if krate == ISOLATED {
        return if ISOLATED_ALLOWED.contains(&dep) {
            Ok(())
        } else {
            Err(format!(
                "`{ISOLATED}` is isolated and may depend only on {}",
                ISOLATED_ALLOWED.join(", ")
            ))
        };
    }
    let (Some(rk), Some(rd)) = (rank(krate), rank(dep)) else {
        return Ok(()); // non-workspace crate on either side
    };
    if rd < rk {
        Ok(())
    } else {
        Err(format!(
            "layering violation: `{krate}` (rank {rk}) may not depend on `{dep}` (rank {rd}); \
             the layer DAG flows rand/obs -> text -> ann -> tensor -> kg -> embed -> core -> \
             serve -> baselines/semtab/bench"
        ))
    }
}

/// Checks every manifest's dependency edges against the DAG.
pub fn check_manifests(manifests: &[Manifest]) -> Vec<Violation> {
    let workspace: Vec<&str> = manifests.iter().map(|m| m.name.as_str()).collect();
    let mut out = Vec::new();
    for m in manifests {
        for d in &m.deps {
            if !workspace.contains(&d.name.as_str()) {
                continue;
            }
            if let Err(why) = judge(&m.name, &d.name) {
                out.push(Violation {
                    file: m.path.clone(),
                    line: d.line,
                    rule: "L005".to_string(),
                    message: if d.dev { format!("{why} (dev-dependency)") } else { why },
                    suggestion: None,
                });
            }
        }
    }
    out
}

/// Checks one source file's `emblookup_*::` references against the DAG.
/// `krate` is the owning package name (dash form); `refs` come from
/// [`crate::parser::crate_refs`] and exclude test regions already.
/// Violations are raw — the workspace driver applies `allow(L005)`
/// directives centrally so their usage can be audited.
pub fn check_source(sf: &SourceFile, krate: &str, refs: &[CrateRef]) -> Vec<Violation> {
    check_refs(&sf.path, krate, refs)
}

/// Path-based variant of [`check_source`] for pre-extracted facts (the
/// incremental cache path, where no parsed [`SourceFile`] exists).
pub fn check_refs(path: &str, krate: &str, refs: &[CrateRef]) -> Vec<Violation> {
    let mut out = Vec::new();
    for r in refs {
        let dep = r.krate.replace('_', "-");
        if let Err(why) = judge(krate, &dep) {
            out.push(Violation {
                file: path.to_string(),
                line: r.line,
                rule: "L005".to_string(),
                message: format!("use of `{}::` — {why}", r.krate),
                suggestion: None,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cargo::parse_manifest;
    use crate::parser::crate_refs;
    use std::path::Path;

    #[test]
    fn declared_dag_covers_every_workspace_crate_once() {
        let mut names: Vec<&str> = LAYERS.iter().map(|&(n, _)| n).collect();
        names.push(ISOLATED);
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate crate in LAYERS");
    }

    #[test]
    fn reversed_manifest_edge_is_flagged() {
        let text = "[package]\nname = \"emblookup-tensor\"\n[dependencies]\nemblookup-core.workspace = true\n";
        let m = parse_manifest("crates/tensor/Cargo.toml", Path::new("crates/tensor"), text)
            .expect("manifest");
        // pretend both crates are workspace members
        let core = parse_manifest(
            "crates/core/Cargo.toml",
            Path::new("crates/core"),
            "[package]\nname = \"emblookup-core\"\n",
        )
        .expect("manifest");
        let v = check_manifests(&[m, core]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L005");
        assert_eq!(v[0].file, "crates/tensor/Cargo.toml");
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn downward_edges_are_clean() {
        let text = "[package]\nname = \"emblookup-core\"\n[dependencies]\nemblookup-ann.workspace = true\nrand.workspace = true\n";
        let m = parse_manifest("crates/core/Cargo.toml", Path::new("crates/core"), text)
            .expect("manifest");
        let ann = parse_manifest(
            "crates/ann/Cargo.toml",
            Path::new("crates/ann"),
            "[package]\nname = \"emblookup-ann\"\n",
        )
        .expect("manifest");
        let rand = parse_manifest(
            "crates/rand/Cargo.toml",
            Path::new("crates/rand"),
            "[package]\nname = \"rand\"\n",
        )
        .expect("manifest");
        assert!(check_manifests(&[m, ann, rand]).is_empty());
    }

    #[test]
    fn depending_on_lint_is_flagged() {
        let text = "[package]\nname = \"emblookup-core\"\n[dependencies]\nemblookup-lint.workspace = true\n";
        let m = parse_manifest("crates/core/Cargo.toml", Path::new("crates/core"), text)
            .expect("manifest");
        let lint = parse_manifest(
            "crates/lint/Cargo.toml",
            Path::new("crates/lint"),
            "[package]\nname = \"emblookup-lint\"\n",
        )
        .expect("manifest");
        let v = check_manifests(&[m, lint]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn reversed_use_path_is_flagged_with_file_line() {
        let src = "use emblookup_core::EmbLookup;\npub fn f() {}\n";
        let sf = SourceFile::parse("crates/tensor/src/lib.rs", src);
        let refs = crate_refs(&sf);
        let v = check_source(&sf, "emblookup-tensor", &refs);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].file.as_str(), v[0].line), ("crates/tensor/src/lib.rs", 1));
        assert_eq!(v[0].rule, "L005");
    }

    #[test]
    fn downward_use_path_and_test_code_are_clean() {
        let src = "use emblookup_kg::Candidate;\n#[cfg(test)]\nmod tests { use emblookup_core::EmbLookup; }\n";
        let sf = SourceFile::parse("crates/baselines/src/lib.rs", src);
        let refs = crate_refs(&sf);
        assert!(check_source(&sf, "emblookup-baselines", &refs).is_empty());
    }

    #[test]
    fn check_source_reports_raw_violations_even_when_allowed() {
        // Suppression is central (workspace::check matches allow
        // directives against raw violations so it can audit stale
        // allows); the layering pass itself stays raw.
        let src = "// lint: allow(L005) transitional: moving to core in PR 9\nuse emblookup_core::EmbLookup;\npub fn f() {}\n";
        let sf = SourceFile::parse("crates/tensor/src/lib.rs", src);
        let refs = crate_refs(&sf);
        let v = check_source(&sf, "emblookup-tensor", &refs);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L005");
    }
}
