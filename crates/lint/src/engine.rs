//! The lint engine: file model (test regions, directives) and the four
//! repo-specific passes.
//!
//! | rule | invariant |
//! |------|-----------|
//! | L001 | no `unwrap()/expect()/panic!/unreachable!/todo!/unimplemented!` in non-test library code |
//! | L002 | no locks / `sleep` / allocating formatting / unjustified `unsafe` in `// lint: hot-path` modules; `#[target_feature]` only inside `kernels.rs` |
//! | L003 | metric & span names come from `emblookup_obs::names`, never string literals |
//! | L004 | task-marker comments carry an issue reference (`#123` or a URL) |
//! | L007 | float discipline: no `==`/`!=` against float operands, no panicking or inconsistent `partial_cmp` comparators (use `total_cmp`) |
//! | L000 | the lint directives themselves are well-formed (allow needs a reason) |
//!
//! The workspace-level rules L005 (crate layering) and L006 (public-API
//! drift against `API.lock`) live in [`crate::workspace`]; their allow
//! directives share this file's machinery.
//!
//! A site is exempted with `// lint: allow(Lxxx) reason`, which covers the
//! directive's own line and the next source line; the reason is mandatory.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, HashSet};

/// All enforceable rules, in catalog order. L005 (layering) and L006
/// (API drift) are workspace-level passes run by [`crate::workspace`];
/// L008–L010 are the interprocedural passes in [`crate::rules`] fed by
/// the call graph ([`crate::callgraph`]) and the effect lattice
/// ([`crate::effects`]); the rest are per-file passes on [`SourceFile`].
pub const RULES: &[&str] = &[
    "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010", "L011",
    "L012", "L013",
];

/// The atomic protocols a `// lint: atomic(...)` annotation may declare
/// (see [`crate::dataflow`] for the per-protocol ordering tables).
pub const PROTOCOLS: &[&str] = &["counter", "flag", "seqlock", "ring_head", "refcount"];

/// One `// lint: allow(Lxxx) reason` directive. It suppresses `rule` on
/// its own line and the next source line; the stale-allow audit reports
/// directives that never matched a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDecl {
    /// Rule id the directive suppresses.
    pub rule: String,
    /// 1-based line of the directive comment.
    pub line: u32,
}

impl AllowDecl {
    /// True when this directive covers `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rule == rule && (line == self.line || line == self.line + 1)
    }
}

/// One `// lint: atomic(protocol) reason` directive. It binds the atomic
/// declaration (or access) on its own line or the next source line to
/// one of [`PROTOCOLS`]; unbound directives are reported by the
/// stale-annotation audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicMark {
    /// Declared protocol (one of [`PROTOCOLS`]).
    pub protocol: String,
    /// 1-based line of the directive comment.
    pub line: u32,
}

impl AtomicMark {
    /// True when this directive covers an atomic declaration or access
    /// at `line`.
    pub fn covers(&self, line: u32) -> bool {
        line == self.line || line == self.line + 1
    }
}

/// One diagnostic produced by a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`L001`…`L004`, or `L000` for malformed directives).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
    /// For L003 literals that match a registered name: the suggested
    /// `names::` constant (drives `--fix-metric-names`).
    pub suggestion: Option<String>,
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: all rules apply.
    Lib,
    /// Binary / CLI code (`main.rs`, `src/bin/…`): panic-freedom and
    /// hot-path rules are relaxed, name and task-marker hygiene still
    /// apply.
    Bin,
}

/// Classifies a workspace-relative path.
pub fn classify(path: &str) -> FileClass {
    let normalized = path.replace('\\', "/");
    if normalized.ends_with("/main.rs")
        || normalized == "main.rs"
        || normalized.contains("/bin/")
        || normalized.contains("/benches/")
    {
        FileClass::Bin
    } else {
        FileClass::Lib
    }
}

/// The metric-name registry the L003 pass checks against:
/// `value → constant identifier`.
pub type NameRegistry = BTreeMap<String, String>;

/// Builds the registry from `emblookup_obs::names::ALL`.
pub fn obs_name_registry() -> NameRegistry {
    emblookup_obs::names::ALL
        .iter()
        .map(|&(ident, value)| (value.to_string(), ident.to_string()))
        .collect()
}

/// A lexed source file with test regions and lint directives resolved.
pub struct SourceFile {
    /// Workspace-relative display path.
    pub path: String,
    /// Library or binary code.
    pub class: FileClass,
    tokens: Vec<Token>,
    /// Token-index ranges (inclusive) covering `#[cfg(test)]` / `#[test]`
    /// items.
    test_ranges: Vec<(usize, usize)>,
    /// Whether the module carries a `// lint: hot-path` annotation.
    hot_path: bool,
    /// Allow directives in declaration order.
    allows: Vec<AllowDecl>,
    /// Atomic-protocol directives in declaration order.
    atomic_marks: Vec<AtomicMark>,
    /// Malformed-directive diagnostics discovered during parsing.
    directive_errors: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes and analyzes one file.
    pub fn parse(path: &str, src: &str) -> Self {
        let tokens = lex(src);
        let test_ranges = find_test_ranges(&tokens);
        let mut hot_path = false;
        let mut allows: Vec<AllowDecl> = Vec::new();
        let mut atomic_marks: Vec<AtomicMark> = Vec::new();
        let mut directive_errors = Vec::new();
        for t in &tokens {
            if t.kind != TokenKind::LineComment {
                continue;
            }
            let body = t
                .text
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim();
            let Some(directive) = body.strip_prefix("lint:") else {
                continue;
            };
            let directive = directive.trim();
            if directive == "hot-path" {
                hot_path = true;
            } else if let Some(rest) = directive.strip_prefix("allow(") {
                match rest.split_once(')') {
                    Some((ids, reason)) => {
                        if reason.trim().is_empty() {
                            directive_errors.push((
                                t.line,
                                "lint allow requires a reason: `// lint: allow(Lxxx) <why>`"
                                    .to_string(),
                            ));
                            continue;
                        }
                        for id in ids.split(',') {
                            let id = id.trim();
                            if RULES.contains(&id) {
                                allows.push(AllowDecl { rule: id.to_string(), line: t.line });
                            } else {
                                directive_errors.push((
                                    t.line,
                                    format!("unknown lint rule `{id}` in allow directive"),
                                ));
                            }
                        }
                    }
                    None => directive_errors
                        .push((t.line, "unclosed lint allow directive".to_string())),
                }
            } else if let Some(rest) = directive.strip_prefix("atomic(") {
                match rest.split_once(')') {
                    Some((proto, _reason)) => {
                        let proto = proto.trim();
                        if PROTOCOLS.contains(&proto) {
                            atomic_marks
                                .push(AtomicMark { protocol: proto.to_string(), line: t.line });
                        } else {
                            directive_errors.push((
                                t.line,
                                format!(
                                    "unknown atomic protocol `{proto}` (expected one of {})",
                                    PROTOCOLS.join("|")
                                ),
                            ));
                        }
                    }
                    None => directive_errors
                        .push((t.line, "unclosed lint atomic directive".to_string())),
                }
            } else {
                directive_errors.push((
                    t.line,
                    format!("unknown lint directive `{directive}` (expected `hot-path`, `allow(Lxxx) reason`, or `atomic(protocol) reason`)"),
                ));
            }
        }
        SourceFile {
            path: path.to_string(),
            class: classify(path),
            tokens,
            test_ranges,
            hot_path,
            allows,
            atomic_marks,
            directive_errors,
        }
    }

    /// True when the token at `idx` sits inside a `#[cfg(test)]` /
    /// `#[test]` item.
    pub(crate) fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// The file's token stream (comments included) — shared with the
    /// item parser and the workspace passes.
    pub(crate) fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// True when rule `rule` is suppressed on `line` by an allow
    /// directive. The workspace-level passes consult this before
    /// reporting.
    pub(crate) fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|d| d.covers(rule, line))
    }

    /// The file's allow directives, in declaration order — the raw
    /// material of the central suppression pass and the stale-allow
    /// audit.
    pub(crate) fn allow_decls(&self) -> &[AllowDecl] {
        &self.allows
    }

    /// Whether the file is a `// lint: hot-path` module.
    pub(crate) fn is_hot_path(&self) -> bool {
        self.hot_path
    }

    /// The file's `// lint: atomic(protocol)` directives, in declaration
    /// order — consumed by the dataflow pass's atomic-declaration scan
    /// and the stale-annotation audit.
    pub(crate) fn atomic_marks(&self) -> &[AtomicMark] {
        &self.atomic_marks
    }

    /// Previous non-comment token before `idx`.
    fn prev_sig(&self, idx: usize) -> Option<&Token> {
        self.tokens[..idx].iter().rev().find(|t| !t.is_comment())
    }

    /// Next non-comment token after `idx` (with offset: 1 = immediately
    /// following significant token).
    fn next_sig(&self, idx: usize, nth: usize) -> Option<&Token> {
        self.tokens[idx + 1..]
            .iter()
            .filter(|t| !t.is_comment())
            .nth(nth - 1)
    }

    /// Runs every pass over this file and applies the file's allow
    /// directives — the fixture-test entry point. The workspace driver
    /// uses [`SourceFile::check_raw`] instead and suppresses centrally
    /// so allow usage can be audited.
    pub fn check(&self, registry: &NameRegistry) -> Vec<Violation> {
        self.check_raw(registry)
            .into_iter()
            .filter(|v| v.rule == "L000" || !self.allowed(&v.rule, v.line))
            .collect()
    }

    /// Runs every per-file pass without applying allow directives.
    /// `L000` directive errors are included (they are never
    /// suppressible).
    pub fn check_raw(&self, registry: &NameRegistry) -> Vec<Violation> {
        let mut out = Vec::new();
        for (line, message) in &self.directive_errors {
            out.push(Violation {
                file: self.path.clone(),
                line: *line,
                rule: "L000".to_string(),
                message: message.clone(),
                suggestion: None,
            });
        }
        self.check_l001(&mut out);
        self.check_l002(&mut out);
        self.check_l003(registry, &mut out);
        self.check_l004(&mut out);
        self.check_l007(&mut out);
        out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
        out
    }

    fn push(
        &self,
        out: &mut Vec<Violation>,
        rule: &str,
        line: u32,
        message: String,
        suggestion: Option<String>,
    ) {
        out.push(Violation {
            file: self.path.clone(),
            line,
            rule: rule.to_string(),
            message,
            suggestion,
        });
    }

    fn check_l001(&self, out: &mut Vec<Violation>) {
        if self.class != FileClass::Lib {
            return;
        }
        for (i, t) in self.tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident || self.in_test(i) {
                continue;
            }
            match t.text.as_str() {
                "unwrap" | "expect" => {
                    let after_dot = self.prev_sig(i).is_some_and(|p| p.text == ".");
                    let called = self.next_sig(i, 1).is_some_and(|n| n.text == "(");
                    if after_dot && called {
                        self.push(
                            out,
                            "L001",
                            t.line,
                            format!(
                                ".{}() can panic; propagate a Result or add `// lint: allow(L001) reason`",
                                t.text
                            ),
                            None,
                        );
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if self.next_sig(i, 1).is_some_and(|n| n.text == "!") =>
                {
                    self.push(
                        out,
                        "L001",
                        t.line,
                        format!(
                            "{}! in library code; return a typed error or add `// lint: allow(L001) reason`",
                            t.text
                        ),
                        None,
                    );
                }
                _ => {}
            }
        }
    }

    fn check_l002(&self, out: &mut Vec<Violation>) {
        if self.class != FileClass::Lib {
            return;
        }
        // `#[target_feature]` is confined to the runtime-dispatched kernel
        // module: anywhere else a mis-gated call is a latent SIGILL on
        // older CPUs. This arm applies to every lib file, hot-path or not.
        if !self.path.replace('\\', "/").ends_with("kernels.rs") {
            for (i, t) in self.tokens.iter().enumerate() {
                if t.kind == TokenKind::Ident && t.text == "target_feature" && !self.in_test(i) {
                    self.push(
                        out,
                        "L002",
                        t.line,
                        "`#[target_feature]` outside the kernel dispatch module; route SIMD \
                         through `emblookup_ann::kernels` or add `// lint: allow(L002) reason`"
                            .to_string(),
                        None,
                    );
                }
            }
        }
        if !self.hot_path {
            return;
        }
        for (i, t) in self.tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident || self.in_test(i) {
                continue;
            }
            let flag = |what: &str| {
                format!("{what} in a `lint: hot-path` module; move it off the hot path or add `// lint: allow(L002) reason`")
            };
            match t.text.as_str() {
                "unsafe" => {
                    self.push(
                        out,
                        "L002",
                        t.line,
                        "`unsafe` on the hot path needs a written soundness argument: add \
                         `// lint: allow(L002) reason` on the preceding line"
                            .to_string(),
                        None,
                    );
                }
                "Mutex" | "RwLock" | "Condvar" | "Barrier" => {
                    self.push(out, "L002", t.line, flag(&format!("lock primitive `{}`", t.text)), None);
                }
                "sleep" if self.next_sig(i, 1).is_some_and(|n| n.text == "(") => {
                    self.push(out, "L002", t.line, flag("`sleep`"), None);
                }
                "format" if self.next_sig(i, 1).is_some_and(|n| n.text == "!") => {
                    self.push(out, "L002", t.line, flag("allocating `format!`"), None);
                }
                "to_string" | "to_owned" => {
                    let after_dot = self.prev_sig(i).is_some_and(|p| p.text == ".");
                    let called = self.next_sig(i, 1).is_some_and(|n| n.text == "(");
                    if after_dot && called {
                        self.push(
                            out,
                            "L002",
                            t.line,
                            flag(&format!("allocating `.{}()`", t.text)),
                            None,
                        );
                    }
                }
                "Box" | "String" => {
                    // Box::new( / String::from(
                    let path_call = self.next_sig(i, 1).is_some_and(|n| n.text == ":")
                        && self.next_sig(i, 3).is_some_and(|n| {
                            n.text == "new" || n.text == "from"
                        })
                        && self.next_sig(i, 4).is_some_and(|n| n.text == "(");
                    if path_call {
                        self.push(
                            out,
                            "L002",
                            t.line,
                            flag(&format!("allocating `{}::…`", t.text)),
                            None,
                        );
                    }
                }
                _ => {}
            }
        }
    }

    fn check_l003(&self, registry: &NameRegistry, out: &mut Vec<Violation>) {
        // the obs crate defines the registry and its exporters; literals
        // there are the single source of truth
        if self.path.replace('\\', "/").contains("crates/obs/") {
            return;
        }
        // token indices of string literals that sit in a metric-name
        // position (argument region of counter/gauge/histogram/
        // Span::enter/Span::enter_in/static_counter!, and the trace-span
        // creators Trace::root/TraceSpan::child/child_deferred)
        let mut position_hits: HashSet<usize> = HashSet::new();
        for (i, t) in self.tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident || self.in_test(i) {
                continue;
            }
            let is_method = matches!(
                t.text.as_str(),
                "counter" | "gauge" | "histogram" | "root" | "child" | "child_deferred"
            ) && self.prev_sig(i).is_some_and(|p| p.text == ".");
            let is_span = matches!(t.text.as_str(), "enter" | "enter_in")
                && self.prev_sig(i).is_some_and(|p| p.text == ":");
            let is_macro = t.text == "static_counter"
                && self.next_sig(i, 1).is_some_and(|n| n.text == "!");
            if !(is_method || is_span || is_macro) {
                continue;
            }
            // find the opening paren, then collect Str tokens to its close
            let mut j = i + 1;
            while j < self.tokens.len() {
                let tok = &self.tokens[j];
                if tok.is_comment() || tok.text == "!" {
                    j += 1;
                    continue;
                }
                break;
            }
            if self.tokens.get(j).map(|t| t.text.as_str()) != Some("(") {
                continue;
            }
            let mut depth = 0i32;
            for (k, tok) in self.tokens.iter().enumerate().skip(j) {
                match (tok.kind, tok.text.as_str()) {
                    (TokenKind::Punct, "(") => depth += 1,
                    (TokenKind::Punct, ")") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    (TokenKind::Str | TokenKind::RawStr, _) => {
                        position_hits.insert(k);
                    }
                    _ => {}
                }
            }
        }
        for (i, t) in self.tokens.iter().enumerate() {
            if !matches!(t.kind, TokenKind::Str | TokenKind::RawStr) || self.in_test(i) {
                continue;
            }
            let Some(value) = t.str_value() else { continue };
            if let Some(ident) = registry.get(&value) {
                self.push(
                    out,
                    "L003",
                    t.line,
                    format!("metric name literal \"{value}\"; use emblookup_obs::names::{ident}"),
                    Some(ident.clone()),
                );
            } else if position_hits.contains(&i) {
                self.push(
                    out,
                    "L003",
                    t.line,
                    format!(
                        "unregistered metric/span name literal \"{value}\"; declare it in emblookup_obs::names and use the constant"
                    ),
                    None,
                );
            }
        }
    }

    /// L007 — float discipline. Three NaN hazards, all lexical
    /// heuristics (no type inference):
    ///
    /// 1. `==` / `!=` where an operand is visibly a float (float
    ///    literal, `NAN`/`INFINITY` constant, or an `as f32`/`as f64`
    ///    cast). NaN makes float equality partial; top-k ordering built
    ///    on it silently corrupts.
    /// 2. `.partial_cmp(…)` chained into `.unwrap()` / `.expect(…)` —
    ///    panics the first time a NaN distance appears.
    /// 3. Any `.partial_cmp(…)` inside a comparator passed to
    ///    `sort_by` / `sort_unstable_by` / `max_by` / `min_by` /
    ///    `binary_search_by` — `unwrap_or(Equal)` and friends return
    ///    inconsistent orderings on NaN (modern `sort_by` may even
    ///    panic on a non-total order). `f32::total_cmp` is the fix.
    fn check_l007(&self, out: &mut Vec<Violation>) {
        if self.class != FileClass::Lib {
            return;
        }
        let sig: Vec<usize> = (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_comment())
            .collect();
        let tok = |s: usize| sig.get(s).map(|&j| &self.tokens[j]);
        let txt = |s: usize| tok(s).map(|t| t.text.as_str()).unwrap_or("");

        let float_literal = |t: &Token| match t.kind {
            TokenKind::Number => {
                let s = &t.text;
                s.contains('.')
                    || s.ends_with("f32")
                    || s.ends_with("f64")
                    || (!s.starts_with("0x")
                        && !s.starts_with("0X")
                        && !s.starts_with("0b")
                        && !s.starts_with("0o")
                        && s.contains(['e', 'E']))
            }
            TokenKind::Ident => matches!(t.text.as_str(), "NAN" | "INFINITY" | "NEG_INFINITY"),
            _ => false,
        };

        // 1. float equality
        for s in 0..sig.len() {
            let (op, lhs, rhs) = if txt(s) == "=" && txt(s + 1) == "=" && txt(s + 2) != "=" {
                ("==", s.checked_sub(1), s + 2)
            } else if txt(s) == "!" && txt(s + 1) == "=" {
                ("!=", s.checked_sub(1), s + 2)
            } else {
                continue;
            };
            let Some(op_tok) = tok(s) else { continue };
            if sig.get(s).is_some_and(|&j| self.in_test(j)) {
                continue;
            }
            let lhs_float = lhs.is_some_and(|l| {
                tok(l).is_some_and(&float_literal)
                    || (matches!(txt(l), "f32" | "f64") && l >= 1 && txt(l - 1) == "as")
            });
            let rhs_float = tok(rhs).is_some_and(&float_literal);
            if lhs_float || rhs_float {
                self.push(
                    out,
                    "L007",
                    op_tok.line,
                    format!(
                        "float `{op}` comparison is NaN-hazardous; compare with a tolerance, \
                         use total_cmp, or add `// lint: allow(L007) reason`"
                    ),
                    None,
                );
            }
        }

        // comparator argument regions (significant-index ranges) of the
        // NaN-sensitive order-taking methods, for passes 2 and 3
        let order_takers =
            ["sort_by", "sort_unstable_by", "max_by", "min_by", "binary_search_by"];
        let mut comparator_sites: Vec<(usize, &str)> = Vec::new(); // (sig idx of partial_cmp, method)
        let mut in_comparator: HashSet<usize> = HashSet::new();
        for s in 0..sig.len() {
            let Some(t) = tok(s) else { continue };
            if t.kind != TokenKind::Ident
                || !order_takers.contains(&t.text.as_str())
                || txt(s.wrapping_sub(1)) != "."
                || txt(s + 1) != "("
            {
                continue;
            }
            let method = t.text.as_str();
            let mut depth = 0i32;
            let mut k = s + 1;
            while k < sig.len() {
                match txt(k) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "partial_cmp" if txt(k - 1) == "." => {
                        comparator_sites.push((k, method));
                        in_comparator.insert(k);
                    }
                    _ => {}
                }
                k += 1;
            }
        }

        // 2. panicking partial_cmp chains (outside comparator regions,
        //    which pass 3 reports with the sharper message)
        for s in 0..sig.len() {
            let Some(t) = tok(s) else { continue };
            if t.kind != TokenKind::Ident
                || t.text != "partial_cmp"
                || txt(s.wrapping_sub(1)) != "."
                || txt(s + 1) != "("
                || in_comparator.contains(&s)
                || self.in_test(sig[s])
            {
                continue;
            }
            let mut depth = 0i32;
            let mut k = s + 1;
            while k < sig.len() {
                match txt(k) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            if txt(k + 1) == "." && matches!(txt(k + 2), "unwrap" | "expect") {
                self.push(
                    out,
                    "L007",
                    t.line,
                    format!(
                        "`.partial_cmp(..).{}()` panics on NaN; use f32::total_cmp / \
                         f64::total_cmp or handle None",
                        txt(k + 2)
                    ),
                    None,
                );
            }
        }

        // 3. partial_cmp-based comparators
        for (s, method) in comparator_sites {
            let Some(t) = tok(s) else { continue };
            if self.in_test(sig[s]) {
                continue;
            }
            self.push(
                out,
                "L007",
                t.line,
                format!(
                    "partial_cmp-based comparator passed to `{method}` can order \
                     inconsistently on NaN; use f32::total_cmp / f64::total_cmp"
                ),
                None,
            );
        }
    }

    fn check_l004(&self, out: &mut Vec<Violation>) {
        for t in &self.tokens {
            if !t.is_comment() {
                continue;
            }
            // uppercase markers only: `todo!` the macro is L001's business
            let text = &t.text;
            let marker = ["TODO", "FIXME"].iter().find(|m| {
                text.match_indices(*m)
                    .any(|(pos, _)| {
                        let before_ok = pos == 0
                            || !text.as_bytes()[pos - 1].is_ascii_alphanumeric();
                        let end = pos + m.len();
                        let after_ok = end >= text.len()
                            || !text.as_bytes()[end].is_ascii_alphanumeric();
                        before_ok && after_ok
                    })
            });
            let Some(marker) = marker else { continue };
            let has_ref = t.text.contains("://")
                || t
                    .text
                    .char_indices()
                    .any(|(pos, c)| {
                        c == '#'
                            && t.text[pos + 1..]
                                .chars()
                                .next()
                                .is_some_and(|d| d.is_ascii_digit())
                    });
            if !has_ref {
                self.push(
                    out,
                    "L004",
                    t.line,
                    format!("{marker} without an issue reference (`#123` or a URL)"),
                    None,
                );
            }
        }
    }
}

/// Finds token-index ranges covered by `#[cfg(test)]` / `#[test]`
/// annotated items (the whole following item, brace-matched).
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect();
    let mut ranges = Vec::new();
    let mut s = 0usize;
    while s < sig.len() {
        let i = sig[s];
        if tokens[i].text != "#" || sig.get(s + 1).map(|&j| tokens[j].text.as_str()) != Some("[") {
            s += 1;
            continue;
        }
        // collect the attribute's tokens to the matching ]
        let mut depth = 0i32;
        let mut e = s + 1;
        let mut attr_idents: Vec<&str> = Vec::new();
        while e < sig.len() {
            let t = &tokens[sig[e]];
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if t.kind == TokenKind::Ident {
                        attr_idents.push(&t.text);
                    }
                }
            }
            e += 1;
        }
        let is_test_attr = attr_idents.contains(&"test") && !attr_idents.contains(&"not");
        if !is_test_attr {
            s = e + 1;
            continue;
        }
        // skip any further attributes, then span the item
        let mut p = e + 1;
        while p + 1 < sig.len()
            && tokens[sig[p]].text == "#"
            && tokens[sig[p + 1]].text == "["
        {
            let mut d = 0i32;
            let mut q = p + 1;
            while q < sig.len() {
                match tokens[sig[q]].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                q += 1;
            }
            p = q + 1;
        }
        // find the item body: first `{` at depth 0 (or a terminating `;`)
        let mut brace = 0i32;
        let mut q = p;
        let mut end = None;
        while q < sig.len() {
            match tokens[sig[q]].text.as_str() {
                "{" => {
                    brace += 1;
                }
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        end = Some(q);
                        break;
                    }
                }
                ";" if brace == 0 => {
                    end = Some(q);
                    break;
                }
                _ => {}
            }
            q += 1;
        }
        match end {
            Some(endq) => {
                ranges.push((i, sig[endq]));
                s = endq + 1;
            }
            None => {
                // unterminated item: everything to EOF is test code
                ranges.push((i, tokens.len().saturating_sub(1)));
                break;
            }
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        SourceFile::parse(path, src).check(&obs_name_registry())
    }

    #[test]
    fn cfg_test_module_is_exempt_from_l001() {
        let src = r#"
            pub fn lib() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("fine in tests"); }
            }
        "#;
        assert!(check("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = r#"
            #[cfg(not(test))]
            pub fn lib() { Some(1).unwrap(); }
        "#;
        let v = check("crates/x/src/lib.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "L001");
    }

    #[test]
    fn bin_files_skip_l001() {
        let src = "fn main() { std::env::args().next().unwrap(); }";
        assert!(check("src/bin/cli.rs", src).is_empty());
        assert!(check("crates/x/src/main.rs", src).is_empty());
    }
}
