//! Workspace traversal: finds the `.rs` files the lint passes cover —
//! `crates/*/src/**` and the root package's `src/**`. Integration-test
//! directories (`crates/*/tests`, `tests/`) and `target/` are out of
//! scope: the lints guard shipping library code.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Locates the workspace root: walks up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All lintable `.rs` files under `root`, workspace-relative, sorted.
pub fn lintable_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    for p in &mut out {
        if let Ok(rel) = p.strip_prefix(root) {
            *p = rel.to_path_buf();
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
