//! Workspace traversal: finds the `.rs` files the lint passes cover —
//! `crates/*/src/**` and the root package's `src/**`. Integration-test
//! directories (`crates/*/tests`, `tests/`) and `target/` are out of
//! scope: the lints guard shipping library code.
//!
//! The walk is cycle-proof: symlinked directories are skipped outright
//! (lintable code is checked in directly, never behind a link) and
//! recursion depth is capped, so a `src/loop -> src` symlink or a
//! pathological directory tree cannot hang the linter.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Maximum directory nesting below each `src/` root. Real module trees
/// are a handful of levels deep; anything beyond this is a runaway.
const MAX_DEPTH: usize = 32;

/// Locates the workspace root: walks up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All lintable `.rs` files under `root`, workspace-relative, sorted.
pub fn lintable_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out, 0)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out, 0)?;
    }
    for p in &mut out {
        if let Ok(rel) = p.strip_prefix(root) {
            *p = rel.to_path_buf();
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>, depth: usize) -> io::Result<()> {
    if depth > MAX_DEPTH {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        // symlink_metadata does not follow links, so a `loop -> ..`
        // symlink is seen as a link, not as the directory it points at
        let meta = fs::symlink_metadata(&path)?;
        if meta.file_type().is_symlink() {
            continue;
        }
        if meta.is_dir() {
            collect_rs(&path, out, depth + 1)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a throwaway workspace skeleton; cleaned up on drop.
    struct TempWs(PathBuf);

    impl TempWs {
        fn new(tag: &str) -> TempWs {
            let dir = std::env::temp_dir()
                .join(format!("emblookup-lint-walk-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(dir.join("crates/a/src/nested")).unwrap();
            fs::create_dir_all(dir.join("crates/a/tests")).unwrap();
            fs::create_dir_all(dir.join("src")).unwrap();
            fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
            fs::write(dir.join("crates/a/src/lib.rs"), "pub fn a() {}\n").unwrap();
            fs::write(dir.join("crates/a/src/nested/x.rs"), "pub fn x() {}\n").unwrap();
            fs::write(dir.join("crates/a/src/notes.txt"), "not rust\n").unwrap();
            fs::write(dir.join("crates/a/tests/it.rs"), "#[test] fn t() {}\n").unwrap();
            fs::write(dir.join("src/main.rs"), "fn main() {}\n").unwrap();
            TempWs(dir)
        }
    }

    impl Drop for TempWs {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn find_root_walks_up_from_nested_dirs() {
        let ws = TempWs::new("findroot");
        let nested = ws.0.join("crates/a/src/nested");
        assert_eq!(find_root(&nested), Some(ws.0.clone()));
        assert_eq!(find_root(&ws.0), Some(ws.0.clone()));
    }

    #[test]
    fn find_root_fails_outside_a_workspace() {
        let stray = std::env::temp_dir()
            .join(format!("emblookup-lint-noroot-{}", std::process::id()));
        fs::create_dir_all(&stray).unwrap();
        assert_eq!(find_root(&stray), None);
        let _ = fs::remove_dir_all(&stray);
    }

    #[test]
    fn lintable_files_cover_src_trees_and_skip_tests_dirs() {
        let ws = TempWs::new("files");
        let files = lintable_files(&ws.0).unwrap();
        assert_eq!(
            files,
            vec![
                PathBuf::from("crates/a/src/lib.rs"),
                PathBuf::from("crates/a/src/nested/x.rs"),
                PathBuf::from("src/main.rs"),
            ]
        );
    }

    #[cfg(unix)]
    #[test]
    fn symlink_cycles_do_not_hang_the_walk() {
        let ws = TempWs::new("symlink");
        // crates/a/src/loop -> crates/a/src — unbounded without the guard
        std::os::unix::fs::symlink(ws.0.join("crates/a/src"), ws.0.join("crates/a/src/loop"))
            .unwrap();
        let files = lintable_files(&ws.0).unwrap();
        assert_eq!(files.len(), 3, "{files:?}");
    }

    #[test]
    fn depth_cap_bounds_pathological_nesting() {
        let ws = TempWs::new("depth");
        let mut deep = ws.0.join("crates/a/src");
        for _ in 0..(MAX_DEPTH + 4) {
            deep = deep.join("d");
        }
        fs::create_dir_all(&deep).unwrap();
        fs::write(deep.join("too_deep.rs"), "pub fn f() {}\n").unwrap();
        let files = lintable_files(&ws.0).unwrap();
        assert!(
            !files.iter().any(|f| f.ends_with("too_deep.rs")),
            "beyond-cap files must be ignored: {files:?}"
        );
    }
}
