//! The `--fix-metric-names --write` rewriter.
//!
//! Replaces each metric-name string literal that L003 maps onto a
//! registered `emblookup_obs::names` constant with the constant itself.
//! The rewrite is driven by the same pass that reports the violations,
//! so it inherits every exemption (test regions, `// lint: allow(L003)`
//! directives, the obs crate itself) and is idempotent: once rewritten,
//! the file produces no fixable L003 violations and [`rewrite_source`]
//! returns `None`.
//!
//! Only literals with a registered mapping are touched; unregistered
//! metric-position literals still need a human to declare the name in
//! `emblookup_obs::names` first.

use crate::engine::{NameRegistry, SourceFile};
use crate::lexer::TokenKind;
use std::collections::HashSet;

/// Rewrites one file's source. Returns `None` when nothing changes.
pub fn rewrite_source(path: &str, src: &str, registry: &NameRegistry) -> Option<String> {
    let sf = SourceFile::parse(path, src);
    let flagged: HashSet<u32> = sf
        .check(registry)
        .into_iter()
        .filter(|v| v.rule == "L003" && v.suggestion.is_some())
        .map(|v| v.line)
        .collect();
    if flagged.is_empty() {
        return None;
    }
    let qualify = !has_names_import(&sf);
    // (char offset, char length, replacement), ascending by offset
    let mut edits: Vec<(usize, usize, String)> = Vec::new();
    for (i, t) in sf.tokens().iter().enumerate() {
        if !matches!(t.kind, TokenKind::Str | TokenKind::RawStr)
            || sf.in_test(i)
            || !flagged.contains(&t.line)
        {
            continue;
        }
        let Some(value) = t.str_value() else { continue };
        let Some(ident) = registry.get(&value) else { continue };
        let repl = if qualify {
            format!("emblookup_obs::names::{ident}")
        } else {
            format!("names::{ident}")
        };
        edits.push((t.offset, t.text.chars().count(), repl));
    }
    if edits.is_empty() {
        return None;
    }
    let mut chars: Vec<char> = src.chars().collect();
    for (offset, len, repl) in edits.into_iter().rev() {
        chars.splice(offset..offset + len, repl.chars());
    }
    Some(chars.into_iter().collect())
}

/// True when the file already imports `emblookup_obs::…::names`, so the
/// short `names::CONST` form resolves.
fn has_names_import(sf: &SourceFile) -> bool {
    let tokens = sf.tokens();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "use" {
            let mut saw_obs = false;
            let mut saw_names = false;
            let mut j = i + 1;
            while j < tokens.len() && tokens[j].text != ";" {
                match tokens[j].text.as_str() {
                    "emblookup_obs" => saw_obs = true,
                    "names" => saw_names = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_obs && saw_names {
                return true;
            }
            i = j;
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::obs_name_registry;

    #[test]
    fn rewrites_registered_literal_fully_qualified() {
        let src = "pub fn f(m: &emblookup_obs::Metrics) { m.counter(\"train.epochs\").inc(); }\n";
        let out = rewrite_source("crates/x/src/lib.rs", src, &obs_name_registry())
            .expect("should rewrite");
        assert!(out.contains("m.counter(emblookup_obs::names::TRAIN_EPOCHS).inc()"), "{out}");
        assert!(!out.contains("\"train.epochs\""));
    }

    #[test]
    fn uses_short_form_when_names_is_imported() {
        let src = "use emblookup_obs::names;\npub fn f(m: &emblookup_obs::Metrics) { m.counter(\"train.epochs\").inc(); }\n";
        let out = rewrite_source("crates/x/src/lib.rs", src, &obs_name_registry())
            .expect("should rewrite");
        assert!(out.contains("m.counter(names::TRAIN_EPOCHS).inc()"), "{out}");
    }

    #[test]
    fn rewrite_is_idempotent_and_relints_clean() {
        let src = "pub fn f(m: &emblookup_obs::Metrics) { m.counter(\"train.epochs\").inc(); }\n";
        let registry = obs_name_registry();
        let once = rewrite_source("crates/x/src/lib.rs", src, &registry).expect("first pass");
        assert!(
            rewrite_source("crates/x/src/lib.rs", &once, &registry).is_none(),
            "second pass must be a no-op"
        );
        let remaining = crate::lint_source("crates/x/src/lib.rs", &once);
        assert!(remaining.iter().all(|v| v.rule != "L003"), "{remaining:?}");
    }

    #[test]
    fn allowed_and_test_literals_are_untouched() {
        let src = "\
// lint: allow(L003) exercising the raw string deliberately
pub fn f(m: &emblookup_obs::Metrics) { m.counter(\"train.epochs\").inc(); }
#[cfg(test)]
mod tests {
    fn t(m: &emblookup_obs::Metrics) { m.counter(\"train.epochs\").inc(); }
}
";
        assert!(rewrite_source("crates/x/src/lib.rs", src, &obs_name_registry()).is_none());
    }

    #[test]
    fn unregistered_literals_are_untouched() {
        let src = "pub fn f(m: &emblookup_obs::Metrics) { m.counter(\"no.such.metric\").inc(); }\n";
        assert!(rewrite_source("crates/x/src/lib.rs", src, &obs_name_registry()).is_none());
    }
}
