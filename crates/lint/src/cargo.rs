//! A minimal `Cargo.toml` reader — just enough TOML to recover each
//! workspace member's package name and its `[dependencies]` /
//! `[dev-dependencies]` keys with line numbers. No external TOML crate:
//! the workspace builds offline, and manifest structure here is plain
//! `key = value` lines under bracketed table headers.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One dependency edge read from a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// Package name as written (`emblookup-kg`, `rand`).
    pub name: String,
    /// 1-based line of the entry inside the manifest.
    pub line: u32,
    /// True for `[dev-dependencies]` entries.
    pub dev: bool,
}

/// One parsed workspace-member manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// `[package] name`.
    pub name: String,
    /// Workspace-relative manifest path (`crates/ann/Cargo.toml`).
    pub path: String,
    /// Workspace-relative directory of the package (`crates/ann`, or
    /// `.` for the root package).
    pub dir: PathBuf,
    /// Declared dependencies, normal and dev.
    pub deps: Vec<Dep>,
}

/// Parses one manifest's text. Returns `None` when no `[package]`
/// section exists (e.g. a virtual workspace manifest).
pub fn parse_manifest(path: &str, dir: &Path, text: &str) -> Option<Manifest> {
    let mut name = None;
    let mut deps = Vec::new();
    let mut table = String::new();
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(t) = line.strip_prefix('[') {
            table = t.trim_end_matches(']').trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        match table.as_str() {
            "package" if key == "name" => {
                name = Some(value.trim().trim_matches('"').to_string());
            }
            "dependencies" | "dev-dependencies" => {
                // `foo = { … }`, `foo.workspace = true`, `foo = "1.0"`
                let dep_name = key.split('.').next().unwrap_or(key).trim().to_string();
                deps.push(Dep {
                    name: dep_name,
                    line: n as u32 + 1,
                    dev: table == "dev-dependencies",
                });
            }
            _ => {}
        }
    }
    Some(Manifest {
        name: name?,
        path: path.to_string(),
        dir: dir.to_path_buf(),
        deps,
    })
}

/// Reads every workspace-member manifest under `root`: the root package
/// (`Cargo.toml`) plus each `crates/*/Cargo.toml`.
pub fn read_manifests(root: &Path) -> io::Result<Vec<Manifest>> {
    let mut out = Vec::new();
    let root_toml = root.join("Cargo.toml");
    if root_toml.is_file() {
        let text = fs::read_to_string(&root_toml)?;
        if let Some(m) = parse_manifest("Cargo.toml", Path::new("."), &text) {
            out.push(m);
        }
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let toml = dir.join("Cargo.toml");
            if !toml.is_file() {
                continue;
            }
            let text = fs::read_to_string(&toml)?;
            let rel_dir = dir.strip_prefix(root).unwrap_or(&dir).to_path_buf();
            let rel_path = rel_dir.join("Cargo.toml").to_string_lossy().replace('\\', "/");
            if let Some(m) = parse_manifest(&rel_path, &rel_dir, &text) {
                out.push(m);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_package_name_and_dep_lines() {
        let text = "\
[package]
name = \"emblookup-demo\"
version = \"0.1.0\"

[features]
extra = []

[dependencies]
emblookup-kg.workspace = true
rand = { path = \"../rand\" }

[dev-dependencies]
emblookup-text.workspace = true
";
        let m = parse_manifest("crates/demo/Cargo.toml", Path::new("crates/demo"), text)
            .expect("manifest");
        assert_eq!(m.name, "emblookup-demo");
        let names: Vec<(&str, bool)> =
            m.deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            vec![("emblookup-kg", false), ("rand", false), ("emblookup-text", true)]
        );
        // line numbers point at the entries, not the table headers
        assert_eq!(m.deps[0].line, 9);
    }

    #[test]
    fn virtual_manifest_without_package_is_skipped() {
        let text = "[workspace]\nmembers = [\"crates/*\"]\n";
        assert!(parse_manifest("Cargo.toml", Path::new("."), text).is_none());
    }

    #[test]
    fn feature_and_bench_tables_are_not_dependencies() {
        let text = "[package]\nname = \"x\"\n[[bench]]\nname = \"b\"\n[features]\nfoo = []\n";
        let m = parse_manifest("Cargo.toml", Path::new("."), text).expect("manifest");
        assert!(m.deps.is_empty());
    }
}
