//! # emblookup-lint
//!
//! In-tree static analysis for the EmbLookup workspace. A minimal Rust
//! lexer ([`lexer`]) feeds four repo-specific passes ([`engine`]):
//! panic-freedom in library code (L001), lock/allocation bans in
//! `// lint: hot-path` modules (L002), metric-name provenance from
//! `emblookup_obs::names` (L003) and task-marker hygiene (L004). The
//! `emblookup-lint` binary walks `crates/*/src` and `src/` and is wired
//! into `scripts/ci.sh` as a hard gate.
//!
//! See CONTRIBUTING.md ("Static analysis") for the rule catalog and the
//! `// lint: allow(Lxxx) reason` escape-hatch policy.

#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod walk;

pub use engine::{classify, obs_name_registry, FileClass, NameRegistry, SourceFile, Violation};

/// Lints a single in-memory source file against the obs name registry —
/// the entry point the fixture tests use.
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    SourceFile::parse(path, src).check(&obs_name_registry())
}
