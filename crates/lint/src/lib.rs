//! # emblookup-lint
//!
//! In-tree static analysis for the EmbLookup workspace, built on a
//! minimal Rust lexer ([`lexer`]) and a tolerant item-level parser
//! ([`parser`]). Two families of passes:
//!
//! * **Per-file** ([`engine`]): panic-freedom in library code (L001),
//!   lock/allocation bans in `// lint: hot-path` modules (L002),
//!   metric-name provenance from `emblookup_obs::names` (L003),
//!   task-marker hygiene (L004) and float discipline — NaN-hazardous
//!   `==`/`partial_cmp` patterns (L007).
//! * **Workspace-level** ([`workspace`]): crate-layering conformance
//!   against the declared layer DAG (L005, [`layers`]) and public-API
//!   drift gating against the checked-in `API.lock` (L006, [`api`]),
//!   fed by the [`cargo`] manifest reader and [`parser`] item extractor.
//! * **Interprocedural** ([`rules`]): a workspace call graph
//!   ([`callgraph`]) with a propagated effect lattice ([`effects`])
//!   drives determinism analysis (L008), lock-order/pool-interaction
//!   discipline (L009) and transitive hot-path effect gating (L010),
//!   with diagnostics that print the offending call chain.
//! * **Concurrency protocol** ([`dataflow`] + [`rules`]): atomic
//!   fields bound to declared `// lint: atomic(protocol)` disciplines
//!   checked per access against the ordering tables (L011), deadline
//!   propagation from serve request handlers to every reachable
//!   blocking site (L012) and guard-free shared-state write detection
//!   (L013); `--atomics-report` renders the committed `ATOMICS.md`.
//!
//! Per-file analysis results round-trip through an incremental
//! content-hash cache ([`cache`], under `target/emblookup-lint/`);
//! allow-directive suppression is applied centrally by [`workspace`]
//! so stale directives can be audited.
//!
//! The `emblookup-lint` binary walks `crates/*/src` and `src/`
//! ([`walk`]), renders text or golden-stable JSON ([`report`]), can
//! rewrite metric-name literals in place ([`fix`]) and explains any
//! rule via `--explain Lxxx` (from the [`rules::RULE_DOCS`] table). It
//! is wired into `scripts/ci.sh` as a hard gate (with `--api-check`).
//!
//! See CONTRIBUTING.md ("Static analysis") for the rule catalog, the
//! `// lint: allow(Lxxx) reason` escape-hatch policy and the
//! `--api-bless` workflow.

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod callgraph;
pub mod cargo;
pub mod dataflow;
pub mod effects;
pub mod engine;
pub mod facts;
pub mod fix;
pub mod layers;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod walk;
pub mod workspace;

pub use engine::{classify, obs_name_registry, FileClass, NameRegistry, SourceFile, Violation};
pub use facts::FileFacts;
pub use workspace::{Report, Workspace};

/// Lints a single in-memory source file against the obs name registry —
/// the entry point the fixture tests use. Runs the per-file passes
/// (L001–L004, L007); the workspace passes need manifests and a lockfile
/// and run through [`Workspace`].
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    SourceFile::parse(path, src).check(&obs_name_registry())
}
