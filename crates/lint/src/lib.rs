//! # emblookup-lint
//!
//! In-tree static analysis for the EmbLookup workspace, built on a
//! minimal Rust lexer ([`lexer`]) and a tolerant item-level parser
//! ([`parser`]). Two families of passes:
//!
//! * **Per-file** ([`engine`]): panic-freedom in library code (L001),
//!   lock/allocation bans in `// lint: hot-path` modules (L002),
//!   metric-name provenance from `emblookup_obs::names` (L003),
//!   task-marker hygiene (L004) and float discipline — NaN-hazardous
//!   `==`/`partial_cmp` patterns (L007).
//! * **Workspace-level** ([`workspace`]): crate-layering conformance
//!   against the declared layer DAG (L005, [`layers`]) and public-API
//!   drift gating against the checked-in `API.lock` (L006, [`api`]),
//!   fed by the [`cargo`] manifest reader and [`parser`] item extractor.
//!
//! The `emblookup-lint` binary walks `crates/*/src` and `src/`
//! ([`walk`]), renders text or golden-stable JSON ([`report`]) and can
//! rewrite metric-name literals in place ([`fix`]). It is wired into
//! `scripts/ci.sh` as a hard gate (with `--api-check`).
//!
//! See CONTRIBUTING.md ("Static analysis") for the rule catalog, the
//! `// lint: allow(Lxxx) reason` escape-hatch policy and the
//! `--api-bless` workflow.

#![warn(missing_docs)]

pub mod api;
pub mod cargo;
pub mod engine;
pub mod fix;
pub mod layers;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod walk;
pub mod workspace;

pub use engine::{classify, obs_name_registry, FileClass, NameRegistry, SourceFile, Violation};
pub use workspace::Workspace;

/// Lints a single in-memory source file against the obs name registry —
/// the entry point the fixture tests use. Runs the per-file passes
/// (L001–L004, L007); the workspace passes need manifests and a lockfile
/// and run through [`Workspace`].
pub fn lint_source(path: &str, src: &str) -> Vec<Violation> {
    SourceFile::parse(path, src).check(&obs_name_registry())
}
