//! Per-file analysis facts — everything the workspace passes need,
//! decoupled from the token stream so results can round-trip through
//! the incremental cache ([`crate::cache`]) without re-lexing.
//!
//! [`FileFacts::extract`] runs every per-file pass once (raw rule
//! violations, `emblookup_*::` references, public API items, `use`
//! imports, function facts) and the workspace driver
//! ([`crate::workspace`]) then works purely on facts: central allow
//! suppression, the stale-allow audit, the L005/L006 checks and the
//! interprocedural rules never touch a [`SourceFile`] again.

use crate::callgraph::{scan_fns, FnFact};
use crate::dataflow::{scan_atomics, scan_shared_roots, AtomicDecl};
use crate::engine::{AllowDecl, AtomicMark, FileClass, NameRegistry, SourceFile, Violation};
use crate::parser::{crate_refs, public_items, use_imports, ApiItem, CrateRef, ImportMap};

/// The complete analysis output for one source file.
#[derive(Debug, Clone, PartialEq)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub rel: String,
    /// Path relative to the owning crate's `src/` (API provenance).
    pub src_rel: String,
    /// Owning package name (dash form); empty when the file sits
    /// outside any workspace manifest.
    pub krate: String,
    /// Library or binary code.
    pub class: FileClass,
    /// Whether the file carries `// lint: hot-path`.
    pub hot_path: bool,
    /// Allow directives in declaration order.
    pub allows: Vec<AllowDecl>,
    /// Raw per-file violations (no allow suppression applied).
    pub raw: Vec<Violation>,
    /// `emblookup_*::` source references (L005 input).
    pub refs: Vec<CrateRef>,
    /// Public API items (L006 snapshot input).
    pub api: Vec<ApiItem>,
    /// `use emblookup_*::…` import map (call resolution input).
    pub imports: ImportMap,
    /// Per-function facts (call graph input).
    pub fns: Vec<FnFact>,
    /// Atomic field/static declarations with protocols (L011 input).
    pub atomics: Vec<AtomicDecl>,
    /// `// lint: atomic(…)` directives (access-site overrides + the
    /// stale-annotation audit).
    pub atomic_marks: Vec<AtomicMark>,
    /// Type names wrapped in `Arc<…>` anywhere in the file (L013's
    /// shared-type evidence).
    pub arc_types: Vec<String>,
    /// `static` item names (L013's write roots).
    pub statics: Vec<String>,
}

impl FileFacts {
    /// Runs every per-file pass over `src`.
    pub fn extract(
        rel: &str,
        src_rel: &str,
        krate: &str,
        src: &str,
        registry: &NameRegistry,
    ) -> FileFacts {
        let sf = SourceFile::parse(rel, src);
        let (arc_types, statics) = scan_shared_roots(&sf);
        FileFacts {
            rel: rel.to_string(),
            src_rel: src_rel.to_string(),
            krate: krate.to_string(),
            class: sf.class,
            hot_path: sf.is_hot_path(),
            allows: sf.allow_decls().to_vec(),
            raw: sf.check_raw(registry),
            refs: crate_refs(&sf),
            api: public_items(&sf),
            imports: use_imports(&sf),
            fns: scan_fns(&sf),
            atomics: scan_atomics(&sf),
            atomic_marks: sf.atomic_marks().to_vec(),
            arc_types,
            statics,
        }
    }

    /// Convenience for fixture tests: extracts facts from an in-memory
    /// source string with an empty metric-name registry, taking the
    /// file name as `src_rel`.
    pub fn fixture(rel: &str, krate: &str, src: &str) -> FileFacts {
        let name = rel.rsplit('/').next().unwrap_or(rel);
        FileFacts::extract(rel, name, krate, src, &NameRegistry::new())
    }

    /// True when an allow directive for `rule` covers `line`.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|d| d.covers(rule, line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_collects_all_fact_kinds() {
        let src = "\
// lint: hot-path
use emblookup_kg::Candidate;

pub fn f() -> u32 {
    // lint: allow(L001) fixture reason
    helper().unwrap()
}
";
        let f = FileFacts::extract(
            "crates/demo/src/lib.rs",
            "lib.rs",
            "emblookup-demo",
            src,
            &NameRegistry::new(),
        );
        assert_eq!(f.class, FileClass::Lib);
        assert!(f.hot_path);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.refs.len(), 1, "{:?}", f.refs);
        assert_eq!(f.imports.names.get("Candidate").map(String::as_str), Some("emblookup_kg"));
        assert_eq!(f.fns.len(), 1);
        assert!(!f.api.is_empty());
        // raw L001 for the unwrap is present even though allowed — the
        // workspace pass suppresses centrally and audits usage
        assert!(f.raw.iter().any(|v| v.rule == "L001"), "{:?}", f.raw);
        assert!(f.allowed("L001", 6));
    }
}
